"""Retry policy: attempts, deadlines, and deterministic backoff.

A :class:`RetryPolicy` is plain data shared by every supervised
dispatch path (fleet chunks, reproduce-all units, sweep cells).  Two
properties matter for the repo's reproducibility story:

* **Determinism.**  Backoff delays carry *seeded* jitter: the jitter
  for ``(unit_id, attempt)`` is a pure function of the policy's
  ``jitter_seed`` and those coordinates, never of wall clock or a
  global RNG.  Retries therefore cannot perturb any result bit (units
  are pure in their arguments), and the retry *schedule* itself replays
  identically run-to-run — a warm re-run under the same faults waits
  the same milliseconds in the same places.

* **Bounded attempts.**  A unit is tried at most ``max_retries + 1``
  times; after that it is quarantined as *poison* and the run degrades
  to an explicit hole instead of dying (DESIGN.md §11).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervised dispatcher treats a failing or stuck unit.

    Attributes:
        max_retries: re-dispatches after the first failure; a unit that
            fails ``max_retries + 1`` times total is quarantined.
        unit_timeout_s: heartbeat-checked per-attempt deadline.  A unit
            still running past it is presumed hung; its worker is
            killed and replaced, and the attempt counts as a failure.
            ``None`` disables the deadline (worker *crashes* are still
            detected immediately via process liveness).
        backoff_base_s: delay before the first retry; doubles per
            subsequent retry (exponential).
        backoff_cap_s: upper bound on any single backoff delay.
        jitter_frac: maximum fractional jitter added to each delay
            (``0.25`` → up to +25%), drawn deterministically.
        jitter_seed: seed for the deterministic jitter hash.
    """

    max_retries: int = 2
    unit_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter_frac: float = 0.25
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError("unit_timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    @property
    def max_attempts(self) -> int:
        """Total tries per unit (first run + retries)."""
        return self.max_retries + 1

    def jitter(self, unit_id: str, attempt: int) -> float:
        """Deterministic jitter fraction in ``[0, jitter_frac)``.

        Pure in ``(jitter_seed, unit_id, attempt)`` — hashing, not a
        stateful RNG — so concurrent units draw independent-looking
        jitter without sharing any mutable state, and a re-run replays
        the exact same schedule.
        """
        digest = hashlib.sha256(
            f"{self.jitter_seed}:{unit_id}:{attempt}".encode("utf-8")
        ).digest()
        unit_fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return self.jitter_frac * unit_fraction

    def backoff_delay(self, unit_id: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching attempt ``attempt + 1``.

        ``attempt`` is the zero-based attempt that just failed:
        exponential in the attempt number, capped, plus seeded jitter.
        """
        base = min(
            self.backoff_base_s * (2.0 ** attempt), self.backoff_cap_s
        )
        return base * (1.0 + self.jitter(unit_id, attempt))
