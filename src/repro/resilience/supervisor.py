"""The supervised dispatcher: retries, backoff, quarantine, holes.

:func:`supervised_map` is the one dispatch loop every parallel path in
the repo now runs through (fleet chunks, reproduce-all units, sweep
cells — DESIGN.md §11).  Contract:

* every unit is a pure function of its payload, so a retry can never
  change a result bit — only the *set* of completed units can vary;
* a unit that raises, whose worker dies, or that outlives its deadline
  is retried with deterministic exponential backoff (seeded jitter,
  :class:`~repro.resilience.policy.RetryPolicy`);
* a unit that fails ``max_retries + 1`` times is *poison*: it is
  quarantined (persisted via
  :class:`~repro.resilience.quarantine.QuarantineLog`) and the run
  continues — callers surface the hole explicitly instead of dying;
* ``KeyboardInterrupt`` (or any other escaping exception) tears down
  the shared pool before propagating, so the next in-process call gets
  a clean pool instead of a wedged one.

The function never raises for unit failures; it raises only for
dispatcher-level problems (bad arguments) or exceptions escaping the
caller's ``on_result`` callback.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import spans as obs
from repro.resilience.chaos import ChaosPlan, active_plan
from repro.resilience.policy import RetryPolicy
from repro.resilience.quarantine import QuarantineLog, QuarantineRecord

__all__ = [
    "AttemptFailure",
    "DispatchCancelled",
    "DispatchOutcome",
    "cancel_token",
    "set_cancel_token",
    "supervised_map",
]


class DispatchCancelled(RuntimeError):
    """The dispatch was cancelled cooperatively mid-run.

    Raised from inside :func:`supervised_map` when the caller's cancel
    token is set: every in-flight unit's worker is killed (and
    replaced), nothing further is dispatched, and — unlike every other
    escaping exception — the shared pool is left *warm*, because a
    cancellation is an orderly stop, not a wedged dispatcher.  Callers
    that journal see the run left unsealed and resumable.
    """


_cancel_local = threading.local()


def set_cancel_token(token: Optional[threading.Event]) -> None:
    """Install this thread's ambient cancel token (``None`` clears it).

    The token rides thread-local state rather than a parameter so that
    callers several layers above the dispatch (``repro serve`` runs
    whole pipelines per job thread) can arm cancellation without
    threading a token through every driver signature.  Always clear in
    a ``finally`` — thread pools reuse threads.
    """
    _cancel_local.token = token


def cancel_token() -> Optional[threading.Event]:
    """This thread's ambient cancel token, if one is installed."""
    return getattr(_cancel_local, "token", None)


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt (possibly later recovered by a retry)."""

    unit_id: str
    attempt: int
    kind: str  # "error" | "crash" | "timeout"
    message: str


@dataclass
class DispatchOutcome:
    """What a supervised dispatch produced, holes included.

    Attributes:
        results: completed payloads by unit id.
        quarantined: poison units, in quarantine order.
        failures: every failed attempt, including ones a retry later
            recovered — the chaos harness asserts against this.
        retried: attempts that were re-dispatched.
    """

    results: Dict[str, Any] = field(default_factory=dict)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    failures: List[AttemptFailure] = field(default_factory=list)
    retried: int = 0

    @property
    def holes(self) -> List[str]:
        """Quarantined unit ids, sorted (the run's explicit gaps)."""
        return sorted(record.unit_id for record in self.quarantined)

    @property
    def partial(self) -> bool:
        return bool(self.quarantined)


def supervised_map(
    fn: Callable[[Any], Any],
    units: Sequence[Tuple[str, Any]],
    *,
    workers: int,
    pool_factory: Callable[[int], Any],
    pool_shutdown: Callable[[], None],
    policy: Optional[RetryPolicy] = None,
    quarantine: Optional[QuarantineLog] = None,
    chaos: Optional[ChaosPlan] = None,
    on_result: Optional[Callable[[str, Any], None]] = None,
    on_quarantine: Optional[Callable[[QuarantineRecord], None]] = None,
    on_dispatch: Optional[Callable[[str, int], None]] = None,
    context: str = "units",
    poll_interval_s: float = 0.05,
    cancel: Optional[threading.Event] = None,
) -> DispatchOutcome:
    """Run every unit through the supervised pool; degrade, don't die.

    Args:
        fn: picklable worker entry, called as ``fn(payload)``.
        units: ``(unit_id, payload)`` pairs in dispatch order (callers
            pre-sort longest-first; completion order is theirs to
            canonicalize).
        workers: pool size to request from ``pool_factory``.
        pool_factory: the warm-pool accessor (normally
            :func:`repro.experiments.driver.shared_pool`), resolved per
            call so tests can substitute it.
        pool_shutdown: tears down (and resets) the shared pool; called
            before re-raising any escaping exception.
        policy: retry policy (default :class:`RetryPolicy`()).
        quarantine: where poison units are persisted (optional).
        chaos: fault-injection plan; default: the environment's
            (:func:`repro.resilience.chaos.active_plan`).
        on_result: streamed ``(unit_id, result)`` callback, completion
            order.
        on_quarantine: called the moment a unit is poisoned, so
            streaming callers can close out the hole immediately.
        on_dispatch: called as ``on_dispatch(unit_id, attempt)``
            immediately before each pool submission (retries included)
            — the run journal's dispatch-intent hook (DESIGN.md §12).
        context: quarantine-record provenance tag.
        cancel: cooperative stop switch (default: the thread's ambient
            :func:`cancel_token`).  Checked once per dispatch-loop
            iteration; when set, every in-flight unit's worker is
            killed and :class:`DispatchCancelled` is raised with the
            shared pool left warm.

    Raises:
        DispatchCancelled: the cancel token was set mid-dispatch.
    """
    policy = policy if policy is not None else RetryPolicy()
    plan = chaos if chaos is not None else active_plan()
    plan_dict = plan.to_dict() if plan is not None else None
    payloads: Dict[str, Any] = {}
    for unit_id, payload in units:
        if unit_id in payloads:
            raise ValueError(f"duplicate unit id {unit_id!r}")
        payloads[unit_id] = payload
    outcome = DispatchOutcome()
    if not payloads:
        return outcome

    pending: deque = deque((unit_id, 0) for unit_id, _ in units)
    delayed: List[Tuple[float, int, str, int]] = []
    inflight: Dict[str, Tuple[int, float]] = {}
    sequence = 0

    # Per-unit telemetry spans (floating/async: in-flight units overlap
    # on this dispatcher thread).  Opened at first dispatch, closed on
    # completion or quarantine; span records never influence dispatch.
    tracer = obs.current()
    unit_spans: Dict[str, Any] = {}

    def close_unit_span(unit_id: str, **final_args: Any) -> None:
        span_ = unit_spans.pop(unit_id, None)
        if span_ is not None and tracer is not None:
            span_.args.update(final_args)
            tracer.end(span_)

    def fail(unit_id: str, attempt: int, kind: str, message: str) -> None:
        nonlocal sequence
        outcome.failures.append(
            AttemptFailure(unit_id, attempt, kind, message)
        )
        if attempt + 1 >= policy.max_attempts:
            record = QuarantineRecord(
                unit_id=unit_id,
                context=context,
                kind=kind,
                attempts=attempt + 1,
                error=message,
            )
            outcome.quarantined.append(record)
            obs.instant(
                "pool.quarantine", cat="pool",
                unit=unit_id, fault=kind, attempts=attempt + 1,
            )
            close_unit_span(unit_id, outcome="quarantined", fault=kind)
            if quarantine is not None:
                quarantine.record(record)
            if on_quarantine is not None:
                on_quarantine(record)
            return
        outcome.retried += 1
        obs.instant(
            "pool.retry", cat="pool",
            unit=unit_id, attempt=attempt + 1, fault=kind,
        )
        ready_at = time.monotonic() + policy.backoff_delay(unit_id, attempt)
        sequence += 1
        heapq.heappush(delayed, (ready_at, sequence, unit_id, attempt + 1))

    stop = cancel if cancel is not None else cancel_token()
    pool = pool_factory(workers)
    try:
        while pending or delayed or inflight:
            if stop is not None and stop.is_set():
                # Orderly stop: kill only our own in-flight units (each
                # killed worker is replaced, so the pool stays whole and
                # warm for the next dispatch) and unwind.  Journaling
                # callers leave the run unsealed — i.e. resumable.
                for unit_id in list(inflight):
                    pool.kill_task(unit_id)
                raise DispatchCancelled(
                    f"dispatch of {context} cancelled "
                    f"({len(inflight)} in-flight unit(s) killed)"
                )
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _ready, _seq, unit_id, attempt = heapq.heappop(delayed)
                pending.append((unit_id, attempt))
            while pending and pool.idle_count() > 0:
                unit_id, attempt = pending.popleft()
                if on_dispatch is not None:
                    on_dispatch(unit_id, attempt)
                if tracer is not None and unit_id not in unit_spans:
                    unit_spans[unit_id] = tracer.begin(
                        unit_id, cat="unit",
                        args={"context": context}, attach=False,
                    )
                obs.instant(
                    "pool.dispatch", cat="pool",
                    unit=unit_id, attempt=attempt,
                )
                pool.submit(
                    fn, unit_id, attempt, payloads[unit_id], plan_dict,
                    trace=tracer is not None,
                )
                deadline = (
                    now + policy.unit_timeout_s
                    if policy.unit_timeout_s is not None
                    else math.inf
                )
                inflight[unit_id] = (attempt, deadline)
            if not inflight:
                # Only backoff delays remain; sleep until the nearest.
                if delayed:
                    time.sleep(
                        max(
                            0.0,
                            min(
                                delayed[0][0] - time.monotonic(),
                                poll_interval_s,
                            ),
                        )
                    )
                continue
            for kind, unit_id, attempt, _worker, payload in pool.poll(
                timeout=poll_interval_s
            ):
                if kind == "spans":
                    # Worker-shipped attempt spans: pure telemetry.
                    # Absorbed even for stale attempts — a killed
                    # worker's measurements still happened.
                    obs.absorb(payload)
                    continue
                state = inflight.get(unit_id)
                if state is None or state[0] != attempt:
                    continue  # stale event from a killed worker
                del inflight[unit_id]
                if kind == "done":
                    outcome.results[unit_id] = payload
                    close_unit_span(
                        unit_id, outcome="done", attempts=attempt + 1
                    )
                    if on_result is not None:
                        on_result(unit_id, payload)
                else:
                    fail(unit_id, attempt, "error", payload)
            for unit_id, attempt in pool.reap_crashed():
                state = inflight.get(unit_id)
                if state is None or state[0] != attempt:
                    continue
                del inflight[unit_id]
                obs.instant(
                    "pool.crash", cat="pool",
                    unit=unit_id, attempt=attempt,
                )
                fail(unit_id, attempt, "crash", "worker process died")
            now = time.monotonic()
            for unit_id, (attempt, deadline) in list(inflight.items()):
                if now > deadline:
                    pool.kill_task(unit_id)
                    del inflight[unit_id]
                    obs.instant(
                        "pool.kill", cat="pool",
                        unit=unit_id, attempt=attempt,
                        deadline_s=policy.unit_timeout_s,
                    )
                    fail(
                        unit_id,
                        attempt,
                        "timeout",
                        f"exceeded {policy.unit_timeout_s}s deadline",
                    )
    except DispatchCancelled:
        # Cancellation is the one orderly exit: in-flight workers were
        # already killed and respawned above, so the pool is clean and
        # stays warm for the next job.
        raise
    except BaseException:
        # A Ctrl-C lands in the workers too (same process group for
        # plain Pool workers; ours ignore SIGINT, but the dispatch
        # state is gone either way).  Reset the shared pool so the
        # *next* in-process call starts clean instead of wedged.
        pool_shutdown()
        raise
    return outcome
