"""Poison-unit quarantine: persisted evidence of units that kept failing.

When a work unit exhausts its retry budget the supervised dispatcher
marks it *poison*: the run continues with an explicit hole, and a
:class:`QuarantineRecord` is appended to the quarantine log so the
failure survives the process — the next session (or an operator) can
see exactly which units were dropped, why, and after how many tries.

The log lives as one JSON document (``units.json``) under a quarantine
directory — by default ``<cache-dir>/quarantine/``, next to the
corrupt-object quarantine kept by :class:`repro.cache.ResultCache`.
Writes are atomic read-merge-replace under a
:class:`repro.journal.lease.FileLock` (``units.lock``): the replace
alone kept each write intact but let two concurrent campaigns read the
same snapshot and erase each other's record (a classic lost update);
the lock serializes read→merge→replace so both records survive.  Last
writer still wins *per unit*, which is fine: records are evidence, not
results.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.journal.lease import FileLock

__all__ = ["QuarantineLog", "QuarantineRecord"]

#: Failure classification, in increasing order of supervision involved:
#: ``error`` (the unit raised), ``crash`` (the worker process died),
#: ``timeout`` (the unit outlived its deadline and its worker was
#: killed).
FAILURE_KINDS = ("error", "crash", "timeout")


@dataclass(frozen=True)
class QuarantineRecord:
    """One poisoned unit: identity, failure history, provenance.

    Attributes:
        unit_id: dispatcher-level unit identity (fleet chunk id,
            reproduce-all unit id, or sweep cell id).
        context: which subsystem dispatched it (``"fleet"``,
            ``"reproduce"``, ``"sweep"``, ...).
        kind: the *last* failure's classification (``error`` /
            ``crash`` / ``timeout``).
        attempts: how many times the unit was tried before poisoning.
        error: the last failure's message (empty for crash/timeout).
        recorded_at: Unix timestamp of the quarantine decision
            (reporting only; never part of any digest).
    """

    unit_id: str
    context: str
    kind: str
    attempts: int
    error: str = ""
    recorded_at: float = 0.0


@dataclass
class QuarantineLog:
    """Persisted quarantine records rooted at ``directory``.

    ``directory=None`` keeps the log purely in memory — the dispatcher
    still reports quarantined units through its outcome, there is just
    nothing on disk (used when no cache directory is in play).
    """

    directory: Optional[str] = None
    _memory: List[QuarantineRecord] = field(default_factory=list)

    @property
    def path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, "units.json")

    def record(self, record: QuarantineRecord) -> None:
        """Append one poisoned unit (locked atomic merge on disk)."""
        if record.recorded_at == 0.0:
            record = QuarantineRecord(
                **{**asdict(record), "recorded_at": time.time()}
            )
        self._memory.append(record)
        if self.path is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        # The lock covers read→merge→replace: without it, two processes
        # reading the same snapshot concurrently each merge only their
        # own record and the second replace erases the first (the
        # lost-update race the multi-process quarantine test pins).
        with FileLock(os.path.join(self.directory, "units.lock")):
            merged: Dict[str, dict] = {
                entry["unit_id"]: entry for entry in self._load_raw()
            }
            merged[record.unit_id] = asdict(record)
            payload = json.dumps(
                [merged[key] for key in sorted(merged)],
                indent=0, sort_keys=True,
            ).encode("utf-8")
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise

    def load(self) -> List[QuarantineRecord]:
        """Every persisted record (memory-only records when no disk)."""
        if self.path is None:
            return list(self._memory)
        return [
            QuarantineRecord(**entry)
            for entry in self._load_raw()
        ]

    def _load_raw(self) -> List[dict]:
        if self.path is None:
            return []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return []
        return [
            entry
            for entry in data
            if isinstance(entry, dict) and "unit_id" in entry
        ]
