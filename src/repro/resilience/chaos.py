"""Fault injection for the execution substrate itself.

The paper's method is to trust a learning agent only after watching it
survive injected faults; this module applies the same discipline to our
own worker pool.  A :class:`ChaosPlan` is a *seeded, deterministic*
description of which work units get which fault:

* ``crash`` — the worker process exits hard (``os._exit``) the moment
  it picks up a selected unit: the task is lost, the supervisor must
  notice the dead process and retry.
* ``hang`` — the worker sleeps far past any reasonable deadline: only
  the per-unit timeout can recover the slot.
* ``slow`` — the worker sleeps briefly, then runs the unit normally:
  the supervisor must tolerate stragglers without killing them.
* ``corrupt_cache`` — applied on the *parent* side via
  :class:`ChaosCache`: selected cache writes are garbled on disk, so a
  later read must quarantine the object instead of trusting it.

Selection is a pure function of ``(seed, unit_id)`` — no RNG state, no
wall clock — so a chaos run is exactly reproducible, and the committed
chaos suite can assert the *exact* set of faulted/quarantined units.
Faults normally fire only on attempt 0 (``fault_attempts``), proving
that retries recover; units listed in ``poison_units`` fault on every
attempt, proving that quarantine engages and the run degrades to an
explicit hole rather than dying.

Worker-side faults are applied by :func:`apply_worker_fault`, which the
supervised worker loop calls before executing each task.  It refuses to
fire outside a worker process (``_IN_WORKER``), so an accidentally
activated plan can never ``os._exit`` the main process.  Plans travel
to workers inside the task tuple (not via environment inheritance, so
a warm pool spawned before the plan existed still honors it); the
``REPRO_CHAOS_PLAN`` environment variable (inline JSON) lets whole CLI
invocations run under a plan without new flags.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cache.store import ResultCache

__all__ = [
    "CHAOS_FAULT_KINDS",
    "ChaosCache",
    "ChaosPlan",
    "active_plan",
    "apply_worker_fault",
]

CHAOS_FAULT_KINDS = ("crash", "hang", "corrupt_cache", "slow")

#: Environment variable holding an inline JSON chaos plan.
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Set by the supervised worker bootstrap; worker-side faults refuse to
#: fire when this is False (i.e. in the main process).
_IN_WORKER = False


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, deterministic fault-injection plan.

    Attributes:
        kind: one of :data:`CHAOS_FAULT_KINDS`.
        probability: per-unit selection probability (hashed, not drawn:
            a unit is selected iff ``hash(seed, unit_id) < p``).
        seed: selection seed; changing it selects a different subset.
        fault_attempts: zero-based attempts on which a selected unit
            faults (default: first attempt only, so retries recover).
        poison_units: unit ids that fault on *every* attempt — these
            must end up quarantined, exactly and by name.
        hang_s: sleep length for ``hang`` (far beyond any deadline).
        slow_s: sleep length for ``slow`` (within any sane deadline).
        exit_code: worker exit code for ``crash`` (diagnostic only).
    """

    kind: str
    probability: float = 0.0
    seed: int = 0
    fault_attempts: Tuple[int, ...] = (0,)
    poison_units: Tuple[str, ...] = ()
    hang_s: float = 3600.0
    slow_s: float = 0.2
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_FAULT_KINDS:
            raise ValueError(
                f"unknown chaos fault {self.kind!r}; "
                f"expected one of {CHAOS_FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    # -- selection -----------------------------------------------------------

    def selects(self, unit_id: str) -> bool:
        """Whether this plan targets ``unit_id`` at all (pure in seed)."""
        if unit_id in self.poison_units:
            return True
        if self.probability <= 0.0:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{unit_id}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return fraction < self.probability

    def should_fault(self, unit_id: str, attempt: int) -> bool:
        """Whether attempt ``attempt`` of ``unit_id`` gets the fault."""
        if unit_id in self.poison_units:
            return True
        return self.selects(unit_id) and attempt in self.fault_attempts

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "probability": self.probability,
            "seed": self.seed,
            "fault_attempts": list(self.fault_attempts),
            "poison_units": list(self.poison_units),
            "hang_s": self.hang_s,
            "slow_s": self.slow_s,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPlan":
        return cls(
            kind=str(data["kind"]),
            probability=float(data.get("probability", 0.0)),
            seed=int(data.get("seed", 0)),
            fault_attempts=tuple(
                int(a) for a in data.get("fault_attempts", (0,))
            ),
            poison_units=tuple(
                str(u) for u in data.get("poison_units", ())
            ),
            hang_s=float(data.get("hang_s", 3600.0)),
            slow_s=float(data.get("slow_s", 0.2)),
            exit_code=int(data.get("exit_code", 23)),
        )

    def describe(self) -> str:
        parts = [f"fault={self.kind}", f"p={self.probability!r}",
                 f"seed={self.seed}"]
        if self.poison_units:
            parts.append(f"poison={','.join(self.poison_units)}")
        return " ".join(parts)


def active_plan() -> Optional[ChaosPlan]:
    """The plan in ``$REPRO_CHAOS_PLAN`` (inline JSON), if any.

    Read fresh on every call — the dispatcher consults it once per
    dispatch in the *parent* process and ships the plan inside each
    task, so warm workers forked before the variable was set still see
    it.  Malformed JSON raises: a chaos run that silently becomes a
    fault-free run would "pass" every check vacuously.
    """
    raw = os.environ.get(CHAOS_PLAN_ENV)
    if not raw:
        return None
    return ChaosPlan.from_dict(json.loads(raw))


def apply_worker_fault(
    plan: Optional[Dict[str, Any]], unit_id: str, attempt: int
) -> None:
    """Apply ``plan``'s worker-side fault to this task, if selected.

    Called by the supervised worker loop before executing each unit.
    ``corrupt_cache`` is a parent-side fault and is a no-op here.
    Refuses to fire in the main process: crash/hang faults must only
    ever take down a supervised worker.
    """
    if not plan or not _IN_WORKER:
        return
    chaos = ChaosPlan.from_dict(plan)
    if not chaos.should_fault(unit_id, attempt):
        return
    if chaos.kind == "crash":
        os._exit(chaos.exit_code)
    elif chaos.kind == "hang":
        time.sleep(chaos.hang_s)
    elif chaos.kind == "slow":
        time.sleep(chaos.slow_s)


@dataclass
class ChaosCache(ResultCache):
    """A :class:`ResultCache` whose selected writes are corrupted.

    Every ``put`` lands normally and is then garbled on disk when the
    plan selects its key — modeling a write torn by a crashed or buggy
    writer *after* it was addressed.  A later ``get`` of that key must
    quarantine the object (DESIGN.md §11) and degrade to a miss, never
    return garbage.  Selection hashes the cache key with the plan's
    seed, so the corrupted subset is exactly reproducible.
    """

    plan: Optional[ChaosPlan] = field(default=None)
    corrupted_keys: list = field(default_factory=list)

    def put(self, key: str, payload: Any) -> None:
        super().put(key, payload)
        if self.plan is None or self.plan.kind != "corrupt_cache":
            return
        if not self.plan.selects(key):
            return
        with open(self._object_path(key), "wb") as handle:
            handle.write(b"chaos: torn write\0")
        self.corrupted_keys.append(key)
