"""The supervised worker pool: per-worker channels, liveness, targeted kill.

``multiprocessing.Pool`` cannot express supervision: a worker that dies
takes its task's future with it (the caller waits forever), and a hung
worker cannot be killed without tearing down the whole pool.  This pool
trades ``Pool``'s batched dispatch for per-worker control:

* every worker owns a **private task channel** and holds **at most one
  task** at a time, so the supervisor always knows exactly which unit a
  worker is running;
* every worker reports events over its **own pipe** with length-prefixed
  frames the parent parses itself.  This is load-bearing, not a style
  choice: a shared ``multiprocessing.Queue`` serializes writers through
  one shared semaphore, and a worker that dies between writing its
  event and releasing that lock (observed with chaos ``crash`` faults —
  ``os._exit`` can beat the feeder thread's release) deadlocks every
  *other* worker's next report.  With per-worker pipes a dying worker
  can only ever corrupt its own channel, and a partial frame is
  discarded with the worker instead of wedging the pool;
* worker **liveness is observable** (``reap_crashed``): a dead busy
  worker is reported with the task it took down — after salvaging any
  fully-written event still in its pipe — and a fresh worker is spawned
  in its place; detection needs no deadline at all;
* a hung worker can be **killed individually** (``kill_task``): only
  its own unit is lost; every other in-flight unit keeps running.

Workers ignore ``SIGINT`` — a Ctrl-C in the parent's process group must
interrupt the *dispatcher* (which then resets the shared pool), not
leave half the workers dead behind a live parent.

The pool is engine only; retry/backoff/quarantine policy lives in
:mod:`repro.resilience.supervisor`.  The process-wide warm instance is
still owned by :func:`repro.experiments.driver.shared_pool`, which
hands out this class (DESIGN.md §11).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import select
import signal
import struct
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import spans as obs
from repro.obs.metrics import MetricsRegistry, counter_property

__all__ = ["PoolCounters", "SupervisedPool", "WorkerEvent"]

#: One worker outcome: ``(kind, task_id, attempt, worker_id, payload)``
#: where ``kind`` is ``"done"`` (payload is the result), ``"error"``
#: (payload is the rendered exception), or ``"spans"`` (payload is the
#: worker-side tracer's drained span records for the attempt — pure
#: telemetry, always written *before* the outcome frame and never
#: counted as one).
WorkerEvent = Tuple[str, str, int, int, Any]

_FRAME_HEADER = struct.Struct(">I")


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits sys.path); fall back to spawn."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _write_frame(fd: int, payload: bytes) -> None:
    """Length-prefixed frame write (blocking, loops over short writes)."""
    data = _FRAME_HEADER.pack(len(payload)) + payload
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _worker_main(
    worker_id: int,
    task_reader: Any,
    event_writer: Any,
    path: List[str],
) -> None:
    """Worker loop: one task at a time, every outcome reported.

    Exceptions (including simulated chaos faults) are reported as
    ``error`` events rather than crashing the worker; only a genuine
    process death (or a chaos ``crash``) leaves the loop silently —
    which is exactly what the supervisor's liveness check is for.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Undo the parent's SIGTERM handler (the CLI's graceful-unwind hook,
    # inherited across fork): a worker answering SIGTERM with the
    # parent's exception would die with a spurious traceback instead of
    # just terminating.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from repro.resilience import chaos as chaos_module

    chaos_module._IN_WORKER = True
    event_fd = event_writer.fileno()
    # Forked workers inherit their *own* task-pipe write end (it is open
    # in the parent at fork time), so a SIGKILLed parent never produces
    # EOF on task_reader.  Watching for reparenting while idle is the
    # only death signal that survives that: an orphaned worker exits
    # within a poll interval instead of living forever (the kill-parent
    # chaos harness depends on this — DESIGN.md §12).
    parent_pid = os.getppid()
    while True:
        try:
            while not task_reader.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # orphaned: the orchestrator died
            task = task_reader.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        task_id, attempt, fn, payload, plan, trace = task
        tracer: Optional[obs.Tracer] = None
        attempt_span = None
        if trace:
            # A worker-local buffered tracer: spans recorded inside the
            # unit (kernel runs, nested timers) parent under this
            # attempt span and ship back over the event pipe.
            tracer = obs.activate(obs.Tracer())
            attempt_span = tracer.begin(
                "attempt", cat="pool",
                args={"unit": task_id, "attempt": attempt},
            )
        try:
            chaos_module.apply_worker_fault(plan, task_id, attempt)
            result = fn(payload)
            event: WorkerEvent = ("done", task_id, attempt, worker_id, result)
            frame = pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as error:  # noqa: BLE001 — report, don't die
            if attempt_span is not None:
                attempt_span.args["error"] = type(error).__name__
            event = (
                "error", task_id, attempt, worker_id,
                f"{type(error).__name__}: {error}",
            )
            frame = pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL)
        if tracer is not None:
            tracer.end(attempt_span)
            obs.deactivate()
            try:
                records = tracer.drain()
                if records:
                    _write_frame(event_fd, pickle.dumps(
                        ("spans", task_id, attempt, worker_id, records),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ))
            except (OSError, pickle.PicklingError, TypeError, ValueError):
                pass  # telemetry loss must never lose the outcome
        _write_frame(event_fd, frame)


class PoolCounters:
    """Cumulative pool activity over the pool's lifetime.

    Registry-backed (DESIGN.md §14): the counters live in a
    :class:`~repro.obs.metrics.MetricsRegistry`, read by the ``repro
    serve`` ``metrics`` verb and the telemetry sidecar alike — no
    dispatch decision reads them.  ``submitted`` counts task hand-offs,
    ``completed``/``errored`` count parsed worker outcomes, ``crashes``
    counts busy workers that died mid-task, ``kills`` counts targeted
    :meth:`SupervisedPool.kill_task` terminations, and ``respawns``
    counts replacement workers (crash reaps and kills both respawn; the
    initial spawn does not count).
    """

    FIELDS = (
        "submitted", "completed", "errored",
        "crashes", "kills", "respawns",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )

    submitted = counter_property("pool.submitted")
    completed = counter_property("pool.completed")
    errored = counter_property("pool.errored")
    crashes = counter_property("pool.crashes")
    kills = counter_property("pool.kills")
    respawns = counter_property("pool.respawns")

    def snapshot(self) -> Dict[str, int]:
        counters = self.registry.snapshot().get("counters", {})
        return {
            name: int(counters.get(f"pool.{name}", 0))
            for name in self.FIELDS
        }


@dataclass
class _Worker:
    """One supervised process and its private channels."""

    process: Any
    task_writer: Any  # parent -> worker Connection
    event_reader: Any  # worker -> parent Connection (read raw)
    buffer: bytearray = field(default_factory=bytearray)
    task: Optional[Tuple[str, int]] = None  # (task_id, attempt) or idle


@dataclass
class SupervisedPool:
    """A fixed-size pool of individually supervised worker processes.

    Args:
        processes: pool size (respawns keep it constant).
        path: ``sys.path`` to replay in workers (default: this
            process's, so the ``src/``-bootstrap works unpickled).
    """

    processes: int
    path: Optional[List[str]] = None
    counters: PoolCounters = field(default_factory=PoolCounters)
    _ctx: Any = field(init=False, repr=False)
    _workers: Dict[int, _Worker] = field(
        init=False, repr=False, default_factory=dict
    )
    _salvaged: List[WorkerEvent] = field(
        init=False, repr=False, default_factory=list
    )
    _next_id: int = field(init=False, repr=False, default=0)
    _terminated: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.path is None:
            self.path = list(sys.path)
        self._ctx = _pool_context()
        for _ in range(self.processes):
            self._spawn()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> int:
        worker_id = self._next_id
        self._next_id += 1
        task_reader, task_writer = self._ctx.Pipe(duplex=False)
        event_reader, event_writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_reader, event_writer, list(self.path)),
            name=f"repro-supervised-{worker_id}",
            daemon=True,
        )
        process.start()
        # Parent keeps only its own ends; the child holds the others.
        task_reader.close()
        event_writer.close()
        os.set_blocking(event_reader.fileno(), False)
        self._workers[worker_id] = _Worker(
            process=process,
            task_writer=task_writer,
            event_reader=event_reader,
        )
        return worker_id

    def _discard(self, worker_id: int, kill: bool) -> None:
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        if kill and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover — stuck in a
            worker.process.kill()      # non-interruptible syscall
            worker.process.join(timeout=1.0)
        worker.task_writer.close()
        worker.event_reader.close()

    def terminate(self) -> None:
        """Kill every worker and release the channels (idempotent)."""
        if self._terminated:
            return
        self._terminated = True
        for worker_id in list(self._workers):
            self._discard(worker_id, kill=True)
        self._salvaged.clear()

    # -- dispatch ------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.processes

    def idle_count(self) -> int:
        return sum(1 for w in self._workers.values() if w.task is None)

    def submit(
        self,
        fn: Callable[[Any], Any],
        task_id: str,
        attempt: int,
        payload: Any,
        plan: Optional[Dict[str, Any]] = None,
        trace: bool = False,
    ) -> int:
        """Hand one task to an idle worker; returns the worker id.

        ``plan`` is an optional chaos-plan dict shipped inside the task
        (not via environment inheritance) so warm workers forked before
        the plan existed still honor it.  ``trace`` asks the worker to
        record attempt spans and ship them back as a ``spans`` event.
        """
        for worker_id, worker in self._workers.items():
            if worker.task is None:
                worker.task = (task_id, attempt)
                self.counters.submitted += 1
                try:
                    worker.task_writer.send(
                        (task_id, attempt, fn, payload, plan, trace)
                    )
                except (BrokenPipeError, OSError):
                    # The worker died between polls; reap_crashed will
                    # report the task lost and replace the process.
                    pass
                return worker_id
        raise RuntimeError("no idle worker (caller must track idle_count)")

    # -- event plumbing ------------------------------------------------------

    def _drain(self, worker: _Worker) -> List[WorkerEvent]:
        """Read whatever the worker's pipe holds; parse complete frames.

        A partial frame stays in the worker's buffer (completed by a
        later read, or discarded with the worker if it died mid-write —
        the failure mode that motivates per-worker channels).
        """
        fd = worker.event_reader.fileno()
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except BlockingIOError:
                break
            except OSError:
                break
            if not chunk:
                break  # EOF: worker gone; reap_crashed replaces it
            worker.buffer.extend(chunk)
        events: List[WorkerEvent] = []
        buffer = worker.buffer
        while len(buffer) >= _FRAME_HEADER.size:
            (length,) = _FRAME_HEADER.unpack_from(buffer)
            end = _FRAME_HEADER.size + length
            if len(buffer) < end:
                break
            frame = bytes(buffer[_FRAME_HEADER.size:end])
            del buffer[:end]
            events.append(pickle.loads(frame))
        for event in events:
            kind, task_id, attempt, _worker_id, _payload = event
            if kind == "done":
                self.counters.completed += 1
            elif kind == "error":
                self.counters.errored += 1
            else:
                continue  # "spans": telemetry precedes the outcome
            if worker.task == (task_id, attempt):
                worker.task = None
        return events

    def poll(self, timeout: float) -> List[WorkerEvent]:
        """Worker outcomes: blocks up to ``timeout`` for the first, then
        drains whatever else is ready.  Events salvaged from dead
        workers are returned first (the dispatcher decides staleness by
        attempt token).
        """
        events: List[WorkerEvent] = list(self._salvaged)
        self._salvaged.clear()
        readers = {
            worker.event_reader.fileno(): worker
            for worker in self._workers.values()
        }
        if readers:
            try:
                ready, _, _ = select.select(
                    list(readers), [], [], 0 if events else timeout
                )
            except OSError:  # pragma: no cover — fd raced a reap
                ready = []
            for fd in ready:
                events.extend(self._drain(readers[fd]))
        return events

    # -- supervision ---------------------------------------------------------

    def reap_crashed(self) -> List[Tuple[str, int]]:
        """Dead *busy* workers' tasks; each dead worker is replaced.

        Before declaring a task lost, any fully-written event still in
        the dead worker's pipe is salvaged (a worker that finished its
        task and then died owed nothing) and surfaced by the next
        :meth:`poll`.  A dead idle worker is replaced silently.
        """
        lost: List[Tuple[str, int]] = []
        for worker_id, worker in list(self._workers.items()):
            if worker.process.is_alive():
                continue
            salvaged = self._drain(worker)
            self._salvaged.extend(salvaged)
            if worker.task is not None:
                lost.append(worker.task)
                self.counters.crashes += 1
            self._discard(worker_id, kill=False)
            self._spawn()
            self.counters.respawns += 1
        return lost

    def kill_task(self, task_id: str) -> bool:
        """Terminate the worker running ``task_id`` and replace it.

        The one targeted unit is lost (the dispatcher re-queues or
        quarantines it); every other worker keeps running.  Returns
        False when no live worker holds that task.
        """
        for worker_id, worker in list(self._workers.items()):
            if worker.task is not None and worker.task[0] == task_id:
                self._discard(worker_id, kill=True)
                self._spawn()
                self.counters.kills += 1
                self.counters.respawns += 1
                return True
        return False
