"""Resilient execution substrate (DESIGN.md §11).

The paper's thesis applied to our own harness: learning-agent
experiments only belong in a long-running service when the layer that
executes them survives worker death, hangs, and corrupted state — and
proves it under injected faults.  This package supplies that layer:

* :mod:`~repro.resilience.pool` — a supervised worker pool
  (per-worker queues, liveness checks, targeted kill + respawn);
* :mod:`~repro.resilience.policy` — retry/backoff policy with
  deterministic seeded jitter;
* :mod:`~repro.resilience.supervisor` — the dispatch loop: retries,
  poison-unit quarantine, explicit holes instead of dying;
* :mod:`~repro.resilience.quarantine` — persisted quarantine records;
* :mod:`~repro.resilience.chaos` — seeded fault injection
  (crash / hang / slow workers, corrupted cache writes) and the
  ``repro chaos`` harness's building blocks.
"""

from repro.resilience.chaos import (
    CHAOS_FAULT_KINDS,
    ChaosCache,
    ChaosPlan,
    active_plan,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.pool import PoolCounters, SupervisedPool
from repro.resilience.quarantine import QuarantineLog, QuarantineRecord
from repro.resilience.supervisor import (
    AttemptFailure,
    DispatchCancelled,
    DispatchOutcome,
    cancel_token,
    set_cancel_token,
    supervised_map,
)

__all__ = [
    "AttemptFailure",
    "CHAOS_FAULT_KINDS",
    "ChaosCache",
    "ChaosPlan",
    "DispatchCancelled",
    "DispatchOutcome",
    "PoolCounters",
    "QuarantineLog",
    "QuarantineRecord",
    "RetryPolicy",
    "SupervisedPool",
    "active_plan",
    "cancel_token",
    "set_cancel_token",
    "supervised_map",
]
