"""repro.obs — unified observability: spans, metrics, sidecars, export.

One layer answers "where did this run spend its time": a hierarchical
span :mod:`tracer <repro.obs.spans>` (run → pipeline → unit → attempt,
plus cache/journal/pool/serve internals), a
:mod:`metrics registry <repro.obs.metrics>` unifying the stack's
counters behind one atomic-snapshot API, crash-tolerant
:mod:`telemetry sidecars <repro.obs.sidecar>` written next to each run
journal, and :mod:`exporters <repro.obs.export>` for Chrome/Perfetto
traces and Prometheus text exposition.

Telemetry is strictly out-of-band: records never enter unit payloads,
cache keys, journal records, or digests, and this package is excluded
from the cache's code salt — tracing on vs off is bit-identical
(DESIGN.md §14).

The one-call entry point for pipelines is :func:`run_tracing`::

    with obs.run_tracing(journal, enabled=not args.no_trace):
        FleetDriver(config, journal=journal).run()
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, Optional

from repro.obs.export import chrome_trace, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    counter_property,
)
from repro.obs.sidecar import (
    TelemetrySidecar,
    read_metrics,
    read_trace,
    segments,
    trace_path,
)
from repro.obs.spans import (
    Span,
    Tracer,
    absorb,
    activate,
    current,
    deactivate,
    enabled,
    instant,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "Span",
    "TelemetrySidecar",
    "Tracer",
    "absorb",
    "activate",
    "chrome_trace",
    "counter_property",
    "current",
    "deactivate",
    "enabled",
    "instant",
    "read_metrics",
    "read_trace",
    "render_prometheus",
    "run_tracing",
    "segments",
    "span",
    "trace_path",
]


def default_metrics_snapshot() -> Dict[str, Any]:
    """Process-wide metrics every traced run records: pool counters."""
    from repro.experiments.driver import shared_pool_counters

    return {"pool": shared_pool_counters()}


@contextlib.contextmanager
def run_tracing(
    journal: Any,
    enabled_: bool = True,
    metrics_provider: Optional[Callable[[], Dict[str, Any]]] = None,
    **root_args: Any,
) -> Iterator[Optional[Tracer]]:
    """Trace one (journaled) run: sidecar segment + ambient tracer.

    Opens a telemetry sidecar next to ``journal``'s record log (a
    resumed run appends a fresh process segment), activates an ambient
    tracer whose sink is the sidecar, and wraps everything in a root
    ``run`` span.  On exit — success, failure, or cancellation — the
    tracer is deactivated and the segment's metrics snapshot (default:
    the shared pool counters, plus anything ``metrics_provider``
    returns) is appended to ``metrics.json``.

    No-ops (yields ``None``) when disabled or when the run has no
    journal directory to attach sidecars to.
    """
    directory = getattr(journal, "directory", None)
    if not enabled_ or not directory:
        yield None
        return
    sidecar = TelemetrySidecar(directory)
    sidecar.open_segment(run_id=getattr(journal, "run_id", None))
    tracer = activate(Tracer(sink=sidecar.write))
    root = tracer.begin(
        "run", cat="run",
        args={"run_id": getattr(journal, "run_id", None), **root_args},
    )
    try:
        yield tracer
    finally:
        tracer.end(root)
        deactivate()
        try:
            snapshot = default_metrics_snapshot()
            if metrics_provider is not None:
                snapshot.update(metrics_provider())
        except Exception as exc:
            snapshot = {"error": f"{type(exc).__name__}: {exc}"}
        sidecar.write_metrics(snapshot)
        sidecar.close()
