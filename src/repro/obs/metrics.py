"""Metrics registry: counters, gauges, histograms, atomic snapshot.

One registry API behind the stack's previously fragmented telemetry:
``CacheStats`` (repro.cache.store), ``PoolCounters``
(repro.resilience.pool), and ``ServeMetrics`` (repro.serve.metrics)
are all registry-backed views now — their counters live here, their
``snapshot()`` methods read here, and a run's telemetry sidecar dumps
the same snapshots into ``metrics.json``.

Design points:

* **Atomic snapshot.**  ``MetricsRegistry.snapshot()`` takes the
  registry lock once and reads every instrument under it, so the
  returned dict is a consistent cut even while worker threads bump
  counters.
* **Int-compatible counters.**  The legacy holders exposed plain int
  fields mutated as ``stats.hits += 1``; the registry-backed views
  keep that exact call-site syntax via properties
  (:func:`counter_property`), so no mutation site changed.
* **Histograms carry ``last``.**  Unit-wall histograms replace the old
  ``unit_walls.json`` last-measured-wall table; keeping the most
  recent observation per key preserves longest-first dispatch order
  bit-for-bit while count/total/min/max ride along for ``--timing``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramFamily",
    "MetricsRegistry",
    "counter_property",
]


class Counter:
    """A monotonic counter (``set`` exists only for property setters)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def set(self, value: int) -> None:
        with self._lock:
            self._value = int(value)


class Gauge:
    """A point-in-time value (queue depth, pool size, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value


class Histogram:
    """Summary histogram: count/total/min/max plus the last value."""

    __slots__ = ("name", "count", "total", "min", "max", "last", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.last = value

    def merge(self, snap: Dict[str, Any], *, keep_last: bool = False) -> None:
        """Fold a persisted snapshot in (resume / cross-run merge).

        ``keep_last=True`` preserves this histogram's own ``last`` when
        it already has observations — session-measured walls must win
        over persisted ones, exactly like the old ``setdefault`` merge.
        """
        with self._lock:
            count = int(snap.get("count", 0) or 0)
            if count <= 0:
                return
            self.count += count
            self.total += float(snap.get("total", 0.0) or 0.0)
            for attr, pick in (("min", min), ("max", max)):
                theirs = snap.get(attr)
                if theirs is None:
                    continue
                ours = getattr(self, attr)
                setattr(
                    self, attr,
                    float(theirs) if ours is None
                    else pick(ours, float(theirs)),
                )
            if not (keep_last and self.last is not None):
                theirs_last = snap.get("last")
                if theirs_last is not None:
                    self.last = float(theirs_last)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "last": self.last,
            }


Provider = Callable[[], Dict[str, Any]]


class MetricsRegistry:
    """Named instruments plus lazily-evaluated snapshot providers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Provider] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(
                    name, Gauge(name, self._lock)
                )
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    name, Histogram(name, self._lock)
                )
        return inst

    def register_provider(self, name: str, provider: Provider) -> None:
        """Attach a callable whose dict is folded into snapshots."""
        with self._lock:
            self._providers[name] = provider

    def snapshot(self) -> Dict[str, Any]:
        """One consistent cut of every instrument, lock held once."""
        with self._lock:
            out: Dict[str, Any] = {}
            if self._counters:
                out["counters"] = {
                    name: c._value for name, c in self._counters.items()
                }
            if self._gauges:
                out["gauges"] = {
                    name: g._value for name, g in self._gauges.items()
                }
            if self._histograms:
                out["histograms"] = {
                    name: {
                        "count": h.count, "total": h.total,
                        "min": h.min, "max": h.max, "last": h.last,
                    }
                    for name, h in self._histograms.items()
                }
            providers = list(self._providers.items())
        for name, provider in providers:
            try:
                out[name] = provider()
            except Exception as exc:  # telemetry must never kill a run
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out


def counter_property(name: str) -> property:
    """An int-compatible property over ``self.registry.counter(name)``.

    Keeps legacy mutation sites (``stats.hits += 1``) and test
    assertions (``stats.hits == 3``) working unchanged on top of
    registry-backed storage.
    """

    def _get(self) -> int:
        return self.registry.counter(name).value

    def _set(self, value: int) -> None:
        self.registry.counter(name).set(value)

    return property(_get, _set)


class HistogramFamily:
    """A keyed family of histograms (one per unit id).

    Replaces the driver's flat ``unit_walls.json`` table: ``last(key)``
    reproduces the old last-measured-wall lookup for longest-first
    dispatch, while the full summaries persist for timing analysis.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._keys: Dict[str, bool] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def observe(self, key: str, value: float) -> None:
        self._keys[key] = True
        self.registry.histogram(key).observe(value)

    def last(self, key: str) -> Optional[float]:
        if key not in self._keys:
            return None
        return self.registry.histogram(key).last

    def keys(self) -> Iterable[str]:
        return tuple(self._keys)

    def absorb(self, persisted: Dict[str, Dict[str, Any]]) -> None:
        """Merge persisted summaries; session-recorded ``last`` wins."""
        for key, snap in persisted.items():
            if not isinstance(snap, dict):
                continue
            self._keys[key] = True
            self.registry.histogram(key).merge(snap, keep_last=True)

    def export(
        self, keys: Optional[Iterable[str]] = None
    ) -> Dict[str, Dict[str, Any]]:
        """Snapshots for ``keys`` (default: every observed key)."""
        selected = tuple(keys) if keys is not None else tuple(self._keys)
        return {
            key: self.registry.histogram(key).snapshot()
            for key in selected
            if key in self._keys
        }

    def clear(self) -> None:
        self._keys.clear()
        self.registry = MetricsRegistry()
