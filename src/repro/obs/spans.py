"""Hierarchical span tracer: thread/process-aware, monotonic-clock only.

The tracer records *spans* (named intervals with a parent, a category,
and free-form args) and *instants* (point events) into a per-process
buffer — plain ``list.append`` under the GIL, no locks on the hot
path — or straight into a *sink* callable (the telemetry sidecar's
line writer).  Worker processes run their own local tracer around each
attempt and ship the drained records back over the existing event
pipes, so one ``trace.jsonl`` ends up holding the whole tree:

    run → pipeline → unit → attempt → (cache/journal/kernel spans)

Two invariants keep telemetry out of the determinism surface
(DESIGN.md §14):

* **Monotonic clocks only.**  Every timestamp is ``time.monotonic_ns()``
  (system-wide on Linux, so parent and forked-worker timestamps are
  directly comparable).  Wall-clock only ever appears in the sidecar's
  per-segment *anchor* pair, captured once at segment open and used at
  export time.
* **Strictly out-of-band.**  Records never enter unit payloads, cache
  keys, journal records, or digests; the ``obs`` package is excluded
  from :func:`repro.cache.keys.code_salt`.

Span records are flat JSON-serializable dicts::

    {"t": "span", "name": ..., "cat": ..., "pid": ..., "tid": ...,
     "thread": ..., "id": n, "parent": m|None, "ts": mono_ns,
     "dur": ns, "mode": "sync"|"async", "args": {...}}

``mode: "async"`` marks spans that overlap on one thread (concurrent
in-flight units in the dispatch loop); the Chrome exporter renders
them as async b/e pairs instead of stack slices.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "absorb",
    "activate",
    "current",
    "deactivate",
    "enabled",
    "instant",
    "span",
]

Record = Dict[str, Any]
Sink = Callable[[Record], None]


class Span:
    """An open span handle; mutate ``args`` freely before ``end``."""

    __slots__ = (
        "name", "cat", "args", "span_id", "parent_id",
        "tid", "thread", "start_ns", "mode",
    )

    def __init__(
        self,
        name: str,
        cat: str,
        args: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        mode: str,
    ) -> None:
        self.name = name
        self.cat = cat
        self.args = args
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = threading.get_ident()
        self.thread = threading.current_thread().name
        self.start_ns = time.monotonic_ns()
        self.mode = mode


class _SpanContext:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.args.setdefault("error", exc_type.__name__)
        self._tracer.end(self._span)
        return False


class _NullContext:
    """Reusable, reentrant no-op context (tracing disabled)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL = _NullContext()


class Tracer:
    """Collects span/instant records for one process.

    With ``sink`` set, completed records go straight to the sink (the
    sidecar appender) and are not retained; with ``sink=None`` they
    accumulate in an in-memory buffer until :meth:`drain` — the mode
    worker processes use before shipping records over the event pipe.
    """

    def __init__(self, sink: Optional[Sink] = None) -> None:
        self._sink = sink
        self._buffer: List[Record] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- internals -------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _emit(self, record: Record) -> None:
        if self._sink is not None:
            self._sink(record)
        else:
            self._buffer.append(record)

    # -- span lifecycle --------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "run",
        args: Optional[Dict[str, Any]] = None,
        *,
        attach: bool = True,
    ) -> Span:
        """Open a span.

        ``attach=True`` (default) pushes it onto the calling thread's
        stack so nested spans parent under it.  ``attach=False`` opens
        a *floating* (async) span: it still parents under the current
        top-of-stack, but does not become a parent itself — the mode
        used for overlapping in-flight unit spans in dispatch loops.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        span_ = Span(
            name, cat, dict(args or ()), next(self._ids), parent,
            "sync" if attach else "async",
        )
        if attach:
            stack.append(span_.span_id)
        return span_

    def end(self, span_: Span) -> None:
        """Close a span and emit its record."""
        if span_.mode == "sync":
            stack = self._stack()
            if stack and stack[-1] == span_.span_id:
                stack.pop()
            elif span_.span_id in stack:  # tolerate mis-nesting
                stack.remove(span_.span_id)
        self._emit({
            "t": "span",
            "name": span_.name,
            "cat": span_.cat,
            "pid": os.getpid(),
            "tid": span_.tid,
            "thread": span_.thread,
            "id": span_.span_id,
            "parent": span_.parent_id,
            "ts": span_.start_ns,
            "dur": time.monotonic_ns() - span_.start_ns,
            "mode": span_.mode,
            "args": span_.args,
        })

    def span(
        self, name: str, cat: str = "run",
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanContext:
        return _SpanContext(self, self.begin(name, cat, args))

    def instant(
        self, name: str, cat: str = "run",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        stack = self._stack()
        self._emit({
            "t": "instant",
            "name": name,
            "cat": cat,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "parent": stack[-1] if stack else None,
            "ts": time.monotonic_ns(),
            "args": dict(args or ()),
        })

    def absorb(self, records: Iterable[Record]) -> None:
        """Append already-complete records (worker-shipped spans)."""
        for record in records:
            self._emit(record)

    def drain(self) -> List[Record]:
        """Pop and return everything buffered (sink-less tracers)."""
        records, self._buffer = self._buffer, []
        return records


# -- ambient (process-global) tracer -------------------------------
#
# One active tracer per process, activated for the duration of a run.
# Every instrumentation site goes through the module-level helpers
# below, which collapse to a single global read + early-out when no
# tracer is active — cheap enough to leave in hot-ish paths.

_active: Optional[Tracer] = None


def activate(tracer: Tracer) -> Tracer:
    global _active
    _active = tracer
    return tracer


def deactivate() -> None:
    global _active
    _active = None


def current() -> Optional[Tracer]:
    return _active


def enabled() -> bool:
    return _active is not None


def span(name: str, cat: str = "run", **args: Any):
    """Ambient span context; a shared no-op when tracing is off.

    Yields the :class:`Span` (mutate ``.args`` for end-time fields) or
    ``None`` when disabled — guard with ``if sp is not None``.
    """
    tracer = _active
    if tracer is None:
        return _NULL
    return _SpanContext(tracer, tracer.begin(name, args=args, cat=cat))


def instant(name: str, cat: str = "run", **args: Any) -> None:
    tracer = _active
    if tracer is not None:
        tracer.instant(name, cat, args)


def absorb(records: Iterable[Record]) -> None:
    """Feed worker-shipped records into the active tracer, if any."""
    tracer = _active
    if tracer is not None:
        tracer.absorb(records)


def _reset_after_fork() -> None:
    # A forked child (pool worker) must not inherit the parent's
    # tracer: its sink holds the parent's sidecar file handle and
    # concurrent appends from two processes would interleave lines.
    # Workers run their own buffered tracer per attempt instead.
    global _active
    _active = None


os.register_at_fork(after_in_child=_reset_after_fork)
