"""Exporters: Chrome/Perfetto trace-event JSON and Prometheus text.

``chrome_trace`` turns a run's ``trace.jsonl`` records into the Chrome
trace-event format (load at ``ui.perfetto.dev`` or ``chrome://tracing``):

* sync spans → ``"X"`` complete events (stack slices per thread);
* async spans (overlapping in-flight units) → ``"b"``/``"e"`` pairs on
  an id, which Perfetto renders as parallel async tracks;
* instants → ``"i"`` events;
* segment/process/thread names → ``"M"`` metadata events.

Timestamps: every record carries ``time.monotonic_ns()``; each segment
header carries a ``(unix_ns, mono_ns)`` anchor pair.  Export maps a
record to absolute microseconds via its segment's anchor
(``unix + (ts - mono)``) — CLOCK_MONOTONIC is system-wide on Linux,
so worker-process records align under the same segment anchor.

``render_prometheus`` flattens a metrics snapshot (the serve
``metrics`` verb's reply, or a sidecar segment) into Prometheus text
exposition format (version 0.0.4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["chrome_trace", "render_prometheus"]


def _anchor_us(
    record: Dict[str, Any], anchor: Tuple[int, int]
) -> float:
    unix_ns, mono_ns = anchor
    return (unix_ns + (int(record["ts"]) - mono_ns)) / 1000.0


def chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON for one run's trace records.

    Records stream in file order: a ``segment`` header re-anchors the
    wall-clock mapping for everything after it (resumed runs append a
    fresh segment with a fresh monotonic epoch).
    """
    events: List[Dict[str, Any]] = []
    # Fallback anchor for records before any header (shouldn't happen,
    # but torn traces are normal): treat monotonic ns as absolute.
    anchor: Tuple[int, int] = (0, 0)
    named_threads: set = set()
    named_pids: set = set()

    for record in records:
        kind = record.get("t")
        if kind == "segment":
            try:
                anchor = (int(record["unix_ns"]), int(record["mono_ns"]))
            except (KeyError, TypeError, ValueError):
                continue
            pid = record.get("pid", 0)
            if pid not in named_pids:
                named_pids.add(pid)
                label = f"repro segment {record.get('seq', '?')}"
                run_id = record.get("run_id")
                if run_id:
                    label += f" · {run_id}"
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": label},
                })
            continue
        if kind not in ("span", "instant") or "ts" not in record:
            continue
        pid = record.get("pid", 0)
        tid = record.get("tid", 0)
        thread = record.get("thread")
        if thread and (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "args": {"name": thread},
            })
        base = {
            "name": record.get("name", "?"),
            "cat": record.get("cat", "run"),
            "pid": pid,
            "tid": tid,
            "ts": _anchor_us(record, anchor),
            "args": record.get("args", {}),
        }
        if kind == "instant":
            events.append({**base, "ph": "i", "s": "t"})
        elif record.get("mode") == "async":
            # Overlapping in-flight unit spans: async begin/end pairs
            # keyed by a per-process-unique id.
            span_id = f"{pid}:{record.get('id', 0)}"
            dur_us = int(record.get("dur", 0)) / 1000.0
            events.append({**base, "ph": "b", "id": span_id})
            events.append({
                **base, "ph": "e", "id": span_id,
                "ts": base["ts"] + dur_us, "args": {},
            })
        else:
            events.append({
                **base, "ph": "X",
                "dur": int(record.get("dur", 0)) / 1000.0,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- Prometheus text exposition ------------------------------------

def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _walk(
    prefix: str, value: Any,
    lines: List[str], typed: set,
) -> None:
    number = _numeric(value)
    if number is not None:
        metric = _sanitize(prefix)
        if metric not in typed:
            typed.add(metric)
            kind = "counter" if metric.endswith("_total") else "gauge"
            lines.append(f"# TYPE {metric} {kind}")
        if number == int(number):
            lines.append(f"{metric} {int(number)}")
        else:
            lines.append(f"{metric} {number}")
        return
    if isinstance(value, dict):
        for key in sorted(value):
            _walk(f"{prefix}_{key}", value[key], lines, typed)
    # strings/lists/None are not representable as samples — skipped.


def render_prometheus(
    snapshot: Dict[str, Any], prefix: str = "repro"
) -> str:
    """Flatten a nested numeric snapshot into Prometheus text format."""
    lines: List[str] = []
    typed: set = set()
    for key in sorted(snapshot):
        _walk(f"{prefix}_{key}", snapshot[key], lines, typed)
    return "\n".join(lines) + "\n"
