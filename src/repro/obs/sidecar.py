"""Journaled telemetry sidecars: ``trace.jsonl`` + ``metrics.json``.

Each traced run writes two plain files *next to* its journal — never
through it.  The journal's record log is a closed, digest-relevant
set (``repro.journal.log.RECORD_KINDS``) with kill-injection counting
appends; telemetry must not perturb either, so the sidecar appends to
its own files in the same run directory:

* ``trace.jsonl`` — one JSON object per line.  Appends are flushed per
  record, so a SIGKILLed orchestrator loses at most the record being
  written; readers skip torn or garbage lines instead of failing.  A
  resumed run *appends* a new ``segment`` header (fresh pid, fresh
  monotonic epoch) rather than truncating, so an interrupted run's
  trace holds every process segment that worked on it.
* ``metrics.json`` — ``{"segments": [...]}``, rewritten atomically at
  segment close with that segment's registry snapshots appended.  A
  killed segment simply contributes no metrics entry; its spans are
  still in ``trace.jsonl``.

Segment headers carry the only wall-clock in the whole telemetry
stream: a ``(unix_ns, mono_ns)`` anchor pair captured back-to-back at
segment open, letting the exporter place each segment's monotonic
timestamps on one absolute axis (DESIGN.md §14).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TelemetrySidecar",
    "read_metrics",
    "read_trace",
    "segments",
    "trace_path",
]

TRACE_NAME = "trace.jsonl"
METRICS_NAME = "metrics.json"


def trace_path(run_directory: str) -> str:
    return os.path.join(run_directory, TRACE_NAME)


class TelemetrySidecar:
    """Appender for one process segment of a run's telemetry."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.trace_path = trace_path(directory)
        self.metrics_path = os.path.join(directory, METRICS_NAME)
        self._fh = None
        self.segment_seq: Optional[int] = None

    def open_segment(self, run_id: Optional[str] = None) -> int:
        """Append (and flush) this process's segment header."""
        seq = 0
        if os.path.exists(self.trace_path):
            for record in read_trace(self.trace_path):
                if record.get("t") == "segment":
                    seq += 1
        self._fh = open(self.trace_path, "a", encoding="utf-8")
        self.segment_seq = seq
        self.write({
            "t": "segment",
            "seq": seq,
            "pid": os.getpid(),
            "run_id": run_id,
            # Captured back-to-back: the segment's only wall-clock,
            # used solely at export time to align monotonic spans.
            "unix_ns": time.time_ns(),
            "mono_ns": time.monotonic_ns(),
        })
        return seq

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record; flushed so a SIGKILL loses ≤1 line."""
        if self._fh is None:
            return
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, TypeError, ValueError):
            pass  # telemetry must never take the run down

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Append this segment's metrics snapshot to ``metrics.json``."""
        payload = read_metrics(self.metrics_path)
        payload.setdefault("segments", []).append({
            "seq": self.segment_seq,
            "pid": os.getpid(),
            "metrics": snapshot,
        })
        tmp = self.metrics_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.metrics_path)
        except (OSError, TypeError, ValueError):
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Read a trace file, skipping torn/garbage lines (crash tolerance)."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a SIGKILLed writer
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def read_metrics(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def segments(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The segment headers in a trace, in append order."""
    return [r for r in records if r.get("t") == "segment"]
