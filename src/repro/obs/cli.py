"""``repro trace`` — export a run's telemetry sidecar.

``repro trace export RUN_ID [--format chrome] [--output PATH]`` reads
``trace.jsonl`` next to the run's journal and emits Chrome/Perfetto
trace-event JSON (open the file at ``ui.perfetto.dev``).  ``RUN_ID``
may be ``latest`` to pick the most recently created journaled run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.obs.export import chrome_trace
from repro.obs.sidecar import read_trace, segments, trace_path

__all__ = ["add_trace_parser", "cmd_trace"]


def add_trace_parser(sub) -> None:
    trace = sub.add_parser(
        "trace",
        help="export run telemetry (Chrome/Perfetto trace JSON)",
        description=(
            "Export the telemetry sidecar written next to a run's "
            "journal as a Chrome/Perfetto trace."
        ),
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)
    export = tsub.add_parser(
        "export",
        help="emit a run's trace.jsonl as Chrome trace-event JSON",
    )
    export.add_argument(
        "run_id",
        help="journaled run id, or 'latest' for the newest run",
    )
    export.add_argument(
        "--format",
        choices=("chrome",),
        default="chrome",
        help="output format (default: chrome trace-event JSON)",
    )
    export.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write to PATH instead of stdout",
    )
    export.add_argument(
        "--cache-dir",
        default=None,
        help="cache root holding the run journals "
        "(default: REPRO_CACHE_DIR or the per-user default)",
    )


def _resolve_run_dir(cache_root: str, run_id: str) -> Optional[str]:
    from repro.journal.registry import inspect_run, list_runs

    if run_id == "latest":
        runs = list_runs(cache_root)
        return runs[0].directory if runs else None
    info = inspect_run(cache_root, run_id)
    return info.directory if info is not None else None


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.cache import default_cache_dir

    cache_root = args.cache_dir or default_cache_dir()
    directory = _resolve_run_dir(cache_root, args.run_id)
    if directory is None:
        print(
            f"trace: no journaled run {args.run_id!r} under {cache_root}",
            file=sys.stderr,
        )
        return 2
    path = trace_path(directory)
    if not os.path.exists(path):
        print(
            f"trace: run has no telemetry sidecar ({path}); "
            "was it executed with tracing disabled (--no-trace)?",
            file=sys.stderr,
        )
        return 2
    records = read_trace(path)
    trace = chrome_trace(records)
    rendered = json.dumps(trace, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    else:
        print(rendered)
    spans = sum(1 for r in records if r.get("t") == "span")
    print(
        f"trace: {len(segments(records))} segment(s), {spans} span(s), "
        f"{len(trace['traceEvents'])} trace events",
        file=sys.stderr,
    )
    return 0
