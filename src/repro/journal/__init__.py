"""Crash-consistent run journal (DESIGN.md §12).

A write-ahead ledger that makes every long-running pipeline — fleet
runs, ``reproduce-all`` passes, robustness campaigns — resumable after
the orchestrator dies at any instant, with bit-identical final
digests:

* :mod:`repro.journal.log` — the fsync'd, length-prefixed record
  stream with torn-tail-tolerant replay;
* :mod:`repro.journal.lease` — heartbeat leases (one orchestrator per
  run) and the :class:`FileLock` mutex reused by the quarantine log;
* :mod:`repro.journal.run` — the :class:`RunJournal`: atomic manifest,
  durable unit payloads, idempotent replay, deterministic run ids;
* :mod:`repro.journal.pipelines` — per-pipeline config payloads and
  journal openers (unit lists expanded exactly as the pipeline will);
* :mod:`repro.journal.registry` — read-only run discovery for
  ``repro runs list|show``;
* :mod:`repro.journal.cli` — the ``repro runs`` subcommand and
  ``resume_run``.
"""

from repro.journal.lease import (
    FileLock,
    Lease,
    LeaseHeldError,
    LeaseLostError,
)
from repro.journal.log import RecordLog, replay_records
from repro.journal.run import RunJournal, derive_run_id, open_run

__all__ = [
    "FileLock",
    "Lease",
    "LeaseHeldError",
    "LeaseLostError",
    "RecordLog",
    "RunJournal",
    "derive_run_id",
    "open_run",
    "replay_records",
]
