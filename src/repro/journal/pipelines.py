"""Journal bindings for the three long-running pipelines.

Each pipeline gets a **config payload** (the exact dict its
deterministic ``run_id`` hashes over and its manifest records) and an
``open_*_journal`` helper that expands the run's unit list the same way
the pipeline itself will.  The payload is also sufficient to
*reconstruct* the pipeline — ``repro runs resume <run_id>`` rebuilds
the fleet config / artifact selection / campaign spec from the manifest
alone, so a resume needs no memory of the original command line.

Unit identities must match the pipeline's own ids bit-for-bit:

* fleet: the chunk ids of :meth:`FleetDriver.chunks` (the chunk plan is
  frozen into the manifest, so a resume under a different ``--workers``
  replays the *original* chunking — chunk shape cannot move results,
  but the journal's unit list must stay stable);
* reproduce: ``artifact/series@scale`` unit keys
  (:func:`repro.experiments.driver._wall_key`);
* sweep: :meth:`SweepUnit.unit_id` in canonical expansion order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.driver import (
    ARTIFACTS,
    FleetDriver,
    artifact_units,
    _wall_key,
)
from repro.fleet.config import FaultPlan, FleetConfig
from repro.journal.run import RunJournal, open_run
from repro.sweep.spec import CampaignSpec

__all__ = [
    "fleet_config_from_payload",
    "fleet_payload",
    "open_fleet_journal",
    "open_reproduce_journal",
    "open_sweep_journal",
    "reproduce_payload",
    "reproduce_selection_from_payload",
    "spec_from_payload",
    "sweep_payload",
]


# -- fleet -------------------------------------------------------------------


def fleet_payload(config: FleetConfig) -> Dict[str, Any]:
    fault = None
    if config.fault is not None:
        fault = {
            "racks": list(config.fault.racks),
            "start_s": config.fault.start_s,
            "duration_s": config.fault.duration_s,
            "probability": config.fault.probability,
            "kind": config.fault.kind,
        }
    return {
        "n_nodes": config.n_nodes,
        "agent": config.agent,
        "seed": config.seed,
        "duration_s": config.duration_s,
        "rack_size": config.rack_size,
        "fault": fault,
    }


def fleet_config_from_payload(payload: Dict[str, Any]) -> FleetConfig:
    fault = payload.get("fault")
    plan = None
    if fault is not None:
        plan = FaultPlan(
            racks=tuple(int(r) for r in fault["racks"]),
            start_s=int(fault["start_s"]),
            duration_s=int(fault["duration_s"]),
            probability=float(fault["probability"]),
            kind=str(fault["kind"]),
        )
    return FleetConfig(
        n_nodes=int(payload["n_nodes"]),
        agent=str(payload["agent"]),
        seed=int(payload["seed"]),
        duration_s=int(payload["duration_s"]),
        rack_size=int(payload["rack_size"]),
        fault=plan,
    )


def open_fleet_journal(
    cache_root: str,
    config: FleetConfig,
    workers: int,
    *,
    resume: bool = False,
    run_id: Optional[str] = None,
    lease_ttl_s: float = 30.0,
) -> RunJournal:
    """Journal for one fleet run; the chunk plan freezes in the manifest.

    The run id hashes the fleet *config* only (not ``workers``): the
    same fleet maps to the same journal no matter the pool size, and a
    resume adopts the manifest's chunk plan (``verify_units=False``)
    rather than re-deriving chunks from the current worker count.
    """
    driver = FleetDriver(config, workers=workers)
    chunks = driver.chunks()
    unit_ids: List[str] = []
    plan_chunks: Dict[str, List[int]] = {}
    for index, chunk in enumerate(chunks):
        unit_id = f"chunk{index:03d}(n{chunk[0]}+{len(chunk)})"
        unit_ids.append(unit_id)
        plan_chunks[unit_id] = list(chunk)
    return open_run(
        cache_root,
        kind="fleet",
        config=fleet_payload(config),
        plan={"chunks": plan_chunks, "workers": driver.workers},
        units=unit_ids,
        resume=resume,
        run_id=run_id,
        verify_units=False,
        lease_ttl_s=lease_ttl_s,
    )


# -- reproduce-all -----------------------------------------------------------


def reproduce_payload(
    names: Sequence[str], scale: float
) -> Dict[str, Any]:
    return {
        "artifacts": list(names),
        "scale": float(scale),
        "granularity": "series",
    }


def reproduce_selection_from_payload(
    payload: Dict[str, Any],
) -> "tuple[List[str], float]":
    names = [str(n) for n in payload["artifacts"]]
    return names, float(payload["scale"])


def open_reproduce_journal(
    cache_root: str,
    only: Optional[Sequence[str]],
    scale: float,
    *,
    resume: bool = False,
    run_id: Optional[str] = None,
    lease_ttl_s: float = 30.0,
) -> RunJournal:
    names = [n for n in ARTIFACTS if only is None or n in only]
    unknown = set(only or ()) - set(ARTIFACTS)
    if unknown:
        raise ValueError(f"unknown artifacts: {sorted(unknown)}")
    unit_ids = [
        _wall_key(name, series, scale)
        for name in names
        for _name, series in artifact_units(name, scale)
    ]
    return open_run(
        cache_root,
        kind="reproduce",
        config=reproduce_payload(names, scale),
        plan={"artifacts": list(names)},
        units=unit_ids,
        resume=resume,
        run_id=run_id,
        lease_ttl_s=lease_ttl_s,
    )


# -- sweep -------------------------------------------------------------------


def sweep_payload(spec: CampaignSpec) -> Dict[str, Any]:
    """The :meth:`CampaignSpec.from_dict`-shaped payload of a spec."""
    return {
        "name": spec.name,
        "agents": list(spec.agents),
        "scales": list(spec.scales),
        "seeds": list(spec.seeds),
        "duration_s": spec.duration_s,
        "rack_size": spec.rack_size,
        "fault": [
            {
                "kind": axis.kind,
                "intensities": list(axis.intensities),
                "start_s": axis.start_s,
                "duration_s": axis.duration_s,
                "racks": list(axis.racks),
            }
            for axis in spec.faults
        ],
    }


def spec_from_payload(payload: Dict[str, Any]) -> CampaignSpec:
    return CampaignSpec.from_dict(payload)


def open_sweep_journal(
    cache_root: str,
    spec: CampaignSpec,
    *,
    resume: bool = False,
    run_id: Optional[str] = None,
    lease_ttl_s: float = 30.0,
) -> RunJournal:
    unit_ids = [unit.unit_id() for unit in spec.expand()]
    return open_run(
        cache_root,
        kind="sweep",
        config=sweep_payload(spec),
        plan={"campaign": spec.name},
        units=unit_ids,
        resume=resume,
        run_id=run_id,
        lease_ttl_s=lease_ttl_s,
    )
