"""The append-only record log: fsync'd frames, torn-tail replay.

The log is the journal's intent stream.  Every record is one framed
JSON object::

    >I payload length | >I crc32(payload) | payload bytes

Appends are flushed and ``fsync``'d before :meth:`RecordLog.append`
returns, so a record the orchestrator *observed as written* survives
any subsequent SIGKILL.  The write itself is **not** atomic — a kill
mid-``write`` leaves a torn final frame — so replay applies the
classic write-ahead rule: parse frames front to back, stop at the
first incomplete or checksum-failing frame, and ignore everything from
there on.  A torn tail therefore costs at most the one record that was
being written, never a parse error.  Re-opening for append truncates
the file back to the last valid frame boundary so the torn bytes can
never prefix a fresh record.

Record kinds (DESIGN.md §12): ``UNIT_DISPATCHED``, ``UNIT_DONE``,
``UNIT_QUARANTINED``, ``RUN_SEALED``.

Kill-after hook: the chaos harness's ``--kill-parent`` mode needs a
*seeded point* at which the orchestrator dies.  Wall-clock points are
useless here (a full 8-node fleet run takes ~0.1 s), so the point is
**count-based**: when ``REPRO_JOURNAL_KILL_AFTER=N`` is set, the
process SIGKILLs itself immediately after the Nth record append across
every log in the process — after the fsync, so the journal state at
death is exactly N durable records.  Tests swap the kill action for an
exception to exercise the same path in-process.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import spans as obs

__all__ = [
    "KILL_AFTER_ENV",
    "RECORD_KINDS",
    "RecordLog",
    "replay_records",
    "set_kill_action",
]

_FRAME = struct.Struct(">II")  # payload length, crc32(payload)

RECORD_KINDS = (
    "UNIT_DISPATCHED",
    "UNIT_DONE",
    "UNIT_QUARANTINED",
    "RUN_SEALED",
)

#: Count-based seeded kill point for the parent-kill chaos mode.
KILL_AFTER_ENV = "REPRO_JOURNAL_KILL_AFTER"

_appends_this_process = 0


def _default_kill_action() -> None:  # pragma: no cover — kills the process
    os.kill(os.getpid(), signal.SIGKILL)


_kill_action: Callable[[], None] = _default_kill_action


def set_kill_action(action: Optional[Callable[[], None]]) -> None:
    """Swap the kill-after action (tests inject a raise; None resets).

    Also resets the process-wide append counter, so each configured
    kill point counts from the swap.
    """
    global _kill_action, _appends_this_process
    _kill_action = action if action is not None else _default_kill_action
    _appends_this_process = 0


def _maybe_kill_after_append() -> None:
    global _appends_this_process
    raw = os.environ.get(KILL_AFTER_ENV)
    if raw is None:
        return
    try:
        threshold = int(raw)
    except ValueError:
        return
    _appends_this_process += 1
    if _appends_this_process >= threshold:
        _kill_action()


def replay_records(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse the log front to back; stop at the first torn frame.

    Returns:
        ``(records, valid_length)``: every fully-written record in
        append order, and the byte offset of the last valid frame
        boundary.  A missing file replays as ``([], 0)``.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset + _FRAME.size <= len(data):
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # torn tail: header written, payload incomplete
        payload = data[offset + _FRAME.size:end]
        if zlib.crc32(payload) != crc:
            break  # torn/corrupt frame: stop, ignore the rest
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


@dataclass
class RecordLog:
    """One run's append-only record stream.

    Opening for append replays first and truncates any torn tail, so
    the file always ends on a frame boundary before new records land.
    """

    path: str
    _handle: Any = field(init=False, default=None, repr=False)
    _records: List[Dict[str, Any]] = field(
        init=False, default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        self._records, valid = replay_records(self.path)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._handle = open(self.path, "ab")
        if self._handle.tell() > valid:
            self._handle.truncate(valid)
            self._handle.seek(valid)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Every durable record, replay order (replayed + appended)."""
        return list(self._records)

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Write one record durably; returns it.

        The record is on disk (flushed + fsync'd) when this returns —
        the property every resume guarantee rests on.
        """
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown record kind {kind!r}")
        record = {"kind": kind, **fields}
        # Telemetry never rides this log (RECORD_KINDS is closed, and
        # the kill-after counter must only ever count durable journal
        # records); the span below lands in the sidecar instead.
        with obs.span("journal.append", cat="journal", kind=kind):
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            self._handle.write(
                _FRAME.pack(len(payload), zlib.crc32(payload))
            )
            self._handle.write(payload)
            self._handle.flush()
            with obs.span("journal.fsync", cat="journal"):
                os.fsync(self._handle.fileno())
        self._records.append(record)
        _maybe_kill_after_append()
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
