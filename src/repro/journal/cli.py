"""``repro runs``: list, inspect, and resume journaled runs.

Subcommands::

    repro runs list [--cache-dir PATH]
    repro runs show RUN_ID [--timing] [--cache-dir PATH]
    repro runs resume RUN_ID [--workers N] [--no-trace] [--cache-dir PATH]
    repro runs prune [--keep N] [--sealed-only] [--cache-dir PATH]

``show --timing`` reconstructs a per-unit wall / attempts / source
table purely from the run's durable journal records, so the breakdown
works for interrupted runs too; units slower than 3x the median wall
are flagged as outliers.

``resume`` rebuilds the pipeline from the run's manifest alone (fleet
config, artifact selection, or campaign spec — whatever the original
command expanded) and re-opens the journal in resume mode: every
journaled unit replays, only un-journaled units execute, and the run
seals with a digest bit-identical to an uninterrupted run (the chaos
harness's ``--kill-parent`` mode proves exactly this).
"""

from __future__ import annotations

import argparse
import os
import shutil
import time
from typing import List, Optional, Tuple

from repro.cache import ResultCache, default_cache_dir
from repro.journal.log import replay_records
from repro.journal.registry import RunInfo, inspect_run, list_runs
from repro.journal.run import RunJournal, runs_root
from repro.obs import run_tracing
from repro.obs.sidecar import read_trace, segments, trace_path

__all__ = [
    "add_runs_parser",
    "cmd_runs",
    "journal_status_line",
    "prune_runs",
    "resume_run",
    "timing_rows",
]

#: Walls this many times over the median are flagged as outliers.
OUTLIER_FACTOR = 3.0


def journal_status_line(journal: RunJournal) -> str:
    """The ``[journal: ...]`` summary the pipelines print.

    Deliberately not ``[cache: ...]`` — the sweep CLI contract promises
    no cache line under ``--no-cache``, and the journal is not the
    result cache.
    """
    stats = journal.stats
    state = "sealed" if journal.sealed else "open"
    return (
        f"[journal: run {journal.run_id} units={len(journal.units)} "
        f"replayed={stats.replayed} executed={stats.executed} "
        f"cached={stats.cached} quarantined={stats.quarantined} {state}]"
    )


def add_runs_parser(sub: argparse._SubParsersAction) -> None:
    runs = sub.add_parser(
        "runs",
        help="list, inspect, and resume journaled runs (the crash-"
             "consistent run ledger under <cache>/runs/)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="every journaled run under the cache root"
    )
    runs_list.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="cache root holding the run journals (default: "
             "$REPRO_CACHE_DIR or ./.repro-cache)",
    )
    runs_show = runs_sub.add_parser(
        "show", help="one run's manifest, progress, and status"
    )
    runs_show.add_argument("run_id", metavar="RUN_ID")
    runs_show.add_argument(
        "--timing", action="store_true",
        help="per-unit wall/attempts/source table rebuilt from the "
             "journal records (works for interrupted runs)",
    )
    runs_show.add_argument("--cache-dir", metavar="PATH", default=None)
    runs_resume = runs_sub.add_parser(
        "resume",
        help="re-open an interrupted run: replay journaled units, "
             "execute only the rest, seal",
    )
    runs_resume.add_argument("run_id", metavar="RUN_ID")
    runs_resume.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the remaining units (default: the fleet "
             "manifest's worker count, else 1)",
    )
    runs_resume.add_argument("--cache-dir", metavar="PATH", default=None)
    runs_resume.add_argument(
        "--no-cache", dest="cache", action="store_false", default=True,
        help="do not consult the result cache for remaining units",
    )
    runs_resume.add_argument(
        "--no-trace", dest="trace", action="store_false", default=True,
        help="do not append a telemetry segment to the run's "
             "trace.jsonl sidecar",
    )
    runs_prune = runs_sub.add_parser(
        "prune",
        help="delete old run directories from <cache>/runs/ (running "
             "runs — live lease — are always refused)",
    )
    runs_prune.add_argument(
        "--keep", type=int, default=0, metavar="N",
        help="keep the N newest prunable runs (default: %(default)s — "
             "prune every non-running run)",
    )
    runs_prune.add_argument(
        "--sealed-only", action="store_true",
        help="prune only sealed runs; interrupted (resumable) runs are "
             "kept",
    )
    runs_prune.add_argument("--cache-dir", metavar="PATH", default=None)


def _cache_root(args: argparse.Namespace) -> str:
    return args.cache_dir or default_cache_dir()


def _render_info(info: RunInfo) -> str:
    age = ""
    if info.created_at:
        age = f" age={max(0.0, time.time() - info.created_at):.0f}s"
    return (
        f"{info.run_id}  {info.kind:<9} {info.status:<11} "
        f"{info.done_units}/{info.total_units} done "
        f"({info.executed_units} executed, {info.cached_units} cached, "
        f"{info.quarantined_units} quarantined){age}"
    )


def _cmd_runs_list(args: argparse.Namespace) -> int:
    root = _cache_root(args)
    runs = list_runs(root)
    if not runs:
        print(f"no journaled runs under {root}")
        return 0
    print(f"journaled runs under {root}:")
    for info in runs:
        print(f"  {_render_info(info)}")
    return 0


def timing_rows(records: List[dict]) -> List[dict]:
    """Per-unit timing breakdown from durable journal records.

    Purely record-driven — no sidecar needed — so it reconstructs the
    same table for interrupted runs.  Each row is
    ``{"unit", "wall", "attempts", "source", "outlier"}`` where
    ``source`` is executed/cached/quarantined/pending and ``outlier``
    marks executed walls above ``OUTLIER_FACTOR`` x the median executed
    wall.  Rows sort slowest-first (walls first, then the rest in
    journal order).
    """
    attempts: dict = {}
    outcome: dict = {}
    order: List[str] = []
    for record in records:
        unit = record.get("unit")
        if not isinstance(unit, str):
            continue
        if unit not in attempts and unit not in outcome:
            order.append(unit)
        kind = record.get("kind")
        if kind == "UNIT_DISPATCHED":
            attempts[unit] = attempts.get(unit, 0) + 1
        elif kind == "UNIT_DONE":
            wall = record.get("wall")
            outcome[unit] = (
                float(wall) if isinstance(wall, (int, float)) else None,
                "executed" if record.get("executed", True) else "cached",
            )
        elif kind == "UNIT_QUARANTINED":
            outcome[unit] = (None, "quarantined")
    rows = []
    for unit in order:
        wall, source = outcome.get(unit, (None, "pending"))
        rows.append({
            "unit": unit,
            "wall": wall,
            "attempts": attempts.get(unit, 0),
            "source": source,
            "outlier": False,
        })
    executed_walls = sorted(
        row["wall"] for row in rows
        if row["source"] == "executed" and row["wall"] is not None
    )
    if executed_walls:
        mid = len(executed_walls) // 2
        median = (
            executed_walls[mid] if len(executed_walls) % 2
            else (executed_walls[mid - 1] + executed_walls[mid]) / 2.0
        )
        if median > 0:
            for row in rows:
                if (
                    row["source"] == "executed"
                    and row["wall"] is not None
                    and row["wall"] > OUTLIER_FACTOR * median
                ):
                    row["outlier"] = True
    rows.sort(
        key=lambda row: (
            row["wall"] is None,
            -(row["wall"] or 0.0),
            row["unit"],
        )
    )
    return rows


def _print_timing(info: RunInfo) -> None:
    records, _valid = replay_records(
        os.path.join(info.directory, "log.bin")
    )
    rows = timing_rows(records)
    if not rows:
        print("  timing: no unit records journaled yet")
        return
    width = max(len(row["unit"]) for row in rows)
    width = max(width, len("unit"))
    print("  per-unit timing (journal-reconstructed):")
    print(f"    {'unit':<{width}}  {'wall_s':>9}  {'att':>3}  source")
    for row in rows:
        wall = (
            f"{row['wall']:.3f}" if row["wall"] is not None else "-"
        )
        line = (
            f"    {row['unit']:<{width}}  {wall:>9}  "
            f"{row['attempts']:>3}  {row['source']}"
        )
        if row["outlier"]:
            line += f"  << outlier (>{OUTLIER_FACTOR:.0f}x median)"
        print(line)
    sidecar = trace_path(info.directory)
    if os.path.exists(sidecar):
        trace = read_trace(sidecar)
        spans = sum(1 for record in trace if record.get("t") == "span")
        print(
            f"  telemetry: trace.jsonl — {len(segments(trace))} "
            f"segment(s), {spans} span(s) "
            f"(repro trace export {info.run_id})"
        )


def _cmd_runs_show(args: argparse.Namespace) -> int:
    root = _cache_root(args)
    info = inspect_run(root, args.run_id)
    if info is None:
        print(f"repro: error: no journaled run {args.run_id!r} "
              f"under {root}")
        return 1
    print(f"run {info.run_id} ({info.kind}) — {info.status}")
    print(f"  directory: {info.directory}")
    print(
        f"  units: {info.done_units}/{info.total_units} done "
        f"({info.executed_units} executed, {info.cached_units} cached, "
        f"{info.quarantined_units} quarantined)"
    )
    if info.sealed_digest is not None:
        print(f"  sealed digest: {info.sealed_digest}")
    plan = info.manifest.get("plan", {})
    if plan:
        keys = ", ".join(sorted(plan))
        print(f"  plan: {keys}")
    config = info.manifest.get("config", {})
    for key in sorted(config):
        print(f"  config.{key} = {config[key]!r}")
    if getattr(args, "timing", False):
        _print_timing(info)
    return 0


def resume_run(
    cache_root: str,
    run_id: str,
    workers: Optional[int] = None,
    use_cache: bool = True,
    trace: bool = True,
) -> int:
    """Resume one journaled run by id; prints the pipeline's report.

    Returns a process exit code (0 on success, 1 for unknown runs).
    """
    from repro.journal.pipelines import (
        fleet_config_from_payload,
        open_fleet_journal,
        open_reproduce_journal,
        open_sweep_journal,
        reproduce_selection_from_payload,
        spec_from_payload,
    )

    info = inspect_run(cache_root, run_id)
    if info is None:
        print(f"repro: error: no journaled run {run_id!r} under "
              f"{cache_root}")
        return 1
    cache = ResultCache(cache_root) if use_cache else None
    if info.kind == "fleet":
        config = fleet_config_from_payload(info.manifest["config"])
        plan_workers = int(
            info.manifest.get("plan", {}).get("workers", 1)
        )
        effective = workers if workers is not None else plan_workers
        from repro.experiments.driver import FleetDriver

        with open_fleet_journal(
            cache_root, config, effective, resume=True, run_id=run_id
        ) as journal:
            with run_tracing(
                journal, enabled_=trace, kind="fleet", resumed=True
            ):
                aggregate = FleetDriver(
                    config, workers=effective, journal=journal
                ).run()
            print(aggregate.render())
            print(journal_status_line(journal))
        return 0
    if info.kind == "reproduce":
        names, scale = reproduce_selection_from_payload(
            info.manifest["config"]
        )
        from repro.experiments.common import experiment_digest
        from repro.experiments.driver import reproduce_all

        effective = workers if workers is not None else 1
        with open_reproduce_journal(
            cache_root, names, scale, resume=True, run_id=run_id
        ) as journal:
            with run_tracing(
                journal, enabled_=trace, kind="reproduce", resumed=True
            ):
                runs = reproduce_all(
                    parallel=effective > 1,
                    workers=effective,
                    scale=scale,
                    only=names,
                    cache=cache,
                    journal=journal,
                )
            for run in runs:
                print(
                    f"[digest {run.result.name} "
                    f"{experiment_digest(run.result)}]"
                )
            print(journal_status_line(journal))
        return 0
    if info.kind == "sweep":
        spec = spec_from_payload(info.manifest["config"])
        from repro.sweep import SweepRunner

        effective = workers if workers is not None else 1
        with open_sweep_journal(
            cache_root, spec, resume=True, run_id=run_id
        ) as journal:
            with run_tracing(
                journal, enabled_=trace, kind="sweep", resumed=True
            ):
                report = SweepRunner(
                    spec, workers=effective, cache=cache, journal=journal
                ).run()
            print(report.render())
            print(journal_status_line(journal))
        return 0
    print(f"repro: error: run {run_id} has unknown kind {info.kind!r}")
    return 1


def prune_runs(
    cache_root: str,
    keep: int = 0,
    sealed_only: bool = False,
) -> Tuple[List[RunInfo], List[RunInfo], List[RunInfo]]:
    """Delete old run directories; never touch a running run.

    Prunable runs are everything without a live lease — sealed runs
    always, interrupted runs unless ``sealed_only`` — and the newest
    ``keep`` prunable runs are spared (the registry lists newest
    first).  Each pruned run loses its directory *and* any stale lease
    file.

    Returns:
        ``(pruned, kept, refused)``: what was deleted, what was spared
        (kept by ``keep``/``sealed_only``), and the running runs that
        were refused.
    """
    if keep < 0:
        raise ValueError("keep must be >= 0")
    pruned: List[RunInfo] = []
    kept: List[RunInfo] = []
    refused: List[RunInfo] = []
    prunable: List[RunInfo] = []
    for info in list_runs(cache_root):
        if info.status == "running":
            refused.append(info)
        elif sealed_only and info.status != "sealed":
            kept.append(info)
        else:
            prunable.append(info)
    kept.extend(prunable[:keep])
    root = runs_root(cache_root)
    for info in prunable[keep:]:
        shutil.rmtree(info.directory, ignore_errors=True)
        try:
            os.unlink(os.path.join(root, f"{info.run_id}.lease"))
        except OSError:
            pass  # no (stale) lease left behind — the common case
        pruned.append(info)
    return pruned, kept, refused


def _cmd_runs_prune(args: argparse.Namespace) -> int:
    root = _cache_root(args)
    try:
        pruned, kept, refused = prune_runs(
            root, keep=args.keep, sealed_only=args.sealed_only
        )
    except ValueError as error:
        print(f"repro: error: {error}")
        return 2
    for info in refused:
        print(f"  refused {info.run_id} ({info.kind}): running — a live "
              f"orchestrator owns it")
    for info in pruned:
        print(f"  pruned {info.run_id} ({info.kind}, {info.status})")
    print(
        f"[runs prune: {len(pruned)} pruned, {len(kept)} kept, "
        f"{len(refused)} running refused under {root}]"
    )
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    if args.runs_command == "list":
        return _cmd_runs_list(args)
    if args.runs_command == "show":
        return _cmd_runs_show(args)
    if args.runs_command == "prune":
        return _cmd_runs_prune(args)
    assert args.runs_command == "resume"
    return resume_run(
        _cache_root(args),
        args.run_id,
        workers=args.workers,
        use_cache=args.cache,
        trace=args.trace,
    )
