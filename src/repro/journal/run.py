"""The run journal: manifest, durable unit results, idempotent replay.

One run = one directory under ``<cache>/runs/<run_id>/``::

    manifest.json   atomic at start: kind, config, plan, full unit list
    log.bin         append-only record stream (:mod:`repro.journal.log`)
    units/<h>.pkl   durable result payload per completed unit

plus a sibling ``<cache>/runs/<run_id>.lease`` claim file (outside the
directory, so wiping the directory for a fresh run cannot destroy a
live claim).

Crash-consistency discipline — effect before intent-completion:

1. the unit's result pickle is written via tmp + ``fsync`` +
   ``os.replace``;
2. only then is ``UNIT_DONE(key, wall, digest)`` appended (itself
   fsync'd).

A kill between (1) and (2) leaves an orphan payload and no record —
replay re-executes the unit and overwrites it (idempotent: units are
pure, DESIGN.md §11).  A kill mid-(2) leaves a torn tail the log
replay drops.  Replay cross-checks every ``UNIT_DONE`` digest against
the payload file and demotes any mismatch to *not done* — so no torn
or bit-rotted payload is ever served as a completed unit.

``run_id`` is deterministic: a hash of the run kind, the canonical
config payload, and the code-version salt.  The same invocation always
maps to the same journal (that is what makes ``--resume`` a flag
rather than a lookup problem), and any result-affecting source edit
moves every run to a fresh id.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cache.keys import code_salt, _canonical
from repro.journal.lease import Lease, LeaseLostError
from repro.journal.log import RecordLog

__all__ = ["RunJournal", "RunStats", "derive_run_id", "open_run", "runs_root"]


def runs_root(cache_root: str) -> str:
    """The journal area under a cache root."""
    return os.path.join(cache_root, "runs")


def derive_run_id(kind: str, payload: Dict[str, Any]) -> str:
    """Deterministic run id: hash of kind + canonical config + salt."""
    body = json.dumps(
        {
            "kind": kind,
            "config": _canonical(payload),
            "salt": code_salt(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def _unit_file(directory: str, unit_id: str) -> str:
    name = hashlib.sha256(unit_id.encode("utf-8")).hexdigest()[:24]
    return os.path.join(directory, "units", f"{name}.pkl")


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class RunStats:
    """Counters for the journal status line and the resume assertions.

    ``replayed`` units came back from the journal (not executed this
    process); ``executed`` ran live; ``cached`` completed via a result-
    cache hit (recorded durably all the same, so a resume neither
    re-probes nor re-executes them).
    """

    replayed: int = 0
    executed: int = 0
    cached: int = 0
    quarantined: int = 0


@dataclass
class RunJournal:
    """An owned, replayed run ledger.  Build via :func:`open_run`."""

    run_id: str
    directory: str
    manifest: Dict[str, Any]
    _lease: Lease
    _log: RecordLog
    stats: RunStats = field(default_factory=RunStats)
    replayed: Dict[str, Any] = field(default_factory=dict)
    replayed_walls: Dict[str, float] = field(default_factory=dict)
    replayed_quarantined: List[str] = field(default_factory=list)
    sealed_digest: Optional[str] = None
    _heartbeat: Optional[threading.Thread] = field(
        init=False, default=None, repr=False
    )
    _stop: threading.Event = field(
        init=False, default_factory=threading.Event, repr=False
    )
    _closed: bool = field(init=False, default=False)

    # -- queries -------------------------------------------------------------

    @property
    def units(self) -> List[str]:
        return list(self.manifest["units"])

    @property
    def sealed(self) -> bool:
        return self.sealed_digest is not None

    def is_done(self, unit_id: str) -> bool:
        return unit_id in self.replayed

    # -- recording -----------------------------------------------------------

    def record_dispatched(self, unit_id: str, attempt: int) -> None:
        self._log.append("UNIT_DISPATCHED", unit=unit_id, attempt=attempt)

    def record_done(
        self,
        unit_id: str,
        payload: Any,
        wall_s: float,
        executed: bool = True,
    ) -> None:
        """Durable completion: payload pickle first, then the record."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        _atomic_write(_unit_file(self.directory, unit_id), blob)
        self._log.append(
            "UNIT_DONE",
            unit=unit_id,
            wall=float(wall_s),
            digest=digest,
            executed=bool(executed),
        )
        if executed:
            self.stats.executed += 1
        else:
            self.stats.cached += 1

    def record_quarantined(self, unit_id: str, fault_kind: str) -> None:
        self._log.append("UNIT_QUARANTINED", unit=unit_id, fault=fault_kind)
        self.stats.quarantined += 1

    def seal(self, digest: str) -> None:
        """Terminal record: the run completed with this final digest.

        The seal record carries the run's summary counts (done /
        quarantined / executed / cached, derived from the durable
        record stream, so replayed units are included), and the same
        summary is mirrored into a ``summary.json`` sidecar — the
        registry's no-replay fast path for listing sealed runs.  A kill
        between the seal append and the sidecar write just means the
        registry falls back to log replay for this run (correct, only
        slower).
        """
        if self.sealed:
            return
        summary = self._summary_counts()
        self._log.append("RUN_SEALED", digest=digest, **summary)
        self.sealed_digest = digest
        sidecar = {
            "run_id": self.run_id,
            "digest": digest,
            "total_units": len(self.manifest.get("units", [])),
            **summary,
        }
        try:
            _atomic_write(
                os.path.join(self.directory, "summary.json"),
                json.dumps(sidecar, sort_keys=True, indent=2).encode(
                    "utf-8"
                ),
            )
        except OSError:  # pragma: no cover — sidecar is an optimization
            pass

    def _summary_counts(self) -> Dict[str, int]:
        """Completion counts from the durable record stream.

        Computed from the log (not :attr:`stats`) so replayed units
        count and torn records cannot: this is exactly what a registry
        replay of the sealed log would conclude.
        """
        known = set(self.manifest.get("units", []))
        done: Dict[str, bool] = {}
        quarantined = set()
        for record in self._log.records:
            kind = record.get("kind")
            if kind == "UNIT_DONE" and record.get("unit") in known:
                done[record["unit"]] = bool(record.get("executed", True))
            elif (
                kind == "UNIT_QUARANTINED"
                and record.get("unit") in known
            ):
                quarantined.add(record["unit"])
        return {
            "done_units": len(done),
            "quarantined_units": len(quarantined - set(done)),
            "executed_units": sum(1 for e in done.values() if e),
            "cached_units": sum(1 for e in done.values() if not e),
        }

    # -- lifecycle -----------------------------------------------------------

    def _start_heartbeat(self) -> None:
        interval = max(0.2, self._lease.ttl_s / 4.0)

        def beat() -> None:
            while not self._stop.wait(interval):
                try:
                    self._lease.renew()
                except LeaseLostError:  # pragma: no cover — stolen live
                    return

        self._heartbeat = threading.Thread(
            target=beat, name=f"journal-lease-{self.run_id}", daemon=True
        )
        self._heartbeat.start()

    def close(self) -> None:
        """Stop the heartbeat, release the lease, close the log."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=2.0)
        self._log.close()
        self._lease.release()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _replay_into(journal: RunJournal) -> None:
    """Rebuild completion state from the durable record stream."""
    done_records: Dict[str, Dict[str, Any]] = {}
    quarantined: List[str] = []
    known = set(journal.manifest["units"])
    for record in journal._log.records:
        kind = record.get("kind")
        if kind == "UNIT_DONE" and record.get("unit") in known:
            done_records[record["unit"]] = record
        elif kind == "UNIT_QUARANTINED" and record.get("unit") in known:
            if record["unit"] not in quarantined:
                quarantined.append(record["unit"])
        elif kind == "RUN_SEALED":
            journal.sealed_digest = record.get("digest")
    for unit_id, record in done_records.items():
        path = _unit_file(journal.directory, unit_id)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            continue  # payload lost: demote to not-done, re-execute
        if hashlib.sha256(blob).hexdigest() != record.get("digest"):
            continue  # torn/rotted payload: demote to not-done
        try:
            journal.replayed[unit_id] = pickle.loads(blob)
        except Exception:  # noqa: BLE001 — unpicklable ⇒ re-execute
            continue
        journal.replayed_walls[unit_id] = float(record.get("wall", 0.0))
    journal.stats.replayed = len(journal.replayed)
    journal.replayed_quarantined = [
        unit_id for unit_id in quarantined
        if unit_id not in journal.replayed
    ]


def open_run(
    cache_root: str,
    *,
    kind: str,
    config: Dict[str, Any],
    plan: Dict[str, Any],
    units: List[str],
    resume: bool = False,
    run_id: Optional[str] = None,
    verify_units: bool = True,
    lease_ttl_s: float = 30.0,
) -> RunJournal:
    """Claim (and possibly replay) the journal for one run.

    Fresh mode (``resume=False``) wipes any prior journal for this
    ``run_id`` and starts clean — re-running a command deliberately
    re-measures unless the caller asked to resume.  Resume mode adopts
    the existing manifest (after verifying the unit list matches the
    current expansion bit-for-bit, unless ``verify_units=False`` —
    fleet resumes adopt the manifest's frozen chunk plan instead of
    re-deriving one) and replays completions.  A sealed journal resumes
    trivially: everything replays, nothing executes.

    Raises:
        LeaseHeldError: a live orchestrator owns this run.
        ValueError: resume requested but the manifest disagrees with
            the current expansion (config drift without a salt change).
    """
    resolved = run_id or derive_run_id(kind, config)
    root = runs_root(cache_root)
    directory = os.path.join(root, resolved)
    lease = Lease(
        os.path.join(root, f"{resolved}.lease"), ttl_s=lease_ttl_s
    ).acquire()
    try:
        manifest_path = os.path.join(directory, "manifest.json")
        existing: Optional[Dict[str, Any]] = None
        if resume and os.path.exists(manifest_path):
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, ValueError):
                existing = None
        if existing is not None:
            if verify_units and list(existing.get("units", [])) != list(
                units
            ):
                raise ValueError(
                    f"run {resolved}: journaled unit list does not match "
                    "the current expansion; refusing to resume"
                )
            manifest = existing
        else:
            if os.path.isdir(directory):
                shutil.rmtree(directory)
            os.makedirs(os.path.join(directory, "units"), exist_ok=True)
            manifest = {
                "run_id": resolved,
                "kind": kind,
                "config": _canonical(config),
                "plan": _canonical(plan),
                "units": list(units),
                "code_salt": code_salt(),
                "created_at": time.time(),
            }
            _atomic_write(
                manifest_path,
                json.dumps(manifest, sort_keys=True, indent=2).encode(
                    "utf-8"
                ),
            )
        journal = RunJournal(
            run_id=resolved,
            directory=directory,
            manifest=manifest,
            _lease=lease,
            _log=RecordLog(os.path.join(directory, "log.bin")),
        )
    except BaseException:
        lease.release()
        raise
    _replay_into(journal)
    journal._start_heartbeat()
    return journal
