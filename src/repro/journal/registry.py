"""Run discovery: scan the journal area and classify each run.

Read-only — the registry never takes a lease, so ``repro runs list``
can inspect a cache root while a live orchestrator works in it.  A
run's status derives from durable state alone:

* ``sealed``: the log carries ``RUN_SEALED`` — the run finished and its
  final digest is recorded;
* ``running``: an unexpired lease with a live owner exists;
* ``interrupted``: no seal and no live lease — the orchestrator died
  (or released without sealing); the run is resumable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.journal.lease import _read_state, _stale
from repro.journal.log import replay_records
from repro.journal.run import runs_root

__all__ = ["RunInfo", "inspect_run", "interrupted_runs", "list_runs"]


@dataclass(frozen=True)
class RunInfo:
    """One journaled run's durable state, as the registry sees it."""

    run_id: str
    kind: str
    status: str  # "sealed" | "running" | "interrupted"
    total_units: int
    done_units: int
    quarantined_units: int
    executed_units: int
    cached_units: int
    sealed_digest: Optional[str]
    created_at: float
    directory: str
    manifest: Dict[str, Any]


def _read_summary(directory: str) -> Optional[Dict[str, Any]]:
    """The seal-time ``summary.json`` sidecar, if present and sane."""
    try:
        with open(
            os.path.join(directory, "summary.json"), "r", encoding="utf-8"
        ) as handle:
            summary = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(summary, dict) or not summary.get("digest"):
        return None
    return summary


def inspect_run(cache_root: str, run_id: str) -> Optional[RunInfo]:
    """Durable state of one run, or ``None`` if it has no manifest.

    Sealed runs short-circuit through the seal-time ``summary.json``
    sidecar — listing N sealed runs costs N small JSON reads, not N
    full ``log.bin`` replays.  Unsealed runs (and sealed runs whose
    sidecar write was lost to a crash) fall back to replay.
    """
    root = runs_root(cache_root)
    directory = os.path.join(root, run_id)
    manifest_path = os.path.join(directory, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    summary = _read_summary(directory)
    if summary is not None:
        return RunInfo(
            run_id=str(manifest.get("run_id", run_id)),
            kind=str(manifest.get("kind", "?")),
            status="sealed",
            total_units=len(manifest.get("units", [])),
            done_units=int(summary.get("done_units", 0)),
            quarantined_units=int(summary.get("quarantined_units", 0)),
            executed_units=int(summary.get("executed_units", 0)),
            cached_units=int(summary.get("cached_units", 0)),
            sealed_digest=str(summary["digest"]),
            created_at=float(manifest.get("created_at", 0.0)),
            directory=directory,
            manifest=manifest,
        )
    records, _valid = replay_records(os.path.join(directory, "log.bin"))
    known = set(manifest.get("units", []))
    done: Dict[str, bool] = {}
    quarantined = set()
    sealed_digest: Optional[str] = None
    for record in records:
        kind = record.get("kind")
        if kind == "UNIT_DONE" and record.get("unit") in known:
            done[record["unit"]] = bool(record.get("executed", True))
        elif kind == "UNIT_QUARANTINED" and record.get("unit") in known:
            quarantined.add(record["unit"])
        elif kind == "RUN_SEALED":
            sealed_digest = record.get("digest")
    if sealed_digest is not None:
        status = "sealed"
    else:
        lease_state = _read_state(os.path.join(root, f"{run_id}.lease"))
        if lease_state is not None and not _stale(lease_state, time.time()):
            status = "running"
        else:
            status = "interrupted"
    return RunInfo(
        run_id=str(manifest.get("run_id", run_id)),
        kind=str(manifest.get("kind", "?")),
        status=status,
        total_units=len(manifest.get("units", [])),
        done_units=len(done),
        quarantined_units=len(quarantined - set(done)),
        executed_units=sum(1 for executed in done.values() if executed),
        cached_units=sum(1 for executed in done.values() if not executed),
        sealed_digest=sealed_digest,
        created_at=float(manifest.get("created_at", 0.0)),
        directory=directory,
        manifest=manifest,
    )


def list_runs(cache_root: str) -> List[RunInfo]:
    """Every journaled run under the cache root, newest first."""
    root = runs_root(cache_root)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    runs: List[RunInfo] = []
    for name in names:
        if name.endswith(".lease"):
            continue
        info = inspect_run(cache_root, name)
        if info is not None:
            runs.append(info)
    runs.sort(key=lambda info: (-info.created_at, info.run_id))
    return runs


def interrupted_runs(cache_root: str) -> List[RunInfo]:
    """Resumable runs: no seal, no live lease — adoption candidates.

    The ``repro serve`` control plane calls this at startup to re-adopt
    runs whose orchestrator (possibly a previous server) died; each is
    claimed one at a time via the normal lease steal when its job
    actually executes, so two servers racing the same cache root
    resolve per-run, not wholesale.
    """
    return [
        info for info in list_runs(cache_root)
        if info.status == "interrupted"
    ]
