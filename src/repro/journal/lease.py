"""Run ownership: heartbeat leases and a tiny exclusive file lock.

Two orchestrators sharing one cache root must never both own the same
run journal — concurrent appends would interleave records from two
dispatch loops and the replay would see units "complete" that the
surviving orchestrator never verified.  Ownership is a **lease file**
next to the run directory:

* acquisition is ``O_CREAT | O_EXCL`` — the filesystem arbitrates, no
  daemon required;
* the owner renews the lease (rewrites its expiry) from a heartbeat
  thread well inside the TTL, so a *live* owner can never look stale;
* a lease is **stolen** when it has expired, or immediately when its
  owner is a dead pid on the same host (the common CI case: the chaos
  harness SIGKILLs the orchestrator and resumes right away).  The
  steal replaces the file atomically with a fresh token and verifies
  its own token read-back, so two simultaneous stealers resolve to
  exactly one winner.

:class:`FileLock` reuses the same ``O_EXCL`` + stale-breaking
primitive as a short-critical-section mutex (no heartbeat); the
quarantine log's read-merge-replace uses it to close its lost-update
race (DESIGN.md §12).
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["FileLock", "Lease", "LeaseHeldError", "LeaseLostError"]


class LeaseHeldError(RuntimeError):
    """The run is owned by a live (non-stealable) orchestrator."""


class LeaseLostError(RuntimeError):
    """Our lease token vanished — another orchestrator stole the run."""


def _pid_alive(pid: int) -> bool:
    """Liveness of a pid on this host (signal 0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — exists, other uid
        return True
    return True


def _read_state(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _stale(state: Optional[Dict[str, Any]], now: float) -> bool:
    """A lease is stealable when expired or owned by a dead local pid.

    An unreadable/corrupt lease file (torn write of the lease itself)
    is treated as stale — the steal path's atomic replace + read-back
    arbitrates racing claimants either way.
    """
    if state is None:
        return True
    if float(state.get("expires_at", 0.0)) <= now:
        return True
    if state.get("host") == socket.gethostname():
        return not _pid_alive(int(state.get("pid", -1)))
    return False


@dataclass
class Lease:
    """An owned, renewable claim on one run journal.

    Args:
        path: lease file location (sibling of the run directory, so a
            fresh-run wipe of the directory cannot destroy a live
            claim).
        ttl_s: expiry horizon written at every renewal.  Owners renew
            from a heartbeat at ``ttl_s / 4``, so only a dead or
            wedged owner ever expires.
    """

    path: str
    ttl_s: float = 30.0
    token: str = field(default_factory=lambda: uuid.uuid4().hex)
    _held: bool = field(init=False, default=False)

    def _state(self) -> Dict[str, Any]:
        return {
            "token": self.token,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "expires_at": time.time() + self.ttl_s,
        }

    def _write_atomic(self) -> None:
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".lease-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._state(), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _try_claim(self) -> bool:
        """Exclusively create the lease file *with* our state in it.

        The claim must appear atomically with its content: creating an
        empty file first (``O_CREAT|O_EXCL`` then write) opens a window
        where a racing claimant reads the empty file, deems it
        corrupt-therefore-stale, and steals a lock that is actively
        held.  A hard link from a fully-written temp file is an
        exclusive create that carries the state with it.
        """
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".lease-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._state(), handle)
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp, self.path)
            except FileExistsError:
                return False
            return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover — tmp already gone
                pass

    def acquire(self) -> "Lease":
        """Claim the lease; steal a stale one; raise if held live.

        Stealing is a two-step conditional take, never a blind
        overwrite: first ``os.rename`` the stale file aside (exactly
        one of any number of racing stealers wins the rename — the
        rest see ``FileNotFoundError``), then re-race the exclusive
        create.  An unconditional ``os.replace`` here would clobber a
        *fresh* claim made between the staleness read and the steal,
        leaving two processes both believing they own the lease.

        Raises:
            LeaseHeldError: a live orchestrator owns the run.
        """
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        for _ in range(16):  # claim/steal races are transient
            if self._try_claim():
                self._held = True
                return self
            state = _read_state(self.path)
            if not _stale(state, time.time()):
                owner = "unknown owner"
                if state is not None:
                    owner = (
                        f"pid {state.get('pid')} on {state.get('host')}"
                    )
                raise LeaseHeldError(
                    f"run lease {self.path} is held by {owner}"
                )
            aside = f"{self.path}.stale-{self.token}"
            try:
                os.rename(self.path, aside)
            except FileNotFoundError:
                continue  # released or stolen aside: re-race the create
            try:
                os.unlink(aside)
            except OSError:  # pragma: no cover — nothing to clean
                pass
        raise LeaseHeldError(  # pragma: no cover — pathological churn
            f"run lease {self.path} could not be claimed under "
            "contention"
        )

    def renew(self) -> None:
        """Heartbeat: push the expiry forward; detect theft.

        Raises:
            LeaseLostError: the file no longer carries our token.
        """
        if not self._held:
            raise LeaseLostError(f"lease {self.path} is not held")
        state = _read_state(self.path)
        if state is None or state.get("token") != self.token:
            self._held = False
            raise LeaseLostError(
                f"lease {self.path} no longer carries our token"
            )
        self._write_atomic()

    def release(self) -> None:
        """Drop the claim (idempotent; never releases a stolen file)."""
        if not self._held:
            return
        self._held = False
        state = _read_state(self.path)
        if state is not None and state.get("token") == self.token:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    @property
    def held(self) -> bool:
        return self._held


@dataclass
class FileLock:
    """Short-critical-section mutex on the lease primitive.

    ``with FileLock(path):`` spins on ``O_CREAT | O_EXCL`` with a tiny
    sleep; a lock older than ``stale_s`` **or** owned by a dead local
    pid is broken via the same atomic-replace + token read-back steal.
    Intended for sub-second sections (quarantine log merges); not a
    fairness-providing lock.
    """

    path: str
    stale_s: float = 10.0
    poll_s: float = 0.005
    timeout_s: float = 30.0
    _lease: Optional[Lease] = field(init=False, default=None)

    def __enter__(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout_s
        while True:
            lease = Lease(self.path, ttl_s=self.stale_s)
            try:
                self._lease = lease.acquire()
                return self
            except LeaseHeldError:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"could not acquire lock {self.path} within "
                        f"{self.timeout_s}s"
                    ) from None
                time.sleep(self.poll_s)

    def __exit__(self, *exc_info: Any) -> None:
        if self._lease is not None:
            self._lease.release()
            self._lease = None
