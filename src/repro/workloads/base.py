"""Workload base types.

A workload is a simulated customer application: it drives the node
substrate (CPU phases, hypervisor demand, memory access rates) from its
own process and measures its own performance the way the paper reports
it (total batch time, P99 latency, throughput).  Agents never see these
objects — VMs are opaque; agents see only node counters.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.ml.quantiles import percentile as _percentile
from repro.sim.kernel import Kernel, Process

__all__ = ["PerformanceReport", "Workload"]


@dataclass(frozen=True)
class PerformanceReport:
    """A workload's self-measured performance.

    Attributes:
        metric: human-readable metric name ("p99 latency (ms)", ...).
        value: the measured value.
        higher_is_better: direction of improvement, so experiments can
            normalize uniformly ("normalized performance" in the paper's
            figures is always higher-is-better).
    """

    metric: str
    value: float
    higher_is_better: bool

    def normalized_against(self, baseline: "PerformanceReport") -> float:
        """Performance relative to a baseline run, as higher-is-better.

        For higher-is-better metrics this is ``value / baseline``; for
        lower-is-better (latencies) it is ``baseline / value``, matching
        how the paper's "normalized performance" axes are built.
        """
        if self.metric != baseline.metric:
            raise ValueError(
                f"cannot normalize {self.metric!r} against {baseline.metric!r}"
            )
        if baseline.value <= 0 or self.value <= 0:
            raise ValueError("normalization requires positive values")
        if self.higher_is_better:
            return self.value / baseline.value
        return baseline.value / self.value


class Workload(abc.ABC):
    """Base class for simulated customer applications."""

    name: str = "workload"

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._process: Optional[Process] = None

    def start(self) -> "Workload":
        """Spawn the workload's driver process; returns self."""
        if self._process is not None:
            raise RuntimeError(f"workload {self.name!r} already started")
        self._process = self.kernel.spawn(self._run(), name=self.name)
        return self

    @abc.abstractmethod
    def _run(self):
        """The workload's driver generator (a simulated process)."""

    @abc.abstractmethod
    def performance(self) -> PerformanceReport:
        """The workload's self-measured performance so far."""


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile of a sample list (q in [0, 100])."""
    if not samples:
        raise ValueError("no samples collected")
    return _percentile(samples, q)
