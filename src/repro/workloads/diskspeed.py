"""The paper's DiskSpeed workload (§6.2).

"DiskSpeed is a disk-bound workload that does not benefit from
overclocking.  Performance is reported as throughput in requests/sec."

The CPU profile has low boundness (cores mostly stall waiting on IO) and
near-zero frequency scaling, so overclocking it only wastes power — this
is the workload where the paper's broken-model experiment produces a
268% power increase without the model safeguard (Figure 3), and whose
low α keeps the actuator safeguard engaged.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.node.cpu import CpuModel
from repro.sim.units import MS
from repro.workloads.base import PerformanceReport, Workload

__all__ = ["DiskSpeedWorkload"]


class DiskSpeedWorkload(Workload):
    """IO-bound request server measured in requests/second.

    Args:
        kernel: simulation kernel.
        cpu: the VM's CPU substrate.
        rng: random stream for throughput jitter.
        base_throughput_rps: throughput at the nominal frequency.
        utilization: cores appear busy (spinning on IO completion) even
            though little useful work retires.
        boundness: low — most unhalted cycles are stalled, which keeps
            the α factor small.
        freq_scaling: near zero — faster clocks don't make disks faster.
    """

    name = "diskspeed"

    def __init__(
        self,
        kernel,
        cpu: CpuModel,
        rng: np.random.Generator,
        base_throughput_rps: float = 5000.0,
        utilization: float = 0.6,
        boundness: float = 0.25,
        freq_scaling: float = 0.05,
        sample_interval_us: int = 200 * MS,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_throughput_rps = base_throughput_rps
        self.utilization = utilization
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        self.throughput_samples: List[float] = []

    def _run(self):
        while True:
            utilization = min(
                max(float(self.rng.normal(self.utilization, 0.03)), 0.3), 0.9
            )
            self.cpu.set_phase(
                utilization=utilization,
                boundness=self.boundness,
                freq_scaling=self.freq_scaling,
            )
            ratio = self.cpu.frequency_ghz / self.cpu.nominal_freq_ghz
            jitter = float(self.rng.normal(1.0, 0.02))
            self.throughput_samples.append(
                self.base_throughput_rps * ratio**self.freq_scaling * jitter
            )
            yield self.sample_interval_us

    def performance(self) -> PerformanceReport:
        """Mean throughput in requests/second (higher is better)."""
        if not self.throughput_samples:
            raise ValueError("no samples collected")
        return PerformanceReport(
            metric="throughput (req/s)",
            value=float(np.mean(self.throughput_samples)),
            higher_is_better=True,
        )
