"""The paper's DiskSpeed workload (§6.2).

"DiskSpeed is a disk-bound workload that does not benefit from
overclocking.  Performance is reported as throughput in requests/sec."

The CPU profile has low boundness (cores mostly stall waiting on IO) and
near-zero frequency scaling, so overclocking it only wastes power — this
is the workload where the paper's broken-model experiment produces a
268% power increase without the model safeguard (Figure 3), and whose
low α keeps the actuator safeguard engaged.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.node.cpu import CpuModel
from repro.sim.units import MS
from repro.workloads.base import PerformanceReport, Workload

__all__ = ["DiskSpeedWorkload"]


class DiskSpeedWorkload(Workload):
    """IO-bound request server measured in requests/second.

    Args:
        kernel: simulation kernel.
        cpu: the VM's CPU substrate.
        rng: random stream for throughput jitter.
        base_throughput_rps: throughput at the nominal frequency.
        utilization: cores appear busy (spinning on IO completion) even
            though little useful work retires.
        boundness: low — most unhalted cycles are stalled, which keeps
            the α factor small.
        freq_scaling: near zero — faster clocks don't make disks faster.
    """

    name = "diskspeed"

    def __init__(
        self,
        kernel,
        cpu: CpuModel,
        rng: np.random.Generator,
        base_throughput_rps: float = 5000.0,
        utilization: float = 0.6,
        boundness: float = 0.25,
        freq_scaling: float = 0.05,
        sample_interval_us: int = 200 * MS,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_throughput_rps = base_throughput_rps
        self.utilization = utilization
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        self.throughput_samples: List[float] = []
        # pow cache: ratio ** freq_scaling only moves with the (rare)
        # agent frequency change, not with the 200 ms sampling cadence.
        self._pow_freq = None
        self._pow_value = 1.0

    def _run(self):
        # Request-accounting hot loop; see ObjectStoreWorkload._run —
        # the two per-step normal draws are batched off the same bit
        # stream (``normal(l, s)`` == ``l + s·z`` elementwise; pinned by
        # tests/workloads/test_rng_batching_identities.py and the
        # lockstep tests, DESIGN.md §8).
        standard_normal = self.rng.standard_normal
        set_phase = self.cpu.set_phase
        append = self.throughput_samples.append
        cpu = self.cpu
        base_rps = self.base_throughput_rps
        mean_utilization = self.utilization
        boundness = self.boundness
        freq_scaling = self.freq_scaling
        interval_us = self.sample_interval_us
        nominal_freq = cpu.nominal_freq_ghz
        z = np.empty(512)
        u_vals = np.empty(256)
        jitter_vals = np.empty(256)
        i = 256
        while True:
            if i == 256:
                standard_normal(out=z)
                # step k draws z[2k] (utilization) then z[2k+1] (jitter)
                np.multiply(z[0::2], 0.03, out=u_vals)
                u_vals += mean_utilization
                np.multiply(z[1::2], 0.02, out=jitter_vals)
                jitter_vals += 1.0
                i = 0
            utilization = min(max(float(u_vals[i]), 0.3), 0.9)
            set_phase(utilization, boundness, freq_scaling)
            freq = cpu.frequency_ghz
            if freq != self._pow_freq:
                self._pow_freq = freq
                ratio = freq / nominal_freq
                self._pow_value = ratio**freq_scaling
            jitter = float(jitter_vals[i])
            i += 1
            append(base_rps * self._pow_value * jitter)
            yield interval_us

    def performance(self) -> PerformanceReport:
        """Mean throughput in requests/second (higher is better)."""
        if not self.throughput_samples:
            raise ValueError("no samples collected")
        return PerformanceReport(
            metric="throughput (req/s)",
            value=float(np.mean(self.throughput_samples)),
            higher_is_better=True,
        )
