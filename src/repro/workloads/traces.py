"""Memory access traces for SmartMemory (§5.3, §6.4).

Real-world cloud workloads exhibit "highly-skewed popularity of pages";
these trace generators drive :class:`~repro.node.memory.TieredMemory`
region access rates with Zipf-distributed popularity that shifts over
time.  Three named profiles correspond to the Figure 7 workloads
(ObjectStore, SQL, SpecJBB), and :class:`OscillatingMemoryTrace`
reproduces the intentionally hard Figure 8 workload: "it oscillates
between running SpecJBB for 150 seconds and sleeping for 80 seconds,
resulting in frequent and rapid shifts in memory access patterns."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.node.memory import TieredMemory
from repro.sim.units import SEC
from repro.workloads.base import PerformanceReport, Workload

__all__ = [
    "TraceProfile",
    "OBJECTSTORE_MEM",
    "SQL_MEM",
    "SPECJBB_MEM",
    "ZipfMemoryTrace",
    "OscillatingMemoryTrace",
]


@dataclass(frozen=True)
class TraceProfile:
    """Statistical shape of a workload's memory access pattern.

    Attributes:
        name: workload name.
        total_rate: aggregate accesses/second across all regions.
        zipf_s: Zipf skew exponent (higher = more concentrated; this
            directly controls how small the hot set is, and therefore the
            Figure 7 local-memory reduction).
        active_fraction: fraction of regions with nonzero rate; the rest
            are cold (the §5.3 ">3 minutes untouched" class).
        shift_interval_us: how often part of the popularity ranking
            rotates (phase drift).
        shift_fraction: fraction of the active ranking rotated per shift.
    """

    name: str
    total_rate: float
    zipf_s: float
    active_fraction: float
    shift_interval_us: int
    shift_fraction: float


#: Key-value store: strongly skewed, slowly drifting working set.
OBJECTSTORE_MEM = TraceProfile(
    name="objectstore",
    total_rate=450_000.0,
    zipf_s=1.2,
    active_fraction=0.7,
    shift_interval_us=120 * SEC,
    shift_fraction=0.1,
)

#: OLTP on SQL Server: flatter distribution, moderate churn.
SQL_MEM = TraceProfile(
    name="sql",
    total_rate=350_000.0,
    zipf_s=0.9,
    active_fraction=0.8,
    shift_interval_us=90 * SEC,
    shift_fraction=0.15,
)

#: SPECjbb: skewed with periodic working-set turnover.
SPECJBB_MEM = TraceProfile(
    name="specjbb",
    total_rate=400_000.0,
    zipf_s=1.05,
    active_fraction=0.75,
    shift_interval_us=60 * SEC,
    shift_fraction=0.2,
)


#: Scaled Zipf weight vectors, memoized per (profile, n_regions).  The
#: weights depend only on those two inputs, yet the seed rebuilt and
#: renormalized them on *every* rate push — the dominant cost of a trace
#: shift (DESIGN.md §8).  Cached arrays are write-protected; consumers
#: only ever scatter them into fresh/reused rate vectors.
_SCALED_WEIGHTS: Dict[Tuple[TraceProfile, int], np.ndarray] = {}


def _scaled_zipf_weights(
    n_regions: int, profile: TraceProfile
) -> np.ndarray:
    key = (profile, n_regions)
    scaled = _SCALED_WEIGHTS.get(key)
    if scaled is None:
        n_active = max(1, int(round(profile.active_fraction * n_regions)))
        weights = 1.0 / np.arange(1, n_active + 1) ** profile.zipf_s
        weights /= weights.sum()
        scaled = profile.total_rate * weights
        scaled.setflags(write=False)
        _SCALED_WEIGHTS[key] = scaled
    return scaled


def zipf_rates(
    n_regions: int,
    profile: TraceProfile,
    permutation: np.ndarray,
) -> np.ndarray:
    """Per-region access rates for a popularity ranking.

    ``permutation[rank]`` is the region index holding that rank; ranks
    beyond the active fraction get rate zero (cold regions).
    """
    scaled = _scaled_zipf_weights(n_regions, profile)
    rates = np.zeros(n_regions)
    rates[permutation[:len(scaled)]] = scaled
    return rates


class ZipfMemoryTrace(Workload):
    """Zipf-popular region accesses with periodic partial rank rotation.

    Args:
        kernel: simulation kernel.
        memory: tiered-memory substrate to drive.
        rng: random stream for the popularity permutation and shifts.
        profile: trace shape.
    """

    def __init__(
        self,
        kernel,
        memory: TieredMemory,
        rng: np.random.Generator,
        profile: TraceProfile = OBJECTSTORE_MEM,
    ) -> None:
        super().__init__(kernel)
        self.name = f"{profile.name}-trace"
        self.memory = memory
        self.rng = rng
        self.profile = profile
        self.permutation = rng.permutation(memory.n_regions)
        self.shifts = 0
        # Reused scatter target for rate pushes: set_rates copies the
        # values out, so handing it the same buffer every shift is safe
        # and saves an allocation per push.
        self._rates_buf = np.zeros(memory.n_regions)

    def apply_rates(self) -> None:
        """Push the current popularity ranking into the substrate."""
        scaled = _scaled_zipf_weights(self.memory.n_regions, self.profile)
        rates = self._rates_buf
        rates.fill(0.0)
        rates[self.permutation[:len(scaled)]] = scaled
        self.memory.set_rates(rates)

    def shift_popularity(self) -> None:
        """Rotate part of the ranking: some hot regions cool, others heat."""
        n_active = max(
            1,
            int(round(self.profile.active_fraction * self.memory.n_regions)),
        )
        n_shift = max(1, int(round(self.profile.shift_fraction * n_active)))
        chosen = self.rng.choice(n_active, size=n_shift, replace=False)
        # rolled == np.roll(chosen, 1): two slice copies instead of
        # np.roll's axis normalization machinery (~10x cheaper for the
        # O(20)-element shift vectors; integer-exact, so the resulting
        # permutation is identical).
        rolled = np.empty_like(chosen)
        rolled[0] = chosen[-1]
        rolled[1:] = chosen[:-1]
        self.permutation[chosen] = self.permutation[rolled]
        self.shifts += 1

    def _run(self):
        self.apply_rates()
        while True:
            yield self.profile.shift_interval_us
            self.shift_popularity()
            self.apply_rates()

    def performance(self) -> PerformanceReport:
        """Local-access fraction so far (higher is better).

        The SLO-attainment metric the experiments report is windowed;
        this is the run-wide aggregate for quick inspection.
        """
        snap = self.memory.snapshot()
        total = snap.total_accesses
        fraction = snap.local_accesses / total if total > 0 else 1.0
        return PerformanceReport(
            metric="local access fraction",
            value=fraction,
            higher_is_better=True,
        )


class OscillatingMemoryTrace(ZipfMemoryTrace):
    """The Figure 8 stress workload: run 150 s, sleep 80 s, reshuffle.

    During sleep the access rates drop to a trickle; every wake-up
    reshuffles a large part of the popularity ranking, so the agent's
    learned scan rates and tier placement are stale exactly when load
    returns.

    Args:
        active_us / sleep_us: phase lengths (150 s / 80 s in the paper).
        sleep_scale: fraction of the active rates that persists during
            sleep (background refresh traffic).
        wake_shift_fraction: fraction of the ranking rotated per wake.
    """

    def __init__(
        self,
        kernel,
        memory: TieredMemory,
        rng: np.random.Generator,
        profile: TraceProfile = SPECJBB_MEM,
        active_us: int = 150 * SEC,
        sleep_us: int = 80 * SEC,
        sleep_scale: float = 0.02,
        wake_shift_fraction: float = 0.5,
    ) -> None:
        super().__init__(kernel, memory, rng, profile)
        self.name = "oscillating-specjbb"
        self.active_us = active_us
        self.sleep_us = sleep_us
        self.sleep_scale = sleep_scale
        self.wake_shift_fraction = wake_shift_fraction
        self.phase_log = []  # (time_us, "active" | "sleep")

    def _run(self):
        while True:
            self.phase_log.append((self.kernel.now, "active"))
            self.apply_rates()
            yield self.active_us
            self.phase_log.append((self.kernel.now, "sleep"))
            self.memory.set_rates(
                zipf_rates(
                    self.memory.n_regions, self.profile, self.permutation
                )
                * self.sleep_scale
            )
            yield self.sleep_us
            # Wake with a substantially different working set.
            n_active = max(
                1,
                int(
                    round(
                        self.profile.active_fraction * self.memory.n_regions
                    )
                ),
            )
            n_shift = max(
                1, int(round(self.wake_shift_fraction * n_active))
            )
            chosen = self.rng.choice(n_active, size=n_shift, replace=False)
            self.permutation[chosen] = self.permutation[
                self.rng.permutation(chosen)
            ]
            self.shifts += 1
