"""TailBench-style latency-critical workloads (§6.3).

"We use either of two latency-sensitive workloads from TailBench as the
primary VM: image-dnn which performs image recognition and moses which
does language translation.  We measure performance of both workloads as
their P99 latency."

The model: the primary VM's CPU demand is a bursty mean-reverting
process updated every 25 ms (SmartHarvest's control period).  When the
hypervisor cannot supply the demanded cores (because the agent harvested
too many), requests queue and the latency samples for that window
inflate proportionally to the *deficit ratio*.  P99 over the run is the
reported metric — bursts that the agent fails to cover are exactly what
shows up there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.node.hypervisor import Hypervisor
from repro.sim.units import MS
from repro.workloads.base import PerformanceReport, Workload, percentile

__all__ = ["DemandProfile", "IMAGE_DNN", "MOSES", "TailBenchWorkload"]


@dataclass(frozen=True)
class DemandProfile:
    """Statistical shape of a TailBench workload's core demand.

    Attributes:
        name: workload name ("image-dnn", "moses").
        base_low / base_high: range the baseline demand wanders in.
        wander: per-step Gaussian step of the baseline demand.
        burst_cores: demand level during a burst.
        burst_probability: chance per step of entering a burst.
        burst_steps_min / burst_steps_max: burst length range (steps).
        base_latency_ms: P50 request latency when never starved.
        starvation_penalty: latency multiplier per unit of queued
            backlog (in steps of current demand).
    """

    name: str
    base_low: float
    base_high: float
    wander: float
    burst_cores: float
    burst_probability: float
    burst_steps_min: int
    burst_steps_max: int
    base_latency_ms: float
    starvation_penalty: float = 8.0


#: Image recognition: heavier and burstier of the two (paper §6.3).
IMAGE_DNN = DemandProfile(
    name="image-dnn",
    base_low=2.0,
    base_high=5.0,
    wander=0.35,
    burst_cores=7.5,
    burst_probability=0.015,
    burst_steps_min=3,
    burst_steps_max=10,
    base_latency_ms=26.0,
    starvation_penalty=0.7,
)

#: Language translation: moderate load, shorter bursts.
MOSES = DemandProfile(
    name="moses",
    base_low=1.0,
    base_high=3.5,
    wander=0.25,
    burst_cores=6.0,
    burst_probability=0.01,
    burst_steps_min=2,
    burst_steps_max=6,
    base_latency_ms=14.0,
    starvation_penalty=0.7,
)


class TailBenchWorkload(Workload):
    """A latency-critical primary VM driving hypervisor demand.

    Args:
        kernel: simulation kernel.
        hypervisor: scheduling substrate the demand is presented to.
        rng: random stream for demand evolution and latency jitter.
        profile: demand shape (:data:`IMAGE_DNN` or :data:`MOSES`).
        step_us: demand update period (25 ms, SmartHarvest's epoch).
    """

    def __init__(
        self,
        kernel,
        hypervisor: Hypervisor,
        rng: np.random.Generator,
        profile: DemandProfile = IMAGE_DNN,
        step_us: int = 25 * MS,
    ) -> None:
        super().__init__(kernel)
        self.name = profile.name
        self.hypervisor = hypervisor
        self.rng = rng
        self.profile = profile
        self.step_us = step_us
        self.latency_samples_ms: List[float] = []
        self._demand = (profile.base_low + profile.base_high) / 2.0
        self._burst_steps_left = 0
        self._ramp = 0.0
        # Hoisted per-step constants and bound RNG methods: the demand
        # clamp ceiling and the draws _next_demand makes every 25 ms.
        self._n_cores_f = float(hypervisor.n_cores)
        self._rng_normal = rng.normal
        self._rng_random = rng.random
        self._rng_integers = rng.integers

    def _next_demand(self) -> float:
        """One 25 ms step of the demand process.

        Bursts *ramp* over a couple of steps rather than jumping — real
        request surges build through queues, and the ramp is the signal
        (trend/last features) that makes short-horizon prediction
        possible at all (§3.1: "many workload dynamics are only
        predictable a short window into the future").
        """
        profile = self.profile
        demand = self._demand
        if self._burst_steps_left > 0:
            self._burst_steps_left -= 1
            self._ramp = min(1.0, self._ramp + 0.5)
            level = (
                demand
                + (profile.burst_cores - demand) * self._ramp
            )
            return min(
                max(float(level + self._rng_normal(0.0, 0.2)), 0.0),
                self._n_cores_f,
            )
        self._ramp = 0.0
        if self._rng_random() < profile.burst_probability:
            self._burst_steps_left = int(
                self._rng_integers(
                    profile.burst_steps_min, profile.burst_steps_max + 1
                )
            )
            return self._next_demand()
        demand = min(
            max(
                float(demand + self._rng_normal(0.0, profile.wander)),
                profile.base_low,
            ),
            profile.base_high,
        )
        self._demand = demand
        return demand

    def _run(self):
        """Demand driving plus per-step latency accounting.

        The harvested cores run an ElasticVM at minimum priority: when
        the primary needs a core back, the hypervisor preempts within
        the control period, so each misprediction costs *bounded*
        scheduling delay — the deficit ratio of that step, capped at 1 —
        rather than unbounded queueing.  This is why even the paper's
        fully unguarded failures inflate P99 by ~40%, not by orders of
        magnitude (Figure 6).

        This loop runs once per 25 ms for the whole experiment (9 600
        steps in a fig6 panel), so the batch-window accounting stays on
        scalars: cumulative (demand, deficit) totals come from
        :meth:`~repro.node.hypervisor.Hypervisor.demand_deficit_cus`
        instead of a per-step snapshot dataclass, and the constants and
        bound methods are hoisted out of the loop.  Arithmetic, RNG draw
        order, and the recorded samples are bit-identical to the seed
        form (DESIGN.md §8).
        """
        set_demand = self.hypervisor.set_demand
        demand_deficit = self.hypervisor.demand_deficit_cus
        next_demand = self._next_demand
        lognormal = self.rng.lognormal
        append = self.latency_samples_ms.append
        base_latency_ms = self.profile.base_latency_ms
        penalty = self.profile.starvation_penalty
        step_us = self.step_us
        prev_demand, prev_deficit = demand_deficit()
        while True:
            set_demand(next_demand())
            yield step_us
            demand_total, deficit_total = demand_deficit()
            demand_cus = demand_total - prev_demand
            deficit_cus = deficit_total - prev_deficit
            prev_demand = demand_total
            prev_deficit = deficit_total
            deficit_ratio = (
                min(1.0, deficit_cus / demand_cus) if demand_cus > 0 else 0.0
            )
            jitter = float(lognormal(0.0, 0.06))
            append(
                base_latency_ms
                * jitter
                * (1.0 + penalty * deficit_ratio)
            )

    def performance(self) -> PerformanceReport:
        """P99 request latency in milliseconds (lower is better)."""
        return PerformanceReport(
            metric="p99 latency (ms)",
            value=percentile(self.latency_samples_ms, 99),
            higher_is_better=False,
        )
