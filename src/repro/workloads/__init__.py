"""Simulated customer workloads (the paper's evaluation applications)."""

from repro.workloads.base import PerformanceReport, Workload
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.synthetic import SyntheticBatchWorkload
from repro.workloads.tailbench import (
    IMAGE_DNN,
    MOSES,
    DemandProfile,
    TailBenchWorkload,
)
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    SQL_MEM,
    OscillatingMemoryTrace,
    TraceProfile,
    ZipfMemoryTrace,
    zipf_rates,
)

__all__ = [
    "DemandProfile",
    "DiskSpeedWorkload",
    "IMAGE_DNN",
    "MOSES",
    "OBJECTSTORE_MEM",
    "ObjectStoreWorkload",
    "OscillatingMemoryTrace",
    "PerformanceReport",
    "SPECJBB_MEM",
    "SQL_MEM",
    "SyntheticBatchWorkload",
    "TailBenchWorkload",
    "TraceProfile",
    "Workload",
    "ZipfMemoryTrace",
    "zipf_rates",
]
