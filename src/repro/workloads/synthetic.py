"""The paper's Synthetic workload (§6.2).

"The Synthetic workload simulates a server that periodically (every 100
secs) receives a batch of compute-intensive requests and processes them
as quickly as possible, then is idle until the next batch arrives.  This
workload only benefits from overclocking during its request-processing
phases.  Performance is measured as the total time to complete a fixed
number of batches."

The alternating busy/idle structure is what exercises SmartOverclock's
learning (overclock the batch, not the idle gap) and what Figures 4 and
5 use to show the cost of stale decisions during phase changes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.node.cpu import CpuModel
from repro.sim.units import SEC
from repro.workloads.base import PerformanceReport, Workload

__all__ = ["SyntheticBatchWorkload"]


class SyntheticBatchWorkload(Workload):
    """Periodic compute batches separated by idle gaps.

    Args:
        kernel: simulation kernel.
        cpu: the VM's CPU substrate.
        period_us: batch arrival period (100 s in the paper; shrink for
            tests).
        batch_giga_instructions: work per batch.  The default sizes the
            batch to ~55% duty cycle at the nominal frequency.
        boundness: CPU-boundness during processing (high: the batch
            benefits from overclocking).
        freq_scaling: IPS-vs-frequency exponent during processing.
        n_batches: stop after this many batches (``None`` = run forever).
    """

    name = "synthetic"

    def __init__(
        self,
        kernel,
        cpu: CpuModel,
        period_us: int = 100 * SEC,
        batch_giga_instructions: Optional[float] = None,
        boundness: float = 0.95,
        freq_scaling: float = 1.0,
        n_batches: Optional[int] = None,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.period_us = period_us
        if batch_giga_instructions is None:
            nominal_ips = (
                cpu.n_cores * cpu.max_ipc * cpu.nominal_freq_ghz * boundness
            )
            batch_giga_instructions = 0.55 * (period_us / SEC) * nominal_ips
        self.batch_giga_instructions = batch_giga_instructions
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.n_batches = n_batches

        #: (start_us, end_us) of each completed batch.
        self.batch_windows: List[tuple] = []
        #: observers invoked with the batch index when a batch completes
        #: (experiments hook delay injection here, e.g. Figure 4).
        self.on_batch_end: List[Callable[[int], None]] = []
        self.batches_completed = 0

    @property
    def in_batch(self) -> bool:
        """Whether a batch is currently being processed."""
        return self.cpu.utilization > 0.0

    def _run(self):
        batch_index = 0
        while self.n_batches is None or batch_index < self.n_batches:
            arrival = batch_index * self.period_us
            if self.kernel.now < arrival:
                yield arrival - self.kernel.now
            start = self.kernel.now
            self.cpu.set_phase(
                utilization=1.0,
                boundness=self.boundness,
                freq_scaling=self.freq_scaling,
            )
            yield from self.cpu.run_work(self.batch_giga_instructions)
            self.cpu.set_phase(utilization=0.0)
            self.batch_windows.append((start, self.kernel.now))
            self.batches_completed += 1
            for callback in self.on_batch_end:
                callback(batch_index)
            batch_index += 1

    def performance(self) -> PerformanceReport:
        """Mean batch completion time (seconds): lower is better.

        Proportional to the paper's "total time to complete a fixed
        number of batches" once the batch count is fixed.
        """
        if not self.batch_windows:
            raise ValueError("no batches completed yet")
        durations = [
            (end - start) / SEC for start, end in self.batch_windows
        ]
        return PerformanceReport(
            metric="mean batch time (s)",
            value=sum(durations) / len(durations),
            higher_is_better=False,
        )
