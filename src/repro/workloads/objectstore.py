"""The paper's ObjectStore workload (§6.2).

"ObjectStore is a distributed key-value server running at high load that
always benefits from overclocking.  Performance is reported as P99
latency."

The CPU side runs hot continuously (utilization ≈ 0.95) and is strongly
CPU-bound, so request latency scales inversely with the effective core
speed.  Latency samples are drawn per window with lognormal service
jitter, and the reported metric is the P99 over the run.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.node.cpu import CpuModel
from repro.sim.units import MS, SEC
from repro.workloads.base import PerformanceReport, Workload, percentile

__all__ = ["ObjectStoreWorkload"]


class ObjectStoreWorkload(Workload):
    """Constant high-load key-value server measured at P99 latency.

    Args:
        kernel: simulation kernel.
        cpu: the VM's CPU substrate.
        rng: random stream for load wiggle and latency jitter.
        base_latency_ms: P50 service latency at the nominal frequency.
        boundness / freq_scaling: CPU profile (high: benefits from
            overclocking).
        sample_interval_us: how often a latency sample is recorded.
    """

    name = "objectstore"

    def __init__(
        self,
        kernel,
        cpu: CpuModel,
        rng: np.random.Generator,
        base_latency_ms: float = 2.0,
        boundness: float = 0.9,
        freq_scaling: float = 0.9,
        sample_interval_us: int = 200 * MS,
        speedup_smoothing: float = 0.05,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_latency_ms = base_latency_ms
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        # Request latency tracks the *recent average* service capacity,
        # not the instantaneous clock: at high load, queues built up
        # during a slow second drain over the following seconds, so a
        # brief exploration dip to nominal dents the tail but does not
        # dominate it.  EWMA over the speedup models that inertia.
        self._speedup_ewma = None
        self.speedup_smoothing = speedup_smoothing
        self.latency_samples_ms: List[float] = []
        # pow cache for the speedup: the agent changes frequency once per
        # epoch at most, but this workload samples every 200 ms — so
        # ``ratio ** freq_scaling`` is recomputed only when the frequency
        # it depends on actually moved (same bits either way).
        self._pow_freq = None
        self._pow_value = 1.0

    def _speedup(self) -> float:
        """Smoothed service speedup relative to the nominal frequency."""
        freq = self.cpu.frequency_ghz
        if freq != self._pow_freq:
            self._pow_freq = freq
            ratio = freq / self.cpu.nominal_freq_ghz
            self._pow_value = ratio**self.freq_scaling
        instantaneous = self._pow_value
        if self._speedup_ewma is None:
            self._speedup_ewma = instantaneous
        else:
            self._speedup_ewma += self.speedup_smoothing * (
                instantaneous - self._speedup_ewma
            )
        return self._speedup_ewma

    def _run(self):
        # Request-accounting hot loop: one iteration per 200 ms sample
        # for the whole run.  The two per-step draws are batched: each
        # refill pulls 512 standard normals — the exact bit stream the
        # seed's interleaved scalar ``normal``/``lognormal`` calls
        # consume, since both are one ziggurat draw each — and the
        # affine transforms are applied elementwise (``normal(l, s)`` ==
        # ``l + s·z`` and ``lognormal(0, s)`` == ``exp(s·z)`` with
        # libm's exp == ``math.exp``; pinned by
        # tests/workloads/test_rng_batching_identities.py and the
        # lockstep tests, DESIGN.md §8).
        standard_normal = self.rng.standard_normal
        exp = math.exp
        set_phase = self.cpu.set_phase
        append = self.latency_samples_ms.append
        speedup = self._speedup
        base_latency_ms = self.base_latency_ms
        boundness = self.boundness
        freq_scaling = self.freq_scaling
        interval_us = self.sample_interval_us
        z = np.empty(512)
        u_vals = np.empty(256)
        jitter_args = np.empty(256)
        i = 256
        while True:
            if i == 256:
                standard_normal(out=z)
                # step k draws z[2k] (utilization) then z[2k+1] (jitter)
                np.multiply(z[0::2], 0.02, out=u_vals)
                u_vals += 0.95
                np.multiply(z[1::2], 0.08, out=jitter_args)
                i = 0
            # High load with a small wiggle; always worth overclocking.
            utilization = min(max(float(u_vals[i]), 0.85), 1.0)
            set_phase(utilization, boundness, freq_scaling)
            jitter = exp(jitter_args[i])
            i += 1
            append(base_latency_ms * jitter / speedup())
            yield interval_us

    def performance(self) -> PerformanceReport:
        """P99 request latency in milliseconds (lower is better)."""
        return PerformanceReport(
            metric="p99 latency (ms)",
            value=percentile(self.latency_samples_ms, 99),
            higher_is_better=False,
        )
