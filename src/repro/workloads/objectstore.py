"""The paper's ObjectStore workload (§6.2).

"ObjectStore is a distributed key-value server running at high load that
always benefits from overclocking.  Performance is reported as P99
latency."

The CPU side runs hot continuously (utilization ≈ 0.95) and is strongly
CPU-bound, so request latency scales inversely with the effective core
speed.  Latency samples are drawn per window with lognormal service
jitter, and the reported metric is the P99 over the run.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.node.cpu import CpuModel
from repro.sim.units import MS, SEC
from repro.workloads.base import PerformanceReport, Workload, percentile

__all__ = ["ObjectStoreWorkload"]


class ObjectStoreWorkload(Workload):
    """Constant high-load key-value server measured at P99 latency.

    Args:
        kernel: simulation kernel.
        cpu: the VM's CPU substrate.
        rng: random stream for load wiggle and latency jitter.
        base_latency_ms: P50 service latency at the nominal frequency.
        boundness / freq_scaling: CPU profile (high: benefits from
            overclocking).
        sample_interval_us: how often a latency sample is recorded.
    """

    name = "objectstore"

    def __init__(
        self,
        kernel,
        cpu: CpuModel,
        rng: np.random.Generator,
        base_latency_ms: float = 2.0,
        boundness: float = 0.9,
        freq_scaling: float = 0.9,
        sample_interval_us: int = 200 * MS,
        speedup_smoothing: float = 0.05,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_latency_ms = base_latency_ms
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        # Request latency tracks the *recent average* service capacity,
        # not the instantaneous clock: at high load, queues built up
        # during a slow second drain over the following seconds, so a
        # brief exploration dip to nominal dents the tail but does not
        # dominate it.  EWMA over the speedup models that inertia.
        self._speedup_ewma = None
        self.speedup_smoothing = speedup_smoothing
        self.latency_samples_ms: List[float] = []

    def _speedup(self) -> float:
        """Smoothed service speedup relative to the nominal frequency."""
        ratio = self.cpu.frequency_ghz / self.cpu.nominal_freq_ghz
        instantaneous = ratio**self.freq_scaling
        if self._speedup_ewma is None:
            self._speedup_ewma = instantaneous
        else:
            self._speedup_ewma += self.speedup_smoothing * (
                instantaneous - self._speedup_ewma
            )
        return self._speedup_ewma

    def _run(self):
        while True:
            # High load with a small wiggle; always worth overclocking.
            utilization = min(max(float(self.rng.normal(0.95, 0.02)), 0.85),
                              1.0)
            self.cpu.set_phase(
                utilization=utilization,
                boundness=self.boundness,
                freq_scaling=self.freq_scaling,
            )
            jitter = float(self.rng.lognormal(mean=0.0, sigma=0.08))
            self.latency_samples_ms.append(
                self.base_latency_ms * jitter / self._speedup()
            )
            yield self.sample_interval_us

    def performance(self) -> PerformanceReport:
        """P99 request latency in milliseconds (lower is better)."""
        return PerformanceReport(
            metric="p99 latency (ms)",
            value=percentile(self.latency_samples_ms, 99),
            higher_is_better=False,
        )
