"""Fleet-level fault plumbing: time-windowed, rack-correlated injection.

The single-node fault injectors in :mod:`repro.node.faults` corrupt
every read for a whole run.  At fleet scale the interesting failure is
*correlated and transient* — a bad telemetry rollout hits every node of
a rack at once, then gets rolled back.  :func:`windowed` wraps any
injector so it only fires inside a simulated time window, and
:func:`attach_burst` wires the right injector for each agent kind and
fault kind (:data:`repro.fleet.config.FAULT_KINDS`):

* ``bad_data`` — out-of-range / sentinel telemetry values (the paper's
  Figure 2/6 invalid-data failure, rack-correlated);
* ``dropout`` — telemetry dropout and stale reads: the collection
  pipeline serves its last cached value (overclock/harvest) or loses
  whole scan batches (memory);
* ``crash_restart`` — the agent process dies at burst onset and a node
  supervisor restarts it when the burst ends; ``probability`` is the
  per-node chance of being part of the crashing rollout.
"""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

from repro.node.faults import (
    StaleReadInjector,
    bad_ips_injector,
    dropped_batch_injector,
    stuck_usage_injector,
)
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams

__all__ = ["attach_burst", "windowed"]

T = TypeVar("T")


def windowed(
    kernel: Kernel,
    inner: Callable[[T], T],
    window_us: Tuple[int, int],
) -> Callable[[T], T]:
    """Apply ``inner`` only while sim time is inside ``[start, end)``."""
    start_us, end_us = window_us
    if end_us <= start_us:
        raise ValueError("fault window must have positive extent")

    def inject(value: T) -> T:
        if start_us <= kernel.now < end_us:
            return inner(value)
        return value

    return inject


def attach_burst(
    kernel: Kernel,
    agent_kind: str,
    agent: object,
    streams: RngStreams,
    window_us: Tuple[int, int],
    probability: float,
    kind: str = "bad_data",
) -> None:
    """Attach this node's share of a rack-wide fault burst.

    Each agent kind has a different telemetry boundary, so a data-plane
    burst enters at a different point per agent; a ``crash_restart``
    burst instead hits the control plane (the SOL runtime) identically
    for every agent kind.
    """
    rng = streams.get("fleet.fault")
    if kind == "bad_data":
        _attach_bad_data(kernel, agent_kind, agent, rng, window_us,
                         probability)
    elif kind == "dropout":
        _attach_dropout(kernel, agent_kind, agent, rng, window_us,
                        probability)
    elif kind == "crash_restart":
        _attach_crash_restart(kernel, agent, rng, window_us, probability)
    else:  # pragma: no cover - FaultPlan validation rejects this earlier
        raise ValueError(f"unknown fault kind {kind!r}")


def _attach_bad_data(
    kernel, agent_kind, agent, rng, window_us, probability
) -> None:
    """Invalid telemetry values (Figure 2 / Figure 6-left, correlated).

    * ``overclock`` — out-of-range IPS readings at the counter reader;
    * ``harvest`` — stuck usage-sample sentinels at the model input;
    * ``memory`` — access-bit scan faults in the page-table walker,
      raised for the window then restored.
    """
    if agent_kind == "overclock":
        agent.reader.add_injector(
            windowed(kernel, bad_ips_injector(rng, probability), window_us)
        )
    elif agent_kind == "harvest":
        agent.model.injectors.append(
            windowed(kernel, stuck_usage_injector(rng, probability), window_us)
        )
    elif agent_kind == "memory":
        memory = agent.actuator.memory
        start_us, end_us = window_us
        kernel.call_at(
            start_us,
            lambda: memory.set_scan_fault_probability(probability),
        )
        kernel.call_at(
            end_us, lambda: memory.set_scan_fault_probability(0.0)
        )
    else:  # pragma: no cover - config validation rejects this earlier
        raise ValueError(f"unknown agent kind {agent_kind!r}")


def _attach_dropout(
    kernel, agent_kind, agent, rng, window_us, probability
) -> None:
    """Telemetry dropout / stale reads at each agent's collection boundary.

    * ``overclock`` — the counter reader serves its last cached interval
      metrics (a wedged metrics daemon);
    * ``harvest`` — the hypervisor usage feed repeats the last sample
      window (stale reads at the model input);
    * ``memory`` — whole scan batches are lost in the telemetry
      transport (all results errored, so ``validate_data`` discards
      them).
    """
    if agent_kind == "overclock":
        agent.reader.add_injector(
            windowed(kernel, StaleReadInjector(rng, probability), window_us)
        )
    elif agent_kind == "harvest":
        agent.model.injectors.append(
            windowed(kernel, StaleReadInjector(rng, probability), window_us)
        )
    elif agent_kind == "memory":
        agent.model.injectors.append(
            windowed(
                kernel, dropped_batch_injector(rng, probability), window_us
            )
        )
    else:  # pragma: no cover - config validation rejects this earlier
        raise ValueError(f"unknown agent kind {agent_kind!r}")


def _attach_crash_restart(
    kernel, agent, rng, window_us, probability
) -> None:
    """Kill the agent at burst onset, supervisor-restart it at burst end.

    One Bernoulli draw per node decides whether this node is part of
    the crashing rollout (``probability`` = blast-radius intensity).
    The draw happens at attach time, from the node's own fault stream,
    so the decision is a pure function of the node seed — sharding
    cannot change which nodes crash.
    """
    if rng.random() >= probability:
        return
    start_us, end_us = window_us
    runtime = agent.runtime
    kernel.call_at(start_us, runtime.crash)
    kernel.call_at(end_us, lambda: runtime.restart())
