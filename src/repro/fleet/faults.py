"""Fleet-level fault plumbing: time-windowed, rack-correlated injection.

The single-node fault injectors in :mod:`repro.node.faults` corrupt
every read for a whole run.  At fleet scale the interesting failure is
*correlated and transient* — a bad telemetry rollout hits every node of
a rack at once, then gets rolled back.  :func:`windowed` wraps any
injector so it only fires inside a simulated time window, and
:func:`attach_burst` wires the right injector for each agent kind.
"""

from __future__ import annotations

from typing import Callable, Tuple, TypeVar

from repro.node.faults import bad_ips_injector, stuck_usage_injector
from repro.sim.kernel import Kernel
from repro.sim.rng import RngStreams

__all__ = ["attach_burst", "windowed"]

T = TypeVar("T")


def windowed(
    kernel: Kernel,
    inner: Callable[[T], T],
    window_us: Tuple[int, int],
) -> Callable[[T], T]:
    """Apply ``inner`` only while sim time is inside ``[start, end)``."""
    start_us, end_us = window_us
    if end_us <= start_us:
        raise ValueError("fault window must have positive extent")

    def inject(value: T) -> T:
        if start_us <= kernel.now < end_us:
            return inner(value)
        return value

    return inject


def attach_burst(
    kernel: Kernel,
    agent_kind: str,
    agent: object,
    streams: RngStreams,
    window_us: Tuple[int, int],
    probability: float,
) -> None:
    """Attach this node's share of a rack-wide invalid-data burst.

    Each agent kind has a different telemetry boundary, so the burst
    enters at a different point:

    * ``overclock`` — out-of-range IPS readings at the counter reader
      (Figure 2's fault, time-limited);
    * ``harvest`` — stuck usage-sample sentinels at the model input
      (Figure 6-left's fault);
    * ``memory`` — access-bit scan faults in the page-table walker,
      raised for the window then restored.
    """
    rng = streams.get("fleet.fault")
    if agent_kind == "overclock":
        agent.reader.add_injector(
            windowed(kernel, bad_ips_injector(rng, probability), window_us)
        )
    elif agent_kind == "harvest":
        agent.model.injectors.append(
            windowed(kernel, stuck_usage_injector(rng, probability), window_us)
        )
    elif agent_kind == "memory":
        memory = agent.actuator.memory
        start_us, end_us = window_us
        kernel.call_at(
            start_us,
            lambda: memory.set_scan_fault_probability(probability),
        )
        kernel.call_at(
            end_us, lambda: memory.set_scan_fault_probability(0.0)
        )
    else:  # pragma: no cover - config validation rejects this earlier
        raise ValueError(f"unknown agent kind {agent_kind!r}")
