"""Fleet-scale SOL: many simulated nodes, each running its own agent.

The paper deploys agents "on each server node of a cloud platform";
this package scales the single-node reproduction to a heterogeneous
fleet.  Each node gets an independent kernel, RNG, hardware SKU (from
:data:`repro.platform.taxonomy.NODE_SKUS`), workload, and SOL agent —
sealed into a :class:`~repro.fleet.config.NodeSpec` that is a pure
function of ``(fleet seed, node_id)``, so fleets shard across worker
processes without changing any result (DESIGN.md §5).

Entry points:

* :class:`FleetConfig` / :class:`FaultPlan` — describe a fleet and an
  optional rack-correlated invalid-data burst;
* :class:`FleetScenario` — build and run nodes (any subset, any order);
* :class:`FleetAggregate` — order-independent rollup with a content
  digest for serial/parallel equivalence checks;
* :class:`repro.experiments.driver.FleetDriver` — the multiprocessing
  front end (``repro fleet`` on the command line).
"""

from repro.fleet.aggregate import FleetAggregate
from repro.fleet.config import (
    AGENT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FleetConfig,
    NodeSpec,
)
from repro.fleet.node import FleetNode, NodeResult
from repro.fleet.scenario import FleetScenario

__all__ = [
    "AGENT_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FleetAggregate",
    "FleetConfig",
    "FleetNode",
    "FleetScenario",
    "NodeResult",
    "NodeSpec",
]
