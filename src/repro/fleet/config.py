"""Fleet configuration: node specs derived deterministically from a seed.

The key property (DESIGN.md §5): every per-node decision — SKU, agent
kind, workload, RNG seed — is a pure function of ``(fleet seed,
node_id)``.  Sharding the fleet across worker processes therefore cannot
change any node's simulation, and fleet aggregates are bit-identical no
matter how many workers run them or in what order shards complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.platform.taxonomy import NODE_SKUS, NodeSku
from repro.sim.rng import stable_hash

__all__ = [
    "AGENT_KINDS", "FAULT_KINDS", "FaultPlan", "FleetConfig", "NodeSpec",
]

#: Agent kinds a fleet node can run ("mixed" draws one per node).
AGENT_KINDS: Tuple[str, ...] = ("overclock", "harvest", "memory")

#: Correlated fault kinds a :class:`FaultPlan` can inject (dispatched by
#: :func:`repro.fleet.faults.attach_burst`): invalid telemetry values,
#: telemetry dropout/stale reads, and whole-agent crash-restart.
FAULT_KINDS: Tuple[str, ...] = ("bad_data", "dropout", "crash_restart")


@dataclass(frozen=True)
class FaultPlan:
    """A correlated fault burst across whole racks.

    Models a rack-level failure (bad firmware push, broken ToR-switch
    counter relay, a poisoned agent rollout): every node in the affected
    racks is hit at the same simulated instant, for the same duration —
    the fleet-scale version of the paper's §6.1 failure injections.

    Attributes:
        racks: rack indices the burst hits.
        start_s: burst onset, seconds of simulated time.
        duration_s: burst length in seconds.
        probability: fault intensity inside the window — per-read
            corruption chance (``bad_data``), per-read stale/dropped
            chance (``dropout``), or per-node crash chance
            (``crash_restart``).
        kind: one of :data:`FAULT_KINDS`.
    """

    racks: Tuple[int, ...] = (0,)
    start_s: int = 30
    duration_s: int = 60
    probability: float = 0.9
    kind: str = "bad_data"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("burst window must have positive extent")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, "
                f"got {self.kind!r}"
            )


@dataclass(frozen=True)
class NodeSpec:
    """The fully-resolved plan for one simulated node."""

    node_id: int
    rack: int
    sku: NodeSku
    agent: str
    workload: str
    seed: int


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet experiment.

    Attributes:
        n_nodes: number of simulated nodes.
        agent: agent kind every node runs, or ``"mixed"``.
        seed: fleet master seed; all per-node seeds derive from it.
        duration_s: simulated seconds each node runs.
        rack_size: nodes per rack (rack = blast radius of FaultPlan).
        fault: optional correlated-burst injection plan.
    """

    n_nodes: int
    agent: str = "overclock"
    seed: int = 0
    duration_s: int = 120
    rack_size: int = 8
    fault: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.rack_size <= 0:
            raise ValueError("rack_size must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.agent not in AGENT_KINDS + ("mixed",):
            raise ValueError(
                f"agent must be one of {AGENT_KINDS + ('mixed',)}, "
                f"got {self.agent!r}"
            )
        if self.fault is not None:
            # A plan that cannot touch any node is a config mistake, not
            # a degenerate experiment — fail it loudly.
            bad_racks = [
                r for r in self.fault.racks
                if not 0 <= r < self.n_racks
            ]
            if bad_racks:
                raise ValueError(
                    f"fault racks {bad_racks} outside fleet "
                    f"(has racks 0..{self.n_racks - 1})"
                )
            if self.fault.start_s >= self.duration_s:
                raise ValueError(
                    f"fault starts at {self.fault.start_s}s but nodes "
                    f"only run {self.duration_s}s"
                )

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.rack_size)

    def node_spec(self, node_id: int) -> NodeSpec:
        """Resolve one node's plan from ``(seed, node_id)`` alone."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node_id {node_id} outside fleet")
        rng = _node_plan_rng(self.seed, node_id)
        weights = np.array([sku.weight for sku in NODE_SKUS])
        sku = NODE_SKUS[
            int(rng.choice(len(NODE_SKUS), p=weights / weights.sum()))
        ]
        agent = self.agent
        if agent == "mixed":
            agent = AGENT_KINDS[int(rng.choice(len(AGENT_KINDS)))]
        workload = _WORKLOADS_BY_AGENT[agent][
            int(rng.choice(len(_WORKLOADS_BY_AGENT[agent])))
        ]
        return NodeSpec(
            node_id=node_id,
            rack=node_id // self.rack_size,
            sku=sku,
            agent=agent,
            workload=workload,
            seed=node_seed(self.seed, node_id),
        )

    def node_specs(self) -> Tuple[NodeSpec, ...]:
        """All node plans, in node-id order."""
        return tuple(self.node_spec(i) for i in range(self.n_nodes))

    def fault_window_us(self) -> Optional[Tuple[int, int]]:
        """The burst's ``(start_us, end_us)``, or ``None`` if no fault."""
        if self.fault is None:
            return None
        start = self.fault.start_s * 1_000_000
        return start, start + self.fault.duration_s * 1_000_000


#: Workload choices per agent kind; names match the experiment
#: registries (``CPU_WORKLOADS``, ``TAILBENCH_WORKLOADS``,
#: ``MEMORY_TRACES``).
_WORKLOADS_BY_AGENT = {
    "overclock": ("Synthetic", "ObjectStore", "DiskSpeed"),
    "harvest": ("image-dnn", "moses"),
    "memory": ("ObjectStore", "SQL", "SpecJBB"),
}


def node_seed(fleet_seed: int, node_id: int) -> int:
    """The RNG seed for one node: independent of sharding by design."""
    return (fleet_seed << 32) ^ stable_hash(f"fleet.node.{node_id}")


def _node_plan_rng(fleet_seed: int, node_id: int) -> np.random.Generator:
    sequence = np.random.SeedSequence(
        entropy=fleet_seed, spawn_key=(stable_hash(f"fleet.plan.{node_id}"),)
    )
    return np.random.default_rng(sequence)
