"""One fleet node: an independent kernel, node model, workload, agent.

A :class:`FleetNode` is the unit of sharding.  It owns a private
:class:`~repro.sim.kernel.Kernel` and :class:`~repro.sim.rng.RngStreams`
seeded from ``(fleet seed, node_id)`` only, so running it in any worker
process, in any order, produces the same :class:`NodeResult`.

Each agent kind gets a node-local SLO judged per 5-second window:

* ``overclock`` — no wasted-power windows: cores must not run above
  nominal frequency while utilization is idle (<10%), the Figure 4/5
  pathology;
* ``harvest`` — windowed P99 latency within 3× the profile's base P50;
* ``memory`` — ≥80% of accesses served from the first tier (the
  paper's local-access SLO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.agents.harvest import SmartHarvestAgent
from repro.agents.memory import SmartMemoryAgent
from repro.agents.overclock import SmartOverclockAgent
from repro.fleet.config import NodeSpec
from repro.fleet.faults import attach_burst
from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.synthetic import SyntheticBatchWorkload
from repro.workloads.tailbench import IMAGE_DNN, MOSES, TailBenchWorkload
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    SQL_MEM,
    ZipfMemoryTrace,
)

__all__ = ["FleetNode", "NodeResult", "SLO_WINDOW_US"]

#: SLO judgement window (matches the paper's 5 s memory-SLO windows).
SLO_WINDOW_US = 5 * SEC

#: Overclock SLO: a window is wasteful when the cores ran above this
#: multiple of nominal frequency while utilization sat below
#: :data:`IDLE_UTILIZATION` — the Figure 4/5 pathology (overclocking an
#: idle node) judged per window.
OVERCLOCK_FREQ_MARGIN = 1.02
IDLE_UTILIZATION = 0.10

#: Harvest SLO: windowed P99 ≤ this multiple of the profile's base P50.
P99_SLO_MULTIPLE = 3.0

#: Memory SLO: minimum local-access fraction per window.
LOCAL_FRACTION_TARGET = 0.8


@dataclass
class NodeResult:
    """Everything the fleet aggregation needs from one node.

    Plain picklable data only — results cross process boundaries.
    """

    node_id: int
    rack: int
    sku: str
    agent: str
    workload: str
    sim_seconds: int
    perf_metric: str
    perf_value: float
    slo_windows: int
    slo_violations: int
    safeguard_trips: Dict[str, int] = field(default_factory=dict)
    action_histogram: Dict[str, int] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def slo_violation_rate(self) -> float:
        if self.slo_windows == 0:
            return 0.0
        return self.slo_violations / self.slo_windows


def _overclock_workload(name, kernel, cpu, streams, duration_s):
    if name == "Synthetic":
        # Scale the batch period so even short fleet runs complete
        # batches (the single-node experiments run 900 s; fleets often
        # run each node for 1-2 minutes).
        period_us = min(100 * SEC, max(SEC, duration_s * SEC // 4))
        return SyntheticBatchWorkload(kernel, cpu, period_us=period_us)
    if name == "ObjectStore":
        return ObjectStoreWorkload(kernel, cpu, streams.get("workload"))
    if name == "DiskSpeed":
        return DiskSpeedWorkload(kernel, cpu, streams.get("workload"))
    raise ValueError(f"unknown overclock workload {name!r}")


_TAILBENCH_PROFILES = {"image-dnn": IMAGE_DNN, "moses": MOSES}
_MEMORY_PROFILES = {
    "ObjectStore": OBJECTSTORE_MEM,
    "SQL": SQL_MEM,
    "SpecJBB": SPECJBB_MEM,
}


class FleetNode:
    """Build and run one node of the fleet.

    Args:
        spec: the node's resolved plan (SKU, agent, workload, seed).
        duration_s: simulated seconds to run.
        fault_window_us: optional ``(start, end)`` of a correlated
            fault burst this node participates in.
        fault_probability: fault intensity inside the window (per-read
            corruption/staleness chance, or per-node crash chance for
            ``crash_restart``).
        fault_kind: burst kind (:data:`repro.fleet.config.FAULT_KINDS`).
        log_mode: runtime event-log mode.  Fleet aggregation needs only
            counters, so the default is ``"counts"`` (no per-event
            allocation); pass ``"full"`` to keep every event.  Results
            are bit-identical either way (pinned by the golden-digest
            tests).
    """

    def __init__(
        self,
        spec: NodeSpec,
        duration_s: int,
        fault_window_us: Optional[Tuple[int, int]] = None,
        fault_probability: float = 0.0,
        log_mode: str = "counts",
        fault_kind: str = "bad_data",
    ) -> None:
        self.spec = spec
        self.duration_s = duration_s
        self.log_mode = log_mode
        self.kernel = Kernel()
        self.streams = RngStreams(spec.seed)
        self._windows: List[bool] = []  # True = violated

        self._fault_window_us = fault_window_us
        builder = getattr(self, f"_build_{spec.agent}")
        self.agent = builder()
        if fault_window_us is not None:
            attach_burst(
                self.kernel,
                spec.agent,
                self.agent,
                self.streams,
                fault_window_us,
                fault_probability,
                kind=fault_kind,
            )
            # Time-to-fallback is anchored at the burst onset; warmup
            # fallbacks before it must not satisfy the query.
            self.agent.runtime.log.watch_fallback_from(fault_window_us[0])

    # -- per-agent assembly -------------------------------------------------

    def _build_overclock(self) -> SmartOverclockAgent:
        sku = self.spec.sku
        self.cpu = CpuModel(
            self.kernel,
            n_cores=sku.n_cores,
            nominal_freq_ghz=sku.nominal_freq_ghz,
            min_freq_ghz=sku.nominal_freq_ghz,
            max_freq_ghz=sku.max_freq_ghz,
            max_ipc=sku.max_ipc,
        )
        self.workload = _overclock_workload(
            self.spec.workload, self.kernel, self.cpu, self.streams,
            self.duration_s,
        ).start()
        self.kernel.spawn(self._watch_overclock(), name="fleet.slo")
        return SmartOverclockAgent(
            self.kernel, self.cpu, self.streams.get("agent"),
            log_mode=self.log_mode,
        ).start()

    def _build_harvest(self) -> SmartHarvestAgent:
        sku = self.spec.sku
        self.hypervisor = Hypervisor(
            self.kernel, n_cores=sku.n_cores, history_horizon_us=1 * SEC
        )
        profile = _TAILBENCH_PROFILES[self.spec.workload]
        self.workload = TailBenchWorkload(
            self.kernel,
            self.hypervisor,
            self.streams.get("workload"),
            profile,
        ).start()
        self.kernel.spawn(
            self._watch_latency(P99_SLO_MULTIPLE * profile.base_latency_ms),
            name="fleet.slo",
        )
        agent = SmartHarvestAgent(
            self.kernel, self.hypervisor, self.streams.get("agent"),
            log_mode=self.log_mode,
        )
        agent.start()
        return agent

    def _build_memory(self) -> SmartMemoryAgent:
        sku = self.spec.sku
        self.memory = TieredMemory(
            self.kernel,
            n_regions=sku.memory_regions,
            pages_per_region=512,
            rng=self.streams.get("memory"),
        )
        profile = _MEMORY_PROFILES[self.spec.workload]
        self.workload = ZipfMemoryTrace(
            self.kernel, self.memory, self.streams.get("trace"), profile
        ).start()
        self.kernel.spawn(self._watch_locality(), name="fleet.slo")
        return SmartMemoryAgent(
            self.kernel, self.memory, self.streams.get("agent"),
            log_mode=self.log_mode,
        ).start()

    # -- SLO watchers (one 5 s verdict per window) --------------------------

    def _watch_overclock(self) -> Generator:
        """Wasted-power windows: above-nominal frequency while idle."""
        sku = self.spec.sku
        window_s = SLO_WINDOW_US / SEC
        previous = self.cpu.snapshot()
        while True:
            yield SLO_WINDOW_US
            current = self.cpu.snapshot()
            total = current.total_cycles - previous.total_cycles
            unhalted = current.unhalted_cycles - previous.unhalted_cycles
            previous = current
            utilization = unhalted / total if total > 0 else 0.0
            mean_freq_ghz = total / (sku.n_cores * window_s)
            self._windows.append(
                utilization < IDLE_UTILIZATION
                and mean_freq_ghz
                > OVERCLOCK_FREQ_MARGIN * sku.nominal_freq_ghz
            )

    def _watch_latency(self, p99_budget_ms: float) -> Generator:
        from repro.workloads.base import percentile

        seen = 0
        while True:
            yield SLO_WINDOW_US
            samples = self.workload.latency_samples_ms[seen:]
            seen = len(self.workload.latency_samples_ms)
            if not samples:
                continue
            self._windows.append(percentile(samples, 99) > p99_budget_ms)

    def _watch_locality(self) -> Generator:
        previous = self.memory.snapshot()
        while True:
            yield SLO_WINDOW_US
            current = self.memory.snapshot()
            local = current.local_accesses - previous.local_accesses
            total = current.total_accesses - previous.total_accesses
            previous = current
            if total <= 0:
                continue
            self._windows.append(local / total < LOCAL_FRACTION_TARGET)

    # -- execution ----------------------------------------------------------

    def run(self) -> NodeResult:
        """Simulate the node for its configured duration and report."""
        self.kernel.run(until=self.duration_s * SEC)
        runtime = self.agent.runtime
        stats = runtime.stats()
        # Safety-timing extras the sweep campaigns consume.  These live
        # only in NodeResult.stats, which the fleet digest's canonical
        # form deliberately excludes — pinned digests are unaffected.
        stats["model_safeguard_first_trigger_us"] = (
            runtime.model_safeguard.first_triggered_at_us
        )
        stats["actuator_safeguard_first_trigger_us"] = (
            runtime.actuator_safeguard.first_triggered_at_us
        )
        stats["first_fallback_us"] = runtime.log.first_fallback_us()
        if self._fault_window_us is not None:
            # Engagement anchors for the sweep campaigns: the first
            # signal *at or after* the burst onset (warmup fallbacks and
            # pre-fault safeguard trips must not count as engagement).
            onset_us = self._fault_window_us[0]
            stats["model_safeguard_first_trigger_since_fault_us"] = (
                runtime.model_safeguard.first_triggered_at_us_since(onset_us)
            )
            stats["actuator_safeguard_first_trigger_since_fault_us"] = (
                runtime.actuator_safeguard.first_triggered_at_us_since(
                    onset_us
                )
            )
            stats["first_fallback_since_fault_us"] = (
                runtime.log.first_watched_fallback_us()
            )
        try:
            perf = self.workload.performance()
            perf_metric, perf_value = perf.metric, float(perf.value)
        except ValueError:
            # Nothing measurable yet (run shorter than one batch/request).
            perf_metric, perf_value = "unavailable", float("nan")
        return NodeResult(
            node_id=self.spec.node_id,
            rack=self.spec.rack,
            sku=self.spec.sku.name,
            agent=self.spec.agent,
            workload=self.spec.workload,
            sim_seconds=self.duration_s,
            perf_metric=perf_metric,
            perf_value=perf_value,
            slo_windows=len(self._windows),
            slo_violations=sum(self._windows),
            safeguard_trips={
                "model": stats["model_safeguard_triggers"],
                "actuator": stats["actuator_safeguard_triggers"],
            },
            action_histogram=self._action_histogram(runtime),
            stats=stats,
        )

    @staticmethod
    def _action_histogram(runtime) -> Dict[str, int]:
        """Count actuations by prediction provenance: model/default/none."""
        return runtime.log.action_histogram()
