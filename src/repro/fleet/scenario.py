"""The fleet scenario: N independent simulated nodes, one config.

:class:`FleetScenario` is deliberately shard-agnostic — it can run any
subset of the fleet's nodes, in any order, because every node's
simulation is sealed by :class:`~repro.fleet.config.NodeSpec`.  The
parallel driver (:class:`repro.experiments.driver.FleetDriver`) simply
calls :meth:`run` with different node-id subsets in different worker
processes and merges the results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.fleet.aggregate import FleetAggregate
from repro.fleet.config import FleetConfig, NodeSpec
from repro.fleet.node import FleetNode, NodeResult

__all__ = ["FleetScenario"]


class FleetScenario:
    """Instantiate and run (a subset of) a configured fleet."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config

    def build_node(self, node_id: int) -> FleetNode:
        """Construct one node, with its share of any rack-burst fault."""
        spec = self.config.node_spec(node_id)
        window = self.config.fault_window_us()
        if window is not None and not self._in_blast_radius(spec):
            window = None
        return FleetNode(
            spec,
            duration_s=self.config.duration_s,
            fault_window_us=window,
            fault_probability=(
                self.config.fault.probability if self.config.fault else 0.0
            ),
            fault_kind=(
                self.config.fault.kind if self.config.fault else "bad_data"
            ),
        )

    def run(
        self, node_ids: Optional[Sequence[int]] = None
    ) -> List[NodeResult]:
        """Simulate the given nodes (default: all), serially."""
        if node_ids is None:
            node_ids = range(self.config.n_nodes)
        return [self.build_node(i).run() for i in node_ids]

    def run_fleet(self) -> FleetAggregate:
        """Simulate every node serially and aggregate."""
        return FleetAggregate.from_results(self.run())

    def _in_blast_radius(self, spec: NodeSpec) -> bool:
        assert self.config.fault is not None
        return spec.rack in self.config.fault.racks

    def affected_nodes(self) -> Iterable[int]:
        """Node ids inside the fault plan's blast radius (for reports)."""
        if self.config.fault is None:
            return ()
        return (
            i
            for i in range(self.config.n_nodes)
            if i // self.config.rack_size in self.config.fault.racks
        )
