"""Order-independent fleet aggregation.

:meth:`FleetAggregate.from_results` sorts node results by id before any
arithmetic, so the aggregate is a pure function of the *set* of results
— identical no matter which worker produced which node or in what order
shards completed.  :meth:`FleetAggregate.digest` hashes the canonical
form; two runs agree iff their digests agree, which is how the tests
pin serial/parallel equivalence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.fleet.node import NodeResult

__all__ = ["FleetAggregate", "FleetAggregateBuilder"]


@dataclass
class FleetAggregate:
    """Fleet-wide rollup of per-node results.

    ``holes`` lists node ids whose work chunks were quarantined by the
    supervised dispatcher (DESIGN.md §11) — a *partial* aggregate
    reports its gaps explicitly instead of the run dying.  Empty on
    every complete run; a complete run's canonical form (and therefore
    its digest) is unchanged by the field's existence.
    """

    n_nodes: int
    sim_seconds: int
    slo_windows: int
    slo_violations: int
    safeguard_trips: Dict[str, int]
    action_histogram: Dict[str, int]
    by_agent: Dict[str, Dict[str, Any]]
    by_rack: Dict[int, Dict[str, Any]]
    by_sku: Dict[str, int]
    results: List[NodeResult] = field(default_factory=list, repr=False)
    holes: Tuple[int, ...] = ()

    @property
    def partial(self) -> bool:
        """Whether any node is missing from this aggregate."""
        return bool(self.holes)

    @property
    def slo_violation_rate(self) -> float:
        """Fraction of all (node, window) pairs that violated their SLO."""
        if self.slo_windows == 0:
            return 0.0
        return self.slo_violations / self.slo_windows

    @classmethod
    def from_results(cls, results: Iterable[NodeResult]) -> "FleetAggregate":
        builder = FleetAggregateBuilder()
        for result in results:
            builder.add(result)
        return builder.build()

    # -- canonical form ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical form (excludes the raw per-node list).

        ``holes`` appears only when non-empty: a complete aggregate's
        canonical form — and so every committed golden digest and
        conformance vector — is byte-identical to what it was before
        partial aggregates existed.
        """
        canonical: Dict[str, Any] = {
            "n_nodes": self.n_nodes,
            "sim_seconds": self.sim_seconds,
            "slo_windows": self.slo_windows,
            "slo_violations": self.slo_violations,
            "safeguard_trips": dict(sorted(self.safeguard_trips.items())),
            "action_histogram": dict(sorted(self.action_histogram.items())),
            "by_agent": {
                k: dict(sorted(v.items()))
                for k, v in sorted(self.by_agent.items())
            },
            "by_rack": {
                str(k): dict(sorted(v.items()))
                for k, v in sorted(self.by_rack.items())
            },
            "by_sku": dict(sorted(self.by_sku.items())),
            "per_node": [
                {
                    "node_id": r.node_id,
                    "agent": r.agent,
                    "sku": r.sku,
                    "workload": r.workload,
                    "perf_value": repr(r.perf_value),
                    "slo_windows": r.slo_windows,
                    "slo_violations": r.slo_violations,
                    "safeguard_trips": dict(
                        sorted(r.safeguard_trips.items())
                    ),
                    "action_histogram": dict(
                        sorted(r.action_histogram.items())
                    ),
                }
                for r in self.results
            ],
        }
        if self.holes:
            canonical["holes"] = list(self.holes)
        return canonical

    def digest(self) -> str:
        """SHA-256 over the canonical form; equal runs ⇔ equal digests.

        Floats are serialized via ``repr`` so the digest is sensitive to
        every bit of every per-node performance number — the strongest
        practical check that sharding didn't perturb any simulation.
        """
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- reporting -----------------------------------------------------------

    def render(self) -> str:
        """Plain-text fleet report."""
        lines = [
            f"== fleet: {self.n_nodes} nodes × {self.sim_seconds}s "
            f"simulated ==",
            f"SLO violation rate: {self.slo_violation_rate:.4f} "
            f"({self.slo_violations}/{self.slo_windows} windows)",
            "safeguard trips: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.safeguard_trips.items())
            ),
            "actions: "
            + ", ".join(
                f"{k}={v}"
                for k, v in sorted(self.action_histogram.items())
            ),
            "sku mix: "
            + ", ".join(
                f"{k}×{v}" for k, v in sorted(self.by_sku.items())
            ),
        ]
        for agent, row in sorted(self.by_agent.items()):
            rate = (
                row["slo_violations"] / row["slo_windows"]
                if row["slo_windows"]
                else 0.0
            )
            lines.append(
                f"  agent {agent}: {row['nodes']} nodes, "
                f"slo-violation {rate:.4f}, "
                f"trips {row['safeguard_trips']}"
            )
        for rack, row in sorted(self.by_rack.items()):
            rate = (
                row["slo_violations"] / row["slo_windows"]
                if row["slo_windows"]
                else 0.0
            )
            lines.append(
                f"  rack {rack}: {row['nodes']} nodes, "
                f"slo-violation {rate:.4f}"
            )
        if self.holes:
            lines.append(
                f"PARTIAL: {len(self.holes)} node(s) quarantined — "
                + ", ".join(f"n{n}" for n in self.holes)
            )
        lines.append(f"digest: {self.digest()}")
        return "\n".join(lines)


class FleetAggregateBuilder:
    """Streaming, order-independent reduction of :class:`NodeResult`s.

    The parallel driver feeds results in whatever order worker chunks
    finish; every accumulated quantity is a sum (or a keyed sum), so
    arrival order cannot affect the outcome, and :meth:`build` sorts the
    retained per-node list before constructing the aggregate.  Building
    incrementally lets ``imap_unordered`` consumers fold each chunk as it
    lands instead of materializing per-shard lists first.
    """

    def __init__(self) -> None:
        self._results: List[NodeResult] = []
        self._seen_ids: set = set()
        self._trips = {"model": 0, "actuator": 0}
        self._histogram = {"model": 0, "default": 0, "none": 0}
        self._by_agent: Dict[str, Dict[str, Any]] = {}
        self._by_rack: Dict[int, Dict[str, Any]] = {}
        self._by_sku: Dict[str, int] = {}
        self._slo_windows = 0
        self._slo_violations = 0

    def __len__(self) -> int:
        return len(self._results)

    def add(self, result: NodeResult) -> "FleetAggregateBuilder":
        """Fold one node's result into the running aggregate."""
        if result.node_id in self._seen_ids:
            raise ValueError("duplicate node results in aggregation")
        self._seen_ids.add(result.node_id)
        self._results.append(result)
        for key in self._trips:
            self._trips[key] += result.safeguard_trips.get(key, 0)
        for key in self._histogram:
            self._histogram[key] += result.action_histogram.get(key, 0)
        agent = self._by_agent.setdefault(
            result.agent,
            {"nodes": 0, "slo_windows": 0, "slo_violations": 0,
             "safeguard_trips": 0},
        )
        agent["nodes"] += 1
        agent["slo_windows"] += result.slo_windows
        agent["slo_violations"] += result.slo_violations
        agent["safeguard_trips"] += sum(result.safeguard_trips.values())
        rack = self._by_rack.setdefault(
            result.rack,
            {"nodes": 0, "slo_windows": 0, "slo_violations": 0},
        )
        rack["nodes"] += 1
        rack["slo_windows"] += result.slo_windows
        rack["slo_violations"] += result.slo_violations
        self._by_sku[result.sku] = self._by_sku.get(result.sku, 0) + 1
        self._slo_windows += result.slo_windows
        self._slo_violations += result.slo_violations
        return self

    def add_many(self, results: Iterable[NodeResult]) -> "FleetAggregateBuilder":
        """Fold a batch of results (one worker chunk)."""
        for result in results:
            self.add(result)
        return self

    def build(self, holes: Iterable[int] = ()) -> FleetAggregate:
        """Finalize into a :class:`FleetAggregate` (canonical node order).

        ``holes`` (node ids quarantined by the supervised dispatcher)
        marks the aggregate partial; a build with no results is legal
        only when every node is a hole — an empty *complete* fleet is
        still a caller bug.
        """
        holes = tuple(sorted(holes))
        if not self._results and not holes:
            raise ValueError("cannot aggregate an empty fleet")
        ordered = sorted(self._results, key=lambda r: r.node_id)
        return FleetAggregate(
            n_nodes=len(ordered),
            sim_seconds=ordered[0].sim_seconds if ordered else 0,
            slo_windows=self._slo_windows,
            slo_violations=self._slo_violations,
            safeguard_trips=self._trips,
            action_histogram=self._histogram,
            by_agent=self._by_agent,
            by_rack=self._by_rack,
            by_sku=self._by_sku,
            results=ordered,
            holes=holes,
        )
