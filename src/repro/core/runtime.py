"""The SOL runtime: scheduling and execution of agent functions (§4.2).

"Internally, SOL maintains two separate control loops running in separate
threads.  The Model control loop collects data, updates the model, and
produces predictions to a message queue.  The Actuator control loop
consumes predictions from this queue when available and periodically
takes a control action and monitors the end-to-end scenario performance."

Here the two loops are simulated processes on the deterministic kernel
(the threading substitution is documented in DESIGN.md §2).  Everything
else follows the paper:

* the Model loop runs learning *epochs*: collect → validate → commit,
  then update + predict, short-circuiting to a default prediction when
  the epoch deadline passes without enough valid data;
* model assessment runs every K epochs; while it fails, real predictions
  are intercepted and defaults forwarded, so the model can recover
  without its mistakes reaching the Actuator;
* the Actuator loop waits on the prediction queue with a bounded
  timeout, drops expired predictions, and always calls ``take_action``
  (possibly with ``None``) so control actions have a bounded period;
* a watchdog loop periodically runs ``assess_performance``; while it
  fails the Actuator is halted and ``mitigate`` is invoked;
* ``terminate`` is the SRE path: kill both loops and run the idempotent
  ``clean_up``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.core.events import EventKind, EventLog
from repro.core.interfaces import Actuator, Model
from repro.core.prediction import Prediction
from repro.core.safeguards import SafeguardPolicy, SafeguardState
from repro.core.schedule import Schedule
from repro.node.faults import DelayInjector
from repro.sim.kernel import Kernel, Process
from repro.sim.queue import QUEUE_TIMEOUT, SimQueue

__all__ = ["SolRuntime", "run_agent"]


class SolRuntime:
    """Owns and schedules one agent's Model and Actuator loops.

    Args:
        kernel: simulation kernel.
        model: the agent's learning half.
        actuator: the agent's control half.
        schedule: timing parameters (paper Listing 3).
        name: agent name used in the event log.
        policy: safeguard ablation switches (default: all enabled).
        model_delays: optional scheduling-delay injector for the Model
            loop (reproduces host-side throttling).
        actuator_delays: optional delay injector for the Actuator loop.
        log_mode: ``"full"`` keeps every runtime event (tests, single-node
            experiments); ``"counts"`` keeps only the aggregates
            :meth:`stats` reports, skipping per-event construction on the
            hot path (fleet runs).  Counter values are identical either
            way.
    """

    def __init__(
        self,
        kernel: Kernel,
        model: Model,
        actuator: Actuator,
        schedule: Schedule,
        name: str = "agent",
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        model_delays: Optional[DelayInjector] = None,
        actuator_delays: Optional[DelayInjector] = None,
        log_mode: str = "full",
    ) -> None:
        self.kernel = kernel
        self.model = model
        self.actuator = actuator
        self.schedule = schedule
        self.name = name
        self.policy = policy
        self.model_delays = model_delays
        self.actuator_delays = actuator_delays

        self.queue: SimQueue = SimQueue(
            kernel, capacity=1, name=f"{name}.predictions"
        )
        self.log = EventLog(kernel, agent=name, mode=log_mode)
        self.model_safeguard = SafeguardState(kernel, f"{name}.model")
        self.actuator_safeguard = SafeguardState(kernel, f"{name}.actuator")

        self.epochs = 0
        self._processes: List[Process] = []
        self._started = False
        self._terminated = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SolRuntime":
        """Spawn the Model, Actuator, and watchdog loops; returns self."""
        if self._started:
            raise RuntimeError(f"agent {self.name!r} already started")
        self._started = True
        self._processes = self._spawn_loops()
        return self

    def _spawn_loops(self) -> List[Process]:
        processes = [
            self.kernel.spawn(self._model_loop(), name=f"{self.name}.model"),
            self.kernel.spawn(
                self._actuator_loop(), name=f"{self.name}.actuator"
            ),
        ]
        if self.policy.assess_actuator:
            processes.append(
                self.kernel.spawn(
                    self._watchdog_loop(), name=f"{self.name}.watchdog"
                )
            )
        return processes

    def crash(self) -> None:
        """Simulated agent-process crash: every loop dies mid-flight.

        Unlike :meth:`terminate`, *nothing* is cleaned up — the node
        keeps running under the agent's last actuation, exactly as a
        production node would after its agent process segfaults.  A node
        supervisor can later :meth:`restart` the agent.
        """
        for process in self._processes:
            process.kill()
        self.log.record(EventKind.AGENT_KILLED)

    def restart(self) -> "SolRuntime":
        """Supervisor restart after a :meth:`crash` (or ``terminate``).

        Respawns the loops on the same Model/Actuator instances — the
        in-memory learned state survives, as it does for supervisors
        that snapshot/restore or share state out-of-process.  Raises if
        any loop is still alive.
        """
        if not self._started:
            raise RuntimeError(
                f"agent {self.name!r} was never started; call start()"
            )
        if self.running:
            raise RuntimeError(f"agent {self.name!r} is still running")
        self._terminated = False
        self._processes = self._spawn_loops()
        self.log.record(EventKind.AGENT_RESTARTED)
        return self

    def terminate(self) -> None:
        """The SRE path: stop the agent and restore a clean node state.

        Kills both loops (even mid-epoch) and invokes the idempotent
        ``Actuator.clean_up``.  Safe to call at any time, repeatedly.
        """
        for process in self._processes:
            process.kill()
        self._terminated = True
        self.actuator.clean_up()
        self.log.record(EventKind.CLEANUP)

    @property
    def running(self) -> bool:
        """Whether any agent loop is still alive."""
        return any(process.alive for process in self._processes)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counters the experiments and tests report on."""
        return {
            "epochs": self.epochs,
            "predictions_sent": self.log.count(EventKind.PREDICTION_SENT),
            "default_predictions": self.log.default_predictions_sent(),
            "validation_failures": self.log.count(EventKind.VALIDATION_FAILED),
            "interceptions": self.log.count(EventKind.PREDICTION_INTERCEPTED),
            "short_circuits": self.log.count(EventKind.EPOCH_SHORT_CIRCUIT),
            "actuations": self.log.count(EventKind.ACTUATION),
            "actuation_timeouts": self.log.count(EventKind.ACTUATION_TIMEOUT),
            "expired_predictions": self.log.count(EventKind.PREDICTION_EXPIRED),
            "mitigations": self.log.count(EventKind.MITIGATION),
            "model_crashes": self.log.count(EventKind.MODEL_CRASH),
            "actuator_crashes": self.log.count(EventKind.ACTUATOR_CRASH),
            "agent_kills": self.log.count(EventKind.AGENT_KILLED),
            "agent_restarts": self.log.count(EventKind.AGENT_RESTARTED),
            "model_safeguard_triggers": self.model_safeguard.trigger_count,
            "actuator_safeguard_triggers": self.actuator_safeguard.trigger_count,
            "model_safeguard_duration_us": (
                self.model_safeguard.active_duration_us()
            ),
            "actuator_safeguard_duration_us": (
                self.actuator_safeguard.active_duration_us()
            ),
        }

    # -- model loop ------------------------------------------------------------

    def _model_loop(self) -> Generator[Any, Any, None]:
        while True:
            self.epochs += 1
            epoch_start = self.kernel.now
            self.log.record(EventKind.EPOCH_START, epoch=self.epochs)
            valid, crashed = yield from self._collect_phase(epoch_start)
            prediction = self._conclude_epoch(valid, crashed)
            if prediction is not None:
                self.queue.put(prediction)
                self.log.record(
                    EventKind.PREDICTION_SENT,
                    is_default=prediction.is_default,
                    expires_at_us=prediction.expires_at_us,
                    # The predicted value rides along so conformance
                    # traces pin *what* was predicted, not just when —
                    # an off-by-one RNG draw must change the payload.
                    value=prediction.value,
                )

    def _collect_phase(self, epoch_start: int):
        """Collect datapoints until enough are valid or the deadline hits.

        Returns ``(valid_count, crashed)``.
        """
        valid = 0
        collected = 0
        deadline = epoch_start + self.schedule.max_epoch_time_us
        while (
            valid < self.schedule.min_data_per_epoch
            and collected < self.schedule.max_data_per_epoch
        ):
            yield from self._sleep(
                self.schedule.data_collect_interval_us, self.model_delays
            )
            if self.kernel.now > deadline:
                return valid, False
            try:
                data = self.model.collect_data()
            except Exception as error:  # noqa: BLE001 - agent bug isolation
                self.log.record(
                    EventKind.MODEL_CRASH, phase="collect", error=repr(error)
                )
                return valid, True
            collected += 1
            self.log.record(EventKind.DATA_COLLECTED, n=collected)
            if self.policy.validate_data:
                try:
                    data_ok = self.model.validate_data(data)
                except Exception as error:  # noqa: BLE001
                    self.log.record(
                        EventKind.MODEL_CRASH,
                        phase="validate",
                        error=repr(error),
                    )
                    return valid, True
            else:
                data_ok = True
            if data_ok:
                self.model.commit_data(self.kernel.now, data)
                valid += 1
            else:
                self.log.record(EventKind.VALIDATION_FAILED)
        return valid, False

    def _conclude_epoch(
        self, valid: int, crashed: bool
    ) -> Optional[Prediction]:
        """Update/assess/predict, or short-circuit to a default."""
        if crashed:
            return self._default_prediction(reason="model_crash")
        if valid < self.schedule.min_data_per_epoch:
            self.log.record(
                EventKind.EPOCH_SHORT_CIRCUIT,
                reason="insufficient_data",
                valid=valid,
            )
            return self._default_prediction(reason="insufficient_data")
        try:
            self.model.update_model()
            self.log.record(EventKind.MODEL_UPDATED, epoch=self.epochs)
            self._maybe_assess_model()
            prediction = self.model.model_predict()
        except Exception as error:  # noqa: BLE001 - agent bug isolation
            self.log.record(
                EventKind.MODEL_CRASH, phase="update_predict",
                error=repr(error),
            )
            return self._default_prediction(reason="model_crash")
        if prediction is None:
            self.log.record(
                EventKind.EPOCH_SHORT_CIRCUIT, reason="no_model_prediction"
            )
            return self._default_prediction(reason="no_model_prediction")
        if self.model_safeguard.active:
            self.log.record(EventKind.PREDICTION_INTERCEPTED)
            return self._default_prediction(reason="model_unhealthy")
        return prediction

    def _maybe_assess_model(self) -> None:
        if not self.policy.assess_model:
            return
        if self.epochs % self.schedule.assess_model_interval_epochs != 0:
            return
        healthy = self.model.assess_model()
        self.log.record(EventKind.MODEL_ASSESSED, healthy=healthy)
        if healthy:
            if self.model_safeguard.clear():
                self.log.record(
                    EventKind.SAFEGUARD_CLEARED, safeguard="model"
                )
        else:
            if self.model_safeguard.trigger():
                self.log.record(
                    EventKind.SAFEGUARD_TRIGGERED, safeguard="model"
                )

    def _default_prediction(self, reason: str) -> Optional[Prediction]:
        try:
            prediction = self.model.default_predict()
        except Exception as error:  # noqa: BLE001 - agent bug isolation
            self.log.record(
                EventKind.MODEL_CRASH, phase="default_predict",
                error=repr(error),
            )
            return None
        if prediction is not None and not prediction.is_default:
            # Normalize provenance so the Actuator and the log can tell
            # model predictions from fallbacks.
            prediction = Prediction(
                value=prediction.value,
                produced_at_us=prediction.produced_at_us,
                expires_at_us=prediction.expires_at_us,
                is_default=True,
            )
        return prediction

    # -- actuator loop ------------------------------------------------------------

    def _actuator_loop(self) -> Generator[Any, Any, None]:
        while True:
            if self.actuator_delays is not None:
                delay = self.actuator_delays.pending_delay(self.kernel.now)
                if delay > 0:
                    self.log.record(
                        EventKind.SCHEDULING_DELAY,
                        loop="actuator",
                        delay_us=delay,
                    )
                    yield delay
            timeout: Optional[int] = self.schedule.max_actuation_delay_us
            if not self.policy.non_blocking_actuator:
                timeout = None  # the paper's blocking strawman
            item = yield from self.queue.get(timeout_us=timeout)
            prediction: Optional[Prediction]
            if item is QUEUE_TIMEOUT:
                prediction = None
                self.log.record(EventKind.ACTUATION_TIMEOUT)
            else:
                prediction = item
                if (
                    self.policy.enforce_expiry
                    and prediction.is_expired(self.kernel.now)
                ):
                    self.log.record(
                        EventKind.PREDICTION_EXPIRED,
                        age_us=self.kernel.now - prediction.produced_at_us,
                    )
                    prediction = None
            if self.actuator_safeguard.active:
                # Halted by the watchdog: no control actions until the
                # unsafe behavior clears (§4.2).
                continue
            try:
                self.actuator.take_action(prediction)
                self.log.record(
                    EventKind.ACTUATION,
                    has_prediction=prediction is not None,
                    is_default=(
                        prediction.is_default if prediction else None
                    ),
                )
            except Exception as error:  # noqa: BLE001 - agent bug isolation
                self.log.record(
                    EventKind.ACTUATOR_CRASH, phase="take_action",
                    error=repr(error),
                )

    # -- watchdog loop ------------------------------------------------------------

    def _watchdog_loop(self) -> Generator[Any, Any, None]:
        while True:
            yield self.schedule.assess_actuator_interval_us
            try:
                healthy = self.actuator.assess_performance()
            except Exception as error:  # noqa: BLE001 - agent bug isolation
                self.log.record(
                    EventKind.ACTUATOR_CRASH, phase="assess",
                    error=repr(error),
                )
                healthy = False
            self.log.record(EventKind.ACTUATOR_ASSESSED, healthy=healthy)
            if healthy:
                if self.actuator_safeguard.clear():
                    self.log.record(
                        EventKind.SAFEGUARD_CLEARED, safeguard="actuator"
                    )
                continue
            if self.actuator_safeguard.trigger():
                self.log.record(
                    EventKind.SAFEGUARD_TRIGGERED, safeguard="actuator"
                )
            try:
                self.actuator.mitigate()
                self.log.record(EventKind.MITIGATION)
            except Exception as error:  # noqa: BLE001 - agent bug isolation
                self.log.record(
                    EventKind.ACTUATOR_CRASH, phase="mitigate",
                    error=repr(error),
                )

    # -- shared helpers ------------------------------------------------------------

    def _sleep(
        self, duration_us: int, delays: Optional[DelayInjector]
    ) -> Generator[Any, Any, None]:
        """Sleep with throttling injection and timestamp-check logging.

        "SOL detects scheduling delays by inserting various timestamp
        checks in the execution loop" — any injected stall is recorded so
        the log shows exactly when the loop lost its cadence.
        """
        if delays is not None:
            stall = delays.pending_delay(self.kernel.now)
            if stall > 0:
                self.log.record(
                    EventKind.SCHEDULING_DELAY, loop="model", delay_us=stall
                )
                yield stall
        yield duration_us


def run_agent(
    kernel: Kernel,
    model: Model,
    actuator: Actuator,
    schedule: Schedule,
    **kwargs: Any,
) -> SolRuntime:
    """Build and start an agent (the paper's ``SOL::RunAgent``).

    Listing 3 equivalent::

        runtime = run_agent(kernel, OverclockModel(...),
                            OverclockActuator(...), schedule)
        kernel.run(until=600 * SEC)
        print(runtime.stats())
    """
    return SolRuntime(kernel, model, actuator, schedule, **kwargs).start()
