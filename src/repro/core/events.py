"""Structured runtime event log.

Every decision the SOL runtime takes — epochs, validation failures,
interceptions, timeouts, safeguard transitions, mitigations, cleanups —
is recorded as a :class:`RuntimeEvent`.  The experiment harness and the
test suite assert on this log instead of poking runtime internals,
mirroring how production SREs would consume an agent's telemetry.

Log modes (DESIGN.md §6)
------------------------
Constructing a :class:`RuntimeEvent` per occurrence is pure overhead for
consumers that only ever read aggregates — which is every fleet run: a
:class:`~repro.fleet.node.NodeResult` needs counters and the action
histogram, never individual events.  :class:`EventLog` therefore has two
modes:

* ``"full"`` (default) — append every event; all query helpers work.
  Tests and single-node experiments use this.
* ``"counts"`` — keep only per-kind counters plus the detail-derived
  aggregates the runtime reports (default-prediction count, action
  provenance histogram), and a small ring buffer of the most recent
  events for post-mortem debugging.  ``record`` allocates nothing but
  the kwargs dict; per-event queries (:meth:`of_kind`, iteration) are
  unavailable.

Both modes produce identical counter values, so results and digests are
unaffected by the mode — the determinism tests pin this.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Union

from repro.sim.kernel import Kernel

__all__ = [
    "EventKind",
    "RuntimeEvent",
    "EventLog",
    "canonical_scalar",
    "encode_event",
    "decode_event",
]


class EventKind(enum.Enum):
    """Everything the runtime can report."""

    EPOCH_START = "epoch_start"
    DATA_COLLECTED = "data_collected"
    VALIDATION_FAILED = "validation_failed"
    MODEL_UPDATED = "model_updated"
    MODEL_ASSESSED = "model_assessed"
    PREDICTION_SENT = "prediction_sent"
    PREDICTION_INTERCEPTED = "prediction_intercepted"
    EPOCH_SHORT_CIRCUIT = "epoch_short_circuit"
    SCHEDULING_DELAY = "scheduling_delay"
    MODEL_CRASH = "model_crash"
    ACTUATION = "actuation"
    ACTUATION_TIMEOUT = "actuation_timeout"
    PREDICTION_EXPIRED = "prediction_expired"
    ACTUATOR_ASSESSED = "actuator_assessed"
    SAFEGUARD_TRIGGERED = "safeguard_triggered"
    SAFEGUARD_CLEARED = "safeguard_cleared"
    MITIGATION = "mitigation"
    ACTUATOR_CRASH = "actuator_crash"
    AGENT_KILLED = "agent_killed"
    AGENT_RESTARTED = "agent_restarted"
    CLEANUP = "cleanup"


@dataclass(frozen=True)
class RuntimeEvent:
    """One timestamped runtime occurrence with free-form details."""

    time_us: int
    kind: EventKind
    agent: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - human-facing format
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time_us:>12}us] {self.agent} {self.kind.value} {extras}"


#: Ring-buffer depth kept in ``"counts"`` mode for debugging.
RING_SIZE = 64


# -- canonical per-event encoding (conformance; DESIGN.md §10) --------------

def canonical_scalar(value: Any) -> str:
    """Type-canonical string form of one result scalar.

    The single canonicalization every content digest in the repo uses:
    bools, ``None``, and strings by ``str``; everything numeric through
    ``repr(float(...))`` (exact — two floats canonicalize equally iff
    they are the same float); anything else by ``str``.  The experiment
    digests (:func:`repro.experiments.common.experiment_digest`) and the
    conformance terminal-state snapshots share this function, which is
    what keeps known-answer vectors digest-compatible with the pinned
    golden artifacts.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return str(value)
    try:
        return repr(float(value))
    except (TypeError, ValueError):
        return str(value)


def _canonical_detail(value: Any) -> Any:
    """JSON-ready canonical form of one event-detail value.

    Scalars keep their JSON type (int vs float vs bool vs str stays
    distinguishable, so the encoding is injective on distinct details);
    numpy scalars collapse to the Python scalar they wrap; enums to
    their ``value``; tuples to lists; numpy arrays to nested lists;
    dataclasses (e.g. a ``MemoryPlan`` prediction value) to their field
    dict; anything else non-JSON to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, enum.Enum):
        return _canonical_detail(value.value)
    if isinstance(value, dict):
        return {str(k): _canonical_detail(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_detail(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_detail(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy array (full contents, never truncated)
        try:
            return _canonical_detail(tolist())
        except (TypeError, ValueError):
            pass
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        try:
            return _canonical_detail(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def encode_event(
    time_us: int,
    kind: Union[EventKind, str],
    agent: str,
    details: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Stable canonical byte encoding of one trace event.

    Compact JSON with sorted keys — independent of detail-dict insertion
    order, injective on distinct events (JSON preserves scalar types,
    floats serialize via ``repr``), and identical across processes and
    Python versions in use here.  ``kind`` accepts an :class:`EventKind`
    (runtime events) or a plain string (scripted conformance scenarios
    emit ad-hoc kinds like ``"queue.got"``).
    """
    payload = {
        "t": int(time_us),
        "k": kind.value if isinstance(kind, EventKind) else str(kind),
        "a": str(agent),
        "d": _canonical_detail(details or {}),
    }
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_event(payload: bytes) -> Dict[str, Any]:
    """Decode :func:`encode_event` output for human-facing reports."""
    raw = json.loads(payload.decode("utf-8"))
    return {
        "time_us": raw["t"],
        "kind": raw["k"],
        "agent": raw["a"],
        "details": raw["d"],
    }


class EventLog:
    """Runtime telemetry sink with query helpers for tests and experiments.

    Args:
        kernel: owning kernel (timestamps).
        agent: agent name stamped on events.
        mode: ``"full"`` (append-only event list, all queries) or
            ``"counts"`` (aggregates + a :data:`RING_SIZE`-event ring
            buffer; see module docstring).
    """

    def __init__(self, kernel: Kernel, agent: str, mode: str = "full") -> None:
        if mode not in ("full", "counts"):
            raise ValueError(f"unknown log mode {mode!r}")
        self.kernel = kernel
        self.agent = agent
        self.mode = mode
        self._events: List[RuntimeEvent] = []
        # counts mode keeps raw (time_us, kind, details) tuples and only
        # materializes RuntimeEvents lazily in recent()/last(), so the
        # hot path truly allocates nothing beyond the kwargs dict.
        self._ring: Optional[Deque[tuple]] = None
        self._counts: Dict[EventKind, int] = {}
        self._default_sent = 0
        self._actions = {"model": 0, "default": 0, "none": 0}
        self._first_fallback_us: Optional[int] = None
        self._fallback_watch_from: Optional[int] = None
        self._first_watched_fallback_us: Optional[int] = None
        self._tracer: Optional[Any] = None
        if mode == "counts":
            self._ring = deque(maxlen=RING_SIZE)

    def attach_tracer(self, sink: Any) -> None:
        """Forward every recorded event to ``sink`` (conformance traces).

        ``sink`` needs an ``on_event(time_us, payload: bytes)`` method
        (:mod:`repro.sim.trace`); payloads are the canonical
        :func:`encode_event` bytes.  Works in both log modes — tracing
        is orthogonal to retention.  One tracer at a time; ``None``
        detaches.
        """
        self._tracer = sink

    def record(self, kind: EventKind, **details: Any) -> Optional[RuntimeEvent]:
        """Record an occurrence stamped with the current simulation time.

        Returns the :class:`RuntimeEvent` in ``"full"`` mode, ``None`` in
        ``"counts"`` mode (where no event object is built on the hot
        path except for the sampled ring buffer).
        """
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        if kind is EventKind.ACTUATION:
            if details.get("has_prediction") and not details.get("is_default"):
                self._actions["model"] += 1
            else:
                bucket = (
                    "default" if details.get("has_prediction") else "none"
                )
                self._actions[bucket] += 1
                now = self.kernel.now
                if self._first_fallback_us is None:
                    self._first_fallback_us = now
                if (
                    self._fallback_watch_from is not None
                    and self._first_watched_fallback_us is None
                    and now >= self._fallback_watch_from
                ):
                    self._first_watched_fallback_us = now
        elif kind is EventKind.PREDICTION_SENT and details.get("is_default"):
            self._default_sent += 1
        if self._tracer is not None:
            now = self.kernel.now
            self._tracer.on_event(
                now, encode_event(now, kind, self.agent, details)
            )
        if self._ring is not None:
            self._ring.append((self.kernel.now, kind, details))
            return None
        event = RuntimeEvent(
            time_us=self.kernel.now, kind=kind, agent=self.agent,
            details=details,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        if self.mode == "counts":
            return sum(self._counts.values())
        return len(self._events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        self._require_full("iterate over events")
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> List[RuntimeEvent]:
        """All events of one kind, in time order (``"full"`` mode only)."""
        self._require_full("query events by kind")
        return [event for event in self._events if event.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of events of one kind (works in both modes)."""
        return self._counts.get(kind, 0)

    def last(self, kind: EventKind) -> Optional[RuntimeEvent]:
        """Most recent event of one kind, or ``None``.

        In ``"counts"`` mode this searches only the ring buffer of
        recent events (best effort, for debugging).
        """
        if self._ring is not None:
            for time_us, ring_kind, details in reversed(self._ring):
                if ring_kind is kind:
                    return RuntimeEvent(
                        time_us=time_us, kind=kind, agent=self.agent,
                        details=details,
                    )
            return None
        for event in reversed(self._events):
            if event.kind is kind:
                return event
        return None

    def recent(self) -> List[RuntimeEvent]:
        """The retained tail of the log (everything in ``"full"`` mode)."""
        if self._ring is not None:
            return [
                RuntimeEvent(
                    time_us=time_us, kind=kind, agent=self.agent,
                    details=details,
                )
                for time_us, kind, details in self._ring
            ]
        return list(self._events)

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (stable keys for experiment reports)."""
        return {kind.value: n for kind, n in self._counts.items()}

    # -- detail-derived aggregates (available in both modes) ---------------

    def default_predictions_sent(self) -> int:
        """``PREDICTION_SENT`` events whose prediction was a default."""
        return self._default_sent

    def first_fallback_us(self) -> Optional[int]:
        """Time of the first non-model actuation (default or none).

        The first simulated instant the Actuator acted without a live
        model prediction.  ``None`` if every action so far used one.
        """
        return self._first_fallback_us

    def watch_fallback_from(self, start_us: int) -> None:
        """Arm the fallback watch at ``start_us`` (a fault onset).

        Warmup fallbacks routinely happen *before* a fault window (an
        agent with no telemetry yet acts on defaults), so the safety
        campaigns' time-to-fallback anchor must be the first fallback
        **at or after** the onset — not the first ever.  The watch is
        O(1) per actuation in both log modes; re-arming resets it.
        """
        self._fallback_watch_from = start_us
        self._first_watched_fallback_us = None

    def first_watched_fallback_us(self) -> Optional[int]:
        """First fallback actuation at/after the armed watch point.

        ``None`` while unarmed or until such an actuation happens.
        """
        return self._first_watched_fallback_us

    def action_histogram(self) -> Dict[str, int]:
        """``ACTUATION`` events bucketed by prediction provenance.

        Keys: ``"model"`` (a live model prediction), ``"default"`` (a
        default/fallback prediction), ``"none"`` (acted without any
        prediction — timeout or expiry path).
        """
        return dict(self._actions)

    def _require_full(self, what: str) -> None:
        if self.mode != "full":
            raise RuntimeError(
                f"cannot {what}: this EventLog runs in {self.mode!r} mode "
                "and keeps only aggregates (construct the runtime with "
                "log_mode='full' for per-event queries)"
            )
