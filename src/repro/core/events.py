"""Structured runtime event log.

Every decision the SOL runtime takes — epochs, validation failures,
interceptions, timeouts, safeguard transitions, mitigations, cleanups —
is recorded as a :class:`RuntimeEvent`.  The experiment harness and the
test suite assert on this log instead of poking runtime internals,
mirroring how production SREs would consume an agent's telemetry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.kernel import Kernel

__all__ = ["EventKind", "RuntimeEvent", "EventLog"]


class EventKind(enum.Enum):
    """Everything the runtime can report."""

    EPOCH_START = "epoch_start"
    DATA_COLLECTED = "data_collected"
    VALIDATION_FAILED = "validation_failed"
    MODEL_UPDATED = "model_updated"
    MODEL_ASSESSED = "model_assessed"
    PREDICTION_SENT = "prediction_sent"
    PREDICTION_INTERCEPTED = "prediction_intercepted"
    EPOCH_SHORT_CIRCUIT = "epoch_short_circuit"
    SCHEDULING_DELAY = "scheduling_delay"
    MODEL_CRASH = "model_crash"
    ACTUATION = "actuation"
    ACTUATION_TIMEOUT = "actuation_timeout"
    PREDICTION_EXPIRED = "prediction_expired"
    ACTUATOR_ASSESSED = "actuator_assessed"
    SAFEGUARD_TRIGGERED = "safeguard_triggered"
    SAFEGUARD_CLEARED = "safeguard_cleared"
    MITIGATION = "mitigation"
    ACTUATOR_CRASH = "actuator_crash"
    CLEANUP = "cleanup"


@dataclass(frozen=True)
class RuntimeEvent:
    """One timestamped runtime occurrence with free-form details."""

    time_us: int
    kind: EventKind
    agent: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - human-facing format
        extras = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time_us:>12}us] {self.agent} {self.kind.value} {extras}"


class EventLog:
    """Append-only log with query helpers used by tests and experiments."""

    def __init__(self, kernel: Kernel, agent: str) -> None:
        self.kernel = kernel
        self.agent = agent
        self._events: List[RuntimeEvent] = []

    def record(self, kind: EventKind, **details: Any) -> RuntimeEvent:
        """Append an event stamped with the current simulation time."""
        event = RuntimeEvent(
            time_us=self.kernel.now, kind=kind, agent=self.agent,
            details=details,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> List[RuntimeEvent]:
        """All events of one kind, in time order."""
        return [event for event in self._events if event.kind is kind]

    def count(self, kind: EventKind) -> int:
        """Number of events of one kind."""
        return sum(1 for event in self._events if event.kind is kind)

    def last(self, kind: EventKind) -> Optional[RuntimeEvent]:
        """Most recent event of one kind, or ``None``."""
        for event in reversed(self._events):
            if event.kind is kind:
                return event
        return None

    def summary(self) -> Dict[str, int]:
        """Event counts by kind (stable keys for experiment reports)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts
