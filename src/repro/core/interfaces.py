"""The SOL agent API: the ``Model`` and ``Actuator`` interfaces.

These are Python renderings of the paper's Listings 1 and 2.  An agent
developer implements both; the :class:`~repro.core.runtime.SolRuntime`
owns scheduling, epoch structure, safeguard evaluation, and the
prediction queue — the developer never writes a control loop.

Design notes carried over from §4.1:

* The **Model** provides fresh, accurate predictions *on a best-effort
  basis*.  It is the expensive half (telemetry collection, training,
  inference) and may be throttled arbitrarily.
* The **Actuator** takes control actions at bounded intervals whether or
  not predictions arrive.  It must be written so that a ``None``
  prediction always maps to a conservative, safe action.
* The split is enforced structurally: the two halves communicate only
  through the prediction queue, so a starved Model can never block a
  safe actuation.
"""

from __future__ import annotations

import abc
from typing import Generic, Optional, TypeVar

from repro.core.prediction import Prediction

__all__ = ["Model", "Actuator"]

D = TypeVar("D")  # type of a collected datapoint
P = TypeVar("P")  # type of a prediction value


class Model(abc.ABC, Generic[D, P]):
    """Agent-specific learning logic (paper Listing 1).

    A *learning epoch* is: several ``collect_data`` calls (each validated
    and, if valid, committed), then at most one ``update_model`` and one
    ``model_predict``.  The runtime drives this cycle; implementations
    hold the model state.
    """

    @abc.abstractmethod
    def collect_data(self) -> D:
        """Read one datapoint of node telemetry.

        Called every ``Schedule.data_collect_interval``.  May raise on
        hard telemetry failure; the runtime treats an exception as a
        failed epoch (and the Actuator keeps running safely).
        """

    @abc.abstractmethod
    def validate_data(self, data: D) -> bool:
        """Check one datapoint against explicit data assumptions.

        Range checks and cheap distributional checks belong here
        ("data assumptions should be specified and explicitly checked",
        §3.2).  Invalid datapoints are *discarded* — never committed.
        """

    @abc.abstractmethod
    def commit_data(self, time_us: int, data: D) -> None:
        """Accept a validated datapoint (timestamped) into model state."""

    @abc.abstractmethod
    def update_model(self) -> None:
        """Run one training step over the committed data."""

    @abc.abstractmethod
    def model_predict(self) -> Optional[Prediction[P]]:
        """Produce a prediction from the learned model.

        Returning ``None`` short-circuits the epoch (e.g. confidence
        below threshold); the runtime substitutes ``default_predict``.
        """

    @abc.abstractmethod
    def default_predict(self) -> Optional[Prediction[P]]:
        """A safe fallback heuristic prediction (may be ``None``).

        "Default predictions should allow the node to behave in a way
        that has minimal impact on the agent-specific safety metric, at
        the possible cost of running at lower efficiency" (§4.1).
        """

    @abc.abstractmethod
    def assess_model(self) -> bool:
        """Whether model accuracy is currently acceptable.

        Evaluated every ``Schedule.assess_model_interval`` epochs.  While
        failing, the runtime intercepts model predictions and forwards
        defaults instead — the model keeps learning, so it can recover.
        """


class Actuator(abc.ABC, Generic[P]):
    """Agent-specific control logic (paper Listing 2).

    Deliberately shaped like a *non*-learning agent: one control function
    plus a watchdog.  The only ML-related difference is that
    ``take_action`` may receive a prediction.
    """

    @abc.abstractmethod
    def take_action(self, prediction: Optional[Prediction[P]]) -> None:
        """Take one control action.

        ``prediction`` is ``None`` when no fresh, validated prediction is
        available (queue timeout, expiry, failing model).  The action for
        ``None`` must be conservative: preserve customer QoS and node
        health over efficiency.
        """

    @abc.abstractmethod
    def assess_performance(self) -> bool:
        """End-to-end behavioral check, independent of model internals.

        This is the agent's last line of defense; it should measure a
        proxy for the agent's safety metric (e.g. vCPU wait time, remote
        access fraction) and return ``False`` when impact is
        unacceptable.
        """

    @abc.abstractmethod
    def mitigate(self) -> None:
        """Undo the agent's impact; called while assessment is failing.

        Must be idempotent: the runtime may call it on every failing
        assessment until health returns.
        """

    @abc.abstractmethod
    def clean_up(self) -> None:
        """Stop the agent's effects and restore a clean node state.

        Must be **idempotent and stateless**: callable at any time, by
        operators who know nothing of the implementation, whether the
        agent is running, crashed, or hanging (§4.1).  The runtime calls
        it from :meth:`repro.core.runtime.SolRuntime.terminate`.
        """
