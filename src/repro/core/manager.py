"""Node-level agent management — the operator (SRE) surface.

"Different agents are typically developed by different teams in large
cloud platforms.  SOL provides a unified interface across teams to
reduce deployment complexity.  Moreover, its interface allows cloud
operators (e.g., site reliability engineers or SREs) to safely terminate
and cleanup after misbehaving agents without knowing anything about
their implementation" (§1).

:class:`AgentManager` is that interface: it holds every agent runtime
on a node, surfaces uniform health summaries, and exposes kill switches
that only rely on the idempotent ``CleanUp`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.runtime import SolRuntime
from repro.sim.kernel import Kernel

__all__ = ["AgentHealth", "AgentManager"]


@dataclass(frozen=True)
class AgentHealth:
    """A uniform, implementation-agnostic health summary of one agent."""

    name: str
    running: bool
    epochs: int
    actuations: int
    model_safeguard_active: bool
    actuator_safeguard_active: bool
    model_crashes: int
    actuator_crashes: int
    mitigations: int

    @property
    def healthy(self) -> bool:
        """Running with no safeguard currently engaged."""
        return (
            self.running
            and not self.model_safeguard_active
            and not self.actuator_safeguard_active
        )


class AgentManager:
    """Registry and kill-switch panel for all agents on a node.

    Example (the SRE workflow)::

        manager = AgentManager(kernel)
        manager.register(overclock_agent.runtime)
        manager.register(harvest_agent.runtime)
        ...
        for health in manager.health_report():
            if not health.healthy:
                manager.terminate(health.name)
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self._runtimes: Dict[str, SolRuntime] = {}

    def register(self, runtime: SolRuntime) -> None:
        """Track a runtime; names must be unique per node."""
        if runtime.name in self._runtimes:
            raise ValueError(f"agent {runtime.name!r} already registered")
        self._runtimes[runtime.name] = runtime

    def names(self) -> List[str]:
        """Registered agent names."""
        return sorted(self._runtimes)

    def get(self, name: str) -> SolRuntime:
        """The runtime for ``name`` (KeyError if unknown)."""
        return self._runtimes[name]

    def health(self, name: str) -> AgentHealth:
        """Health summary for one agent."""
        runtime = self._runtimes[name]
        stats = runtime.stats()
        return AgentHealth(
            name=name,
            running=runtime.running,
            epochs=stats["epochs"],
            actuations=stats["actuations"],
            model_safeguard_active=runtime.model_safeguard.active,
            actuator_safeguard_active=runtime.actuator_safeguard.active,
            model_crashes=stats["model_crashes"],
            actuator_crashes=stats["actuator_crashes"],
            mitigations=stats["mitigations"],
        )

    def health_report(self) -> List[AgentHealth]:
        """Health summaries for every registered agent."""
        return [self.health(name) for name in self.names()]

    def terminate(self, name: str) -> None:
        """Kill one agent and run its ``CleanUp`` (safe at any time)."""
        self._runtimes[name].terminate()

    def terminate_all(self) -> int:
        """Node evacuation: clean-kill every agent; returns the count.

        Termination is per-agent isolated: one agent's CleanUp raising
        does not stop the sweep (mirrors an SRE runbook that must
        always finish).
        """
        terminated = 0
        for name in self.names():
            try:
                self._runtimes[name].terminate()
                terminated += 1
            except Exception:  # noqa: BLE001 - isolation by design
                continue
        return terminated

    def render_report(self) -> str:
        """Human-readable node health table."""
        lines = [
            f"{'agent':20s} {'state':8s} {'epochs':>7s} {'actions':>8s} "
            f"{'crashes':>8s} {'safeguards':>12s}"
        ]
        for health in self.health_report():
            state = "running" if health.running else "stopped"
            guards = []
            if health.model_safeguard_active:
                guards.append("model")
            if health.actuator_safeguard_active:
                guards.append("actuator")
            crashes = health.model_crashes + health.actuator_crashes
            lines.append(
                f"{health.name:20s} {state:8s} {health.epochs:>7d} "
                f"{health.actuations:>8d} {crashes:>8d} "
                f"{','.join(guards) or '-':>12s}"
            )
        return "\n".join(lines)
