"""Safeguard configuration and state tracking.

SOL treats its safeguards as **mandatory**: agent developers must
implement all of them (§4.1).  :class:`SafeguardPolicy` exists solely so
the evaluation harness can reproduce the paper's *unguarded* baselines
(Figures 2–6, 8 all compare "with safeguard" to "without") and the
blocking-actuator ablation (Figure 4).  Production deployments use the
default: everything enabled.

:class:`SafeguardState` tracks each safeguard's trigger history so the
experiments can report how long an agent spent mitigating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.kernel import Kernel

__all__ = ["SafeguardPolicy", "SafeguardState"]


@dataclass(frozen=True)
class SafeguardPolicy:
    """Which safety mechanisms are active (ablation switches).

    Attributes:
        validate_data: run ``Model.validate_data`` and discard failures.
        assess_model: run ``Model.assess_model`` and intercept
            predictions while it fails.
        assess_actuator: run the end-to-end ``assess_performance`` /
            ``mitigate`` watchdog.
        enforce_expiry: drop expired predictions instead of acting on
            them.
        non_blocking_actuator: bound the Actuator's queue wait by
            ``Schedule.max_actuation_delay_us``.  ``False`` reproduces
            the paper's *blocking* strawman that waits indefinitely
            (Figure 4 / Figure 6 right).
    """

    validate_data: bool = True
    assess_model: bool = True
    assess_actuator: bool = True
    enforce_expiry: bool = True
    non_blocking_actuator: bool = True

    @classmethod
    def all_enabled(cls) -> "SafeguardPolicy":
        """The production configuration."""
        return cls()

    @classmethod
    def none_enabled(cls) -> "SafeguardPolicy":
        """The fully unguarded baseline used in the paper's comparisons."""
        return cls(
            validate_data=False,
            assess_model=False,
            assess_actuator=False,
            enforce_expiry=False,
            non_blocking_actuator=True,
        )


class SafeguardState:
    """Trigger/clear bookkeeping for one safeguard.

    Records transition times so experiments can compute time-in-
    mitigation, and exposes :attr:`active` for the runtime's halt logic.
    """

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self._active = False
        self._activated_at: Optional[int] = None
        #: closed (start_us, end_us) activation windows
        self.windows: List[Tuple[int, int]] = []
        self.trigger_count = 0

    @property
    def active(self) -> bool:
        """Whether the safeguard is currently triggered."""
        return self._active

    @property
    def first_triggered_at_us(self) -> Optional[int]:
        """When this safeguard first engaged, or ``None`` if it never has.

        Closed activation windows are recorded oldest-first, so the
        earliest engagement is the first window's start — or the open
        window's start if the safeguard triggered once and never cleared.
        """
        if self.windows:
            return self.windows[0][0]
        return self._activated_at

    def first_triggered_at_us_since(self, start_us: int) -> Optional[int]:
        """First engagement at or after ``start_us``, or ``None``.

        The safety campaigns anchor time-to-fallback at the fault
        onset; safeguards that tripped during pre-fault warmup must not
        satisfy the query.  Closed windows are recorded
        chronologically, and an open window always starts after every
        closed one, so a linear scan suffices (trigger counts are tiny).
        """
        for window_start, _end in self.windows:
            if window_start >= start_us:
                return window_start
        if self._activated_at is not None and self._activated_at >= start_us:
            return self._activated_at
        return None

    def trigger(self) -> bool:
        """Mark unsafe; returns ``True`` on a fresh transition."""
        if self._active:
            return False
        self._active = True
        self._activated_at = self.kernel.now
        self.trigger_count += 1
        return True

    def clear(self) -> bool:
        """Mark safe again; returns ``True`` on a fresh transition."""
        if not self._active:
            return False
        self._active = False
        assert self._activated_at is not None
        self.windows.append((self._activated_at, self.kernel.now))
        self._activated_at = None
        return True

    def active_duration_us(self) -> int:
        """Total time spent triggered (including an open window)."""
        total = sum(end - start for start, end in self.windows)
        if self._active and self._activated_at is not None:
            total += self.kernel.now - self._activated_at
        return total
