"""SOL: the safe on-node learning framework (the paper's contribution).

Public surface::

    from repro.core import (
        Model, Actuator, Prediction, Schedule, SafeguardPolicy,
        SolRuntime, run_agent, EventKind,
    )
"""

from repro.core.events import EventKind, EventLog, RuntimeEvent
from repro.core.interfaces import Actuator, Model
from repro.core.manager import AgentHealth, AgentManager
from repro.core.prediction import Prediction
from repro.core.runtime import SolRuntime, run_agent
from repro.core.safeguards import SafeguardPolicy, SafeguardState
from repro.core.schedule import Schedule

__all__ = [
    "Actuator",
    "AgentHealth",
    "AgentManager",
    "EventKind",
    "EventLog",
    "Model",
    "Prediction",
    "RuntimeEvent",
    "SafeguardPolicy",
    "SafeguardState",
    "Schedule",
    "SolRuntime",
    "run_agent",
]
