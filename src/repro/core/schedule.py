"""Agent schedules — the paper's ``Schedule`` class (Listing 3).

"Data collection frequency, maximum duration, and the minimum and maximum
number of data points that can be collected in a learning epoch are all
configurable by the developer" (§4.1), plus the actuator's maximum wait
and both assessment cadences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MS, SEC

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """Timing parameters for one agent's Model and Actuator loops.

    Attributes:
        data_collect_interval_us: period between ``collect_data`` calls.
        min_data_per_epoch: validated datapoints required before the
            epoch may update the model and predict.
        max_data_per_epoch: hard cap on collections per epoch.
        max_epoch_time_us: epoch deadline; reaching it short-circuits the
            epoch with a default prediction.
        assess_model_interval_epochs: run ``assess_model`` every K epochs.
        max_actuation_delay_us: longest the Actuator waits on the
            prediction queue before acting without one (the non-blocking
            bound; e.g. 5 s for SmartOverclock, 100 ms for SmartHarvest).
        assess_actuator_interval_us: period of the end-to-end
            ``assess_performance`` watchdog.
        prediction_ttl_us: default lifetime agents give predictions.
    """

    data_collect_interval_us: int = 100 * MS
    min_data_per_epoch: int = 1
    max_data_per_epoch: int = 100
    max_epoch_time_us: int = 1 * SEC
    assess_model_interval_epochs: int = 1
    max_actuation_delay_us: int = 5 * SEC
    assess_actuator_interval_us: int = 1 * SEC
    prediction_ttl_us: int = 2 * SEC

    def __post_init__(self) -> None:
        positive = [
            ("data_collect_interval_us", self.data_collect_interval_us),
            ("max_epoch_time_us", self.max_epoch_time_us),
            ("assess_model_interval_epochs", self.assess_model_interval_epochs),
            ("max_actuation_delay_us", self.max_actuation_delay_us),
            ("assess_actuator_interval_us", self.assess_actuator_interval_us),
            ("prediction_ttl_us", self.prediction_ttl_us),
            ("min_data_per_epoch", self.min_data_per_epoch),
            ("max_data_per_epoch", self.max_data_per_epoch),
        ]
        for name, value in positive:
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.min_data_per_epoch > self.max_data_per_epoch:
            raise ValueError(
                "min_data_per_epoch cannot exceed max_data_per_epoch"
            )
        if self.data_collect_interval_us > self.max_epoch_time_us:
            raise ValueError(
                "data_collect_interval longer than max_epoch_time: the "
                "epoch could never collect a datapoint"
            )
