"""Predictions with explicit expiration times.

"The output of a successful learning epoch is a ``Prediction`` object
that contains the predicted value and an explicit expiration time for
the prediction" (§4.1).  Expiry is the mechanism that makes scheduling
delays safe: a prediction computed before a stall is *provably* not acted
on after the workload may have moved on.  Even default predictions
expire — "they are still reliant on fresh telemetry and can become
stale".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.sim.kernel import Kernel

__all__ = ["Prediction"]

P = TypeVar("P")


@dataclass(frozen=True)
class Prediction(Generic[P]):
    """A model output with provenance and a freshness deadline.

    Attributes:
        value: the agent-specific predicted value (e.g. a target CPU
            frequency, a core count, a region classification).
        produced_at_us: when the model emitted it.
        expires_at_us: after this instant the prediction must not be
            acted on; the runtime passes ``None`` to the Actuator instead.
        is_default: whether this came from ``DefaultPredict`` (a safe
            fallback heuristic) rather than the learned model.
    """

    value: P
    produced_at_us: int
    expires_at_us: int
    is_default: bool = False

    def __post_init__(self) -> None:
        if self.expires_at_us < self.produced_at_us:
            raise ValueError(
                "prediction expires before it is produced "
                f"({self.expires_at_us} < {self.produced_at_us})"
            )

    def is_expired(self, now_us: int) -> bool:
        """Whether the prediction is stale at ``now_us``."""
        return now_us > self.expires_at_us

    @property
    def ttl_us(self) -> int:
        """The prediction's lifetime at production time."""
        return self.expires_at_us - self.produced_at_us

    @classmethod
    def fresh(
        cls,
        kernel: Kernel,
        value: P,
        ttl_us: int,
        is_default: bool = False,
    ) -> "Prediction[P]":
        """Convenience constructor: produced now, expiring ``ttl_us`` later."""
        if ttl_us < 0:
            raise ValueError("ttl must be non-negative")
        return cls(
            value=value,
            produced_at_us=kernel.now,
            expires_at_us=kernel.now + ttl_us,
            is_default=is_default,
        )
