"""Simulated hypervisor: vCPU scheduling, wait accounting, core harvesting.

This is the substrate under SmartHarvest.  The paper's agent runs on the
Hyper-V root partition and observes two hypervisor counters:

* per-VM CPU usage sampled every 50 µs (model input), and
* how long virtual cores waited for physical cores (the actuator
  safeguard's QoS proxy, §5.2).

We reproduce both from a fluid model: the primary VM group presents a
piecewise-constant *demand* (cores it wants to run), the agent controls
the *allocation* (physical cores left to the primary after harvesting),
and the hypervisor accounts exactly for

``usage = min(demand, allocated)``    (cores actually running)
``deficit = max(0, demand − allocated)``  (vCPU wait accrual rate)
``elastic = n_cores − allocated``     (cores loaned to the ElasticVM).

All integrals accrue lazily at change points, so 50 µs sampling is
reconstructed analytically (see :meth:`Hypervisor.sample_usage`) instead
of simulated event-by-event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np

from repro.sim.kernel import Kernel
from repro.sim.units import SEC

__all__ = ["HypervisorSnapshot", "Hypervisor"]


@dataclass(frozen=True)
class HypervisorSnapshot:
    """Cumulative scheduling integrals at one instant (core-microseconds)."""

    time_us: int
    demand_cus: float
    usage_cus: float
    deficit_cus: float
    elastic_cus: float

    def wait_seconds(self) -> float:
        """Total vCPU wait accumulated so far, in core-seconds."""
        return self.deficit_cus / SEC


class Hypervisor:
    """Fluid-model hypervisor for one primary VM group plus an ElasticVM.

    Args:
        kernel: simulation kernel.
        n_cores: physical cores available to the primary group when no
            harvesting is active.
        history_horizon_us: how much demand/allocation history to keep for
            telemetry reconstruction (must cover the model's collection
            window; SmartHarvest uses 25 ms epochs).
    """

    def __init__(
        self,
        kernel: Kernel,
        n_cores: int = 8,
        history_horizon_us: int = 500_000,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.kernel = kernel
        self.n_cores = n_cores
        self._n_cores_f = float(n_cores)
        self._horizon = history_horizon_us
        self._demand = 0.0
        self._allocated = float(n_cores)
        # Accrual rates, recomputed once per change point: usage/deficit/
        # elastic are pure functions of (demand, allocated) and therefore
        # piecewise-constant, but the seed re-derived all three through
        # property dispatch on every accrual.  Same expressions, same
        # bits (DESIGN.md §8).
        self._usage_rate = 0.0
        self._deficit_rate = 0.0
        self._elastic_rate = 0.0
        # closed history segments: (start_us, end_us, demand, allocated),
        # oldest first.  A deque so horizon trimming is O(1) per retired
        # segment (the seed's list.pop(0) shifted every retained entry
        # at every change point).
        self._history: Deque[Tuple[int, int, float, float]] = deque()
        self._segment_start = kernel.now
        # Telemetry reconstruction scratch, reused across sample_usage
        # calls (the epoch window size is constant per agent config, so
        # these stabilize after the first epoch).  Only demand/allocated/
        # noise staging is reused; the returned usage array is always
        # fresh — callers retain sample windows across epochs.
        self._sample_demand = np.empty(0)
        self._sample_allocated = np.empty(0)
        self._sample_noise = np.empty(0)
        # cumulative integrals, core-microseconds
        self._demand_cus = 0.0
        self._usage_cus = 0.0
        self._deficit_cus = 0.0
        self._elastic_cus = 0.0
        self._last_accrue_us = kernel.now
        self._harvest_enabled = True

    # -- state ----------------------------------------------------------------

    @property
    def demand(self) -> float:
        """Current primary-VM demand in cores."""
        return self._demand

    @property
    def allocated(self) -> float:
        """Cores currently available to the primary group."""
        return self._allocated

    @property
    def harvested(self) -> float:
        """Cores currently loaned to the ElasticVM."""
        return self.n_cores - self._allocated

    @property
    def usage(self) -> float:
        """Cores the primary group is actually running on right now."""
        return min(self._demand, self._allocated)

    @property
    def deficit(self) -> float:
        """Cores the primary group wants but cannot get right now."""
        return max(0.0, self._demand - self._allocated)

    # -- control ----------------------------------------------------------------

    def set_demand(self, cores: float) -> None:
        """Workload-side: the primary group now wants ``cores`` cores."""
        if cores < 0:
            raise ValueError("demand must be non-negative")
        self._change(demand=min(float(cores), self._n_cores_f))

    def set_harvested(self, cores: int) -> int:
        """Agent-side: loan ``cores`` cores to the ElasticVM.

        The request is clamped to [0, n_cores].  Returns the applied value.
        This is SmartHarvest's ``TakeAction`` actuation point.
        """
        applied = max(0, min(int(cores), self.n_cores))
        self._change(allocated=float(self.n_cores - applied))
        return applied

    def return_all_cores(self) -> None:
        """Give every core back to the primary group (safeguard/cleanup)."""
        self.set_harvested(0)

    # -- telemetry ----------------------------------------------------------------

    def snapshot(self) -> HypervisorSnapshot:
        """Read cumulative scheduling integrals (accrued to now)."""
        self._accrue()
        return HypervisorSnapshot(
            time_us=self.kernel.now,
            demand_cus=self._demand_cus,
            usage_cus=self._usage_cus,
            deficit_cus=self._deficit_cus,
            elastic_cus=self._elastic_cus,
        )

    def demand_deficit_cus(self) -> Tuple[float, float]:
        """Cumulative ``(demand_cus, deficit_cus)``, accrued to now.

        The exact fields a per-step latency accounting loop needs
        (:class:`~repro.workloads.tailbench.TailBenchWorkload` reads them
        every 25 ms step) without building a :class:`HypervisorSnapshot`
        per step.  Values are the same bits :meth:`snapshot` reports.
        """
        self._accrue()
        return self._demand_cus, self._deficit_cus

    def sample_usage(
        self,
        window_us: int,
        period_us: int,
        rng: Optional[np.random.Generator] = None,
        noise_cores: float = 0.0,
    ) -> np.ndarray:
        """Reconstruct 50 µs-style usage samples over the trailing window.

        Returns one sample per ``period_us`` covering
        ``[now − window_us, now)``, each the usage (cores running) at that
        instant, optionally with truncated Gaussian measurement noise.
        This reproduces the paper's fine-grained telemetry (§3.1: "the
        SmartHarvest agent captures CPU telemetry every 50 µs") without
        simulating per-sample events.
        """
        if period_us <= 0 or window_us <= 0:
            raise ValueError("window and period must be positive")
        now = self.kernel.now
        start = max(0, now - window_us)
        # Sample i sits at time start + i*period; there are ceil((now-start)
        # / period) of them.  Each segment [seg_start, seg_end) covers every
        # sample strictly before seg_end that no earlier segment claimed
        # (samples before retained history take the earliest segment's
        # values), so per segment the covered samples are one contiguous
        # index range — filled with two C-level slice assignments instead
        # of a Python loop per sample (this method runs once per model
        # epoch and dominated fleet wall-clock in the seed profile).
        size = (now - start + period_us - 1) // period_us
        if size <= 0:
            return np.zeros(0)
        if self._sample_demand.size < size:
            self._sample_demand = np.empty(size)
            self._sample_allocated = np.empty(size)
        demand = self._sample_demand[:size]
        allocated = self._sample_allocated[:size]
        # Only segments overlapping [start, now) can claim samples: a
        # segment with seg_end <= start yields a non-positive index
        # ceiling, and the first overlapping segment claims every
        # earlier sample anyway.  History is seg_end-ordered, so walk
        # newest-first and stop at the window edge instead of scanning
        # the whole retained horizon (25 ms window vs 1 s horizon on
        # the harvest path) — same filled values, fewer iterations.
        relevant = []
        for segment in reversed(self._history):
            if segment[1] <= start:
                break
            relevant.append(segment)
        index = 0
        for _seg_start, seg_end, seg_demand, seg_alloc in reversed(relevant):
            if index >= size:
                break
            end = (seg_end - start + period_us - 1) // period_us
            if end > index:
                if end > size:
                    end = size
                demand[index:end] = seg_demand
                allocated[index:end] = seg_alloc
                index = end
        if index < size:  # at/after the open segment start
            demand[index:] = self._demand
            allocated[index:] = self._allocated
        # The result array is freshly allocated (np.minimum's output);
        # noise and clipping then mutate it in place, so the whole call
        # costs one allocation instead of the seed's five.
        usage = np.minimum(demand, allocated)
        if rng is not None and noise_cores > 0.0:
            if self._sample_noise.size < size:
                self._sample_noise = np.empty(size)
            noise = self._sample_noise[:size]
            # Same draws as rng.normal(0.0, noise_cores, size): the
            # scalar-parameter normal is loc + scale * standard_normal
            # per sample off the same bit stream, and loc == 0.0 adds
            # an exact zero.
            rng.standard_normal(out=noise)
            noise *= noise_cores
            usage += noise
            np.clip(usage, 0.0, allocated, out=usage)
        return usage

    def max_demand_over(self, window_us: int) -> float:
        """Exact maximum primary demand over the trailing window.

        Experiments use this as the ground-truth label when scoring the
        agent's predictions.  History is scanned newest-first and the
        scan stops at the first segment wholly before the window, so a
        short window never pays for the full retained horizon (``max``
        is order-independent, so the result is unchanged).
        """
        now = self.kernel.now
        start = max(0, now - window_us)
        peak = self._demand
        for seg_start, seg_end, seg_demand, _alloc in reversed(self._history):
            if seg_end <= start:
                break
            if seg_start < now:
                peak = max(peak, seg_demand)
        return peak

    # -- internals ----------------------------------------------------------------

    def _change(
        self,
        demand: Optional[float] = None,
        allocated: Optional[float] = None,
    ) -> None:
        self._accrue()
        now = self.kernel.now
        if now > self._segment_start:
            self._history.append(
                (self._segment_start, now, self._demand, self._allocated)
            )
            cutoff = now - self._horizon
            while self._history and self._history[0][1] <= cutoff:
                self._history.popleft()
        if demand is not None:
            self._demand = demand
        if allocated is not None:
            self._allocated = allocated
        # The exact property expressions (usage/deficit/harvested),
        # evaluated once per change instead of once per accrual.
        self._usage_rate = min(self._demand, self._allocated)
        self._deficit_rate = max(0.0, self._demand - self._allocated)
        self._elastic_rate = self.n_cores - self._allocated
        self._segment_start = now

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed = now - self._last_accrue_us
        if elapsed <= 0:
            return
        self._demand_cus += self._demand * elapsed
        self._usage_cus += self._usage_rate * elapsed
        self._deficit_cus += self._deficit_rate * elapsed
        self._elastic_cus += self._elastic_rate * elapsed
        self._last_accrue_us = now
