"""Virtual machine descriptor tying the node substrate together.

The paper's agents manage *opaque* VMs: they see hypervisor-level
telemetry but never application internals.  :class:`VirtualMachine`
groups the per-VM substrate handles so examples and experiments can pass
one object around instead of three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import TieredMemory

__all__ = ["VirtualMachine"]


@dataclass
class VirtualMachine:
    """An opaque customer VM as seen from the node.

    Attributes:
        name: identifier used in logs and experiment output.
        cpu: the VM's frequency domain and counters (``None`` when the
            scenario does not exercise CPU control).
        hypervisor: scheduling view for harvest scenarios.
        memory: two-tier memory for memory-management scenarios.
    """

    name: str
    cpu: Optional[CpuModel] = None
    hypervisor: Optional[Hypervisor] = None
    memory: Optional[TieredMemory] = None
    metadata: dict = field(default_factory=dict)

    def describe(self) -> str:
        """One-line inventory used by example scripts."""
        parts = [self.name]
        if self.cpu is not None:
            parts.append(
                f"cpu={self.cpu.n_cores}c@{self.cpu.frequency_ghz:.1f}GHz"
            )
        if self.hypervisor is not None:
            parts.append(f"sched={self.hypervisor.n_cores}pcores")
        if self.memory is not None:
            parts.append(
                f"mem={self.memory.n_regions}x{self.memory.pages_per_region}p"
            )
        return " ".join(parts)
