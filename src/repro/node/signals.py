"""Piecewise-constant signals with exact lazy integration.

The node substrate avoids fine-grained simulation events by representing
time-varying quantities (CPU demand, utilization, power draw) as
piecewise-constant signals: the value only changes at discrete instants
(workload phase changes, agent actions), and integrals over arbitrary
windows are computed analytically.  This is what lets the reproduction
model 50 µs telemetry sampling over hundreds of simulated seconds without
creating 50 µs events.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from repro.sim.kernel import Kernel

__all__ = ["PiecewiseConstant", "SlidingWindowQuantile"]


class PiecewiseConstant:
    """A piecewise-constant signal of simulation time.

    Tracks the current value, the exact running integral, and (optionally)
    a bounded history of past segments so samplers can reconstruct the
    signal's trajectory over a recent window.

    Args:
        kernel: simulation kernel supplying the clock.
        initial: the signal value at time 0.
        history_horizon_us: how much trailing history to retain for
            :meth:`segments_since`; older segments are discarded.  ``None``
            keeps no history (integral and current value still work).
    """

    def __init__(
        self,
        kernel: Kernel,
        initial: float = 0.0,
        history_horizon_us: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self._value = float(initial)
        self._last_change_us = kernel.now
        self._integral = 0.0
        self._horizon = history_horizon_us
        # history holds closed segments as (start_us, end_us, value)
        self._history: Deque[Tuple[int, int, float]] = deque()

    @property
    def value(self) -> float:
        """Current signal value."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal value as of the current simulation time."""
        now = self.kernel.now
        if now > self._last_change_us:
            self._integral += self._value * (now - self._last_change_us)
            if self._horizon is not None:
                self._history.append((self._last_change_us, now, self._value))
                self._trim(now)
        self._value = float(value)
        self._last_change_us = now

    def add(self, delta: float) -> None:
        """Increment the signal by ``delta`` (convenience for counters)."""
        self.set(self._value + delta)

    def integral(self) -> float:
        """Exact integral of the signal from time 0 to now (value·µs)."""
        now = self.kernel.now
        return self._integral + self._value * (now - self._last_change_us)

    def mean_over(self, window_us: int) -> float:
        """Mean value over the trailing ``window_us`` (needs history).

        Falls back to the current value when no history is retained or the
        window extends past the retained horizon's oldest segment.
        """
        if window_us <= 0:
            return self._value
        now = self.kernel.now
        start = max(0, now - window_us)
        total = 0.0
        covered = 0
        for seg_start, seg_end, value in self.segments_since(start):
            span = seg_end - seg_start
            total += value * span
            covered += span
        if covered == 0:
            return self._value
        return total / covered

    def segments_since(self, start_us: int) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(start, end, value)`` segments covering [start_us, now].

        Segments are clipped to ``start_us``.  The open current segment is
        included (ending at ``now``) when non-empty.
        """
        now = self.kernel.now
        for seg_start, seg_end, value in self._history:
            if seg_end <= start_us:
                continue
            yield max(seg_start, start_us), seg_end, value
        if now > self._last_change_us:
            yield max(self._last_change_us, start_us), now, self._value
        elif now == self._last_change_us and now >= start_us:
            # Zero-width current segment: still expose the present value so
            # samplers landing exactly on a change instant see it.
            yield now, now, self._value

    def _trim(self, now: int) -> None:
        cutoff = now - self._horizon
        while self._history and self._history[0][1] <= cutoff:
            self._history.popleft()


class SlidingWindowQuantile:
    """Quantiles over samples from a trailing time window.

    Used by actuator safeguards (e.g. SmartOverclock monitors the P90 of α
    over the last 100 s; SmartHarvest monitors P99 vCPU wait time).

    Args:
        kernel: simulation kernel supplying the clock.
        window_us: samples older than this are evicted.
    """

    def __init__(self, kernel: Kernel, window_us: int) -> None:
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        self.kernel = kernel
        self.window_us = window_us
        self._samples: Deque[Tuple[int, float]] = deque()

    def observe(self, value: float) -> None:
        """Record a sample at the current time."""
        self._samples.append((self.kernel.now, float(value)))
        self._evict()

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of in-window samples, or ``None`` if empty.

        Uses the nearest-rank method, which is what production telemetry
        pipelines typically report for P90/P99.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._evict()
        if not self._samples:
            return None
        values: List[float] = sorted(v for _t, v in self._samples)
        index = min(len(values) - 1, max(0, int(q * len(values) + 0.5) - 1))
        if q == 0.0:
            index = 0
        return values[index]

    def __len__(self) -> int:
        self._evict()
        return len(self._samples)

    def _evict(self) -> None:
        cutoff = self.kernel.now - self.window_us
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()
