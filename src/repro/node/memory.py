"""Two-tier memory substrate: regions, access bits, scanning, migration.

This is the substrate under SmartMemory (§5.3).  Memory is divided into
2 MB *regions* of 512 4 KB pages.  A fast first tier (local DRAM) backs
some regions; the rest live in a slow second tier (persistent or
disaggregated memory).  The agent learns per-region scan frequencies and
classifies regions hot/warm/cold.

What the substrate models:

* **Access generation** — each region has a piecewise-constant access
  rate (accesses/second) driven by the workload's popularity
  distribution.  True per-region access totals accrue analytically.
* **Access-bit scanning** — scanning a region reports how many of its
  pages were touched since the previous scan and clears those bits.
  Page-touch counts follow the standard Poisson-occupancy model: with
  ``a`` accesses spread over ``P`` pages, the expected number of distinct
  touched pages is ``P·(1 − exp(−a/P))``.  This is what produces the
  paper's *saturation* effect: at slow scan rates every warmish region
  shows all bits set and hotness becomes indistinguishable (Figure 7's
  min-frequency SLO collapse).
* **Reset cost** — every set bit cleared is one TLB flush; the paper's
  top-of-Figure-7 metric is the total number of access-bit resets.
* **Tier accounting** — accesses to second-tier regions are *remote*;
  the fraction of remote accesses over a window is the SLO the actuator
  safeguard enforces (≤ 20% remote).

Accrual is the per-event hot loop here: every scan, migration, and rate
push accrues first, and the seed rebuilt a fresh ``rates * elapsed``
array plus *two* boolean tier masks (one of them a ``~mask`` allocation)
per accrual.  The live path reuses one delta buffer and caches the
local/remote index vectors, invalidated only on migration — the sums run
over the same elements in the same ascending-index order, so every
accumulated value is bit-identical to the seed path (DESIGN.md §8,
pinned by ``tests/workloads/test_vectorized_workloads_bit_identity.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.sim.kernel import Kernel
from repro.sim.units import SEC

__all__ = ["Tier", "ScanResult", "MemorySnapshot", "TieredMemory"]


class Tier(enum.Enum):
    """Which tier currently backs a region."""

    LOCAL = "local"
    REMOTE = "remote"


@dataclass(frozen=True)
class ScanResult:
    """Outcome of scanning one region's access bits.

    Attributes:
        region: region index.
        set_bits: pages observed touched since the previous scan (0 if
            ``error``).
        pages: pages per region (the scan walked all of them).
        elapsed_us: time since the previous scan of this region.
        saturated: nearly all bits were set — the reading carries no
            rate information beyond a lower bound (undersampling signal).
        error: the scanning driver failed (fault injection); the paper's
            ``ValidateData`` fails such samples (§5.3).
    """

    region: int
    set_bits: int
    pages: int
    elapsed_us: int
    saturated: bool
    error: bool = False


@dataclass(frozen=True)
class MemorySnapshot:
    """Cumulative memory accounting at one instant."""

    time_us: int
    local_accesses: float
    remote_accesses: float
    bit_resets: int
    pages_scanned: int
    migrations: int

    @property
    def total_accesses(self) -> float:
        return self.local_accesses + self.remote_accesses

    def remote_fraction(self) -> float:
        """Fraction of accesses served remotely (0 when idle)."""
        total = self.total_accesses
        return self.remote_accesses / total if total > 0 else 0.0


class TieredMemory:
    """The two-tier memory of one VM, in region granularity.

    Args:
        kernel: simulation kernel.
        n_regions: number of 2 MB regions (512 ≈ a 1 GB VM).
        pages_per_region: 4 KB pages per region (512 in the paper).
        rng: generator for the stochastic part of access-bit occupancy;
            ``None`` uses deterministic expectations (useful in tests).
        saturation_fraction: fraction of set bits above which a scan is
            reported saturated.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_regions: int = 512,
        pages_per_region: int = 512,
        rng: Optional[np.random.Generator] = None,
        saturation_fraction: float = 0.98,
    ) -> None:
        if n_regions <= 0 or pages_per_region <= 0:
            raise ValueError("n_regions and pages_per_region must be positive")
        self.kernel = kernel
        self.n_regions = n_regions
        self.pages_per_region = pages_per_region
        self.rng = rng
        self._saturation_fraction = saturation_fraction

        self._rates = np.zeros(n_regions)  # accesses per second
        self._local = np.ones(n_regions, dtype=bool)  # all start in tier 1
        # accrual scratch + tier caches (module docstring): the delta
        # buffer is reused across accruals; the ascending index vectors
        # and the per-tier extracted rate vectors stand in for the
        # seed's per-accrual boolean masks and fancy extractions, and go
        # stale only when rates or tiers actually change.
        self._delta = np.empty(n_regions)
        self._local_idx = np.arange(n_regions)
        self._remote_idx = np.empty(0, dtype=np.intp)
        # Capacity buffers for the per-tier delta extraction scratch;
        # the active extraction targets are length-k slices.
        self._local_scratch_buf = np.empty(n_regions)
        self._remote_scratch_buf = np.empty(n_regions)
        self._n_local = n_regions
        self._idx_stale = False
        self._true_accesses = np.zeros(n_regions)  # cumulative per region
        # Scanned-state bookkeeping is strictly per-region scalar reads
        # and writes, so plain Python lists beat numpy scalar indexing.
        self._accesses_at_last_scan = [0.0] * n_regions
        self._last_scan_us = [0] * n_regions
        self._saturation_threshold = saturation_fraction * pages_per_region
        self._local_accesses = 0.0
        self._remote_accesses = 0.0
        self._bit_resets = 0
        self._pages_scanned = 0
        self._migrations = 0
        self._last_accrue_us = kernel.now
        self._scan_fault_probability = 0.0

    @property
    def saturation_fraction(self) -> float:
        """Set-bit fraction above which a scan reports saturation.

        Assignable; the precomputed scan threshold tracks it so
        :meth:`scan` and external readers can never disagree.
        """
        return self._saturation_fraction

    @saturation_fraction.setter
    def saturation_fraction(self, value: float) -> None:
        self._saturation_fraction = value
        self._saturation_threshold = value * self.pages_per_region

    # -- workload side ----------------------------------------------------------

    def set_rates(self, rates: Sequence[float]) -> None:
        """Set all region access rates (accesses/second) at once."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.n_regions,):
            raise ValueError(
                f"expected {self.n_regions} rates, got shape {rates.shape}"
            )
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        self._accrue()
        np.copyto(self._rates, rates)

    @property
    def rates(self) -> np.ndarray:
        """Current per-region access rates (copy)."""
        return self._rates.copy()

    # -- agent side ----------------------------------------------------------------

    def scan(self, region: int) -> ScanResult:
        """Scan one region's access bits, clearing them (costs TLB flushes)."""
        self._check_region(region)
        self._accrue()
        now = self.kernel.now
        elapsed_us = now - self._last_scan_us[region]
        if (
            self._scan_fault_probability > 0.0
            and self.rng is not None
            and self.rng.random() < self._scan_fault_probability
        ):
            # Driver error: bits are left untouched, no reading produced.
            return ScanResult(
                region=region,
                set_bits=0,
                pages=self.pages_per_region,
                elapsed_us=elapsed_us,
                saturated=False,
                error=True,
            )
        true_accesses = float(self._true_accesses[region])
        accesses = true_accesses - self._accesses_at_last_scan[region]
        set_bits = self._occupancy(accesses)
        self._accesses_at_last_scan[region] = true_accesses
        self._last_scan_us[region] = now
        self._bit_resets += set_bits
        self._pages_scanned += self.pages_per_region
        return ScanResult(
            region=region,
            set_bits=set_bits,
            pages=self.pages_per_region,
            elapsed_us=elapsed_us,
            saturated=set_bits >= self._saturation_threshold,
        )

    def migrate(self, region: int, tier: Tier) -> bool:
        """Move a region to ``tier``; returns ``True`` if it actually moved."""
        self._check_region(region)
        target_local = tier is Tier.LOCAL
        if self._local[region] == target_local:
            return False
        self._accrue()
        self._local[region] = target_local
        self._n_local += 1 if target_local else -1
        self._idx_stale = True
        self._migrations += 1
        return True

    def migrate_many(self, regions: Iterable[int], tier: Tier) -> int:
        """Migrate several regions; returns how many actually moved."""
        return sum(1 for region in regions if self.migrate(region, tier))

    def tier_of(self, region: int) -> Tier:
        """Current tier of a region."""
        self._check_region(region)
        return Tier.LOCAL if self._local[region] else Tier.REMOTE

    @property
    def n_local(self) -> int:
        """Number of regions currently in first-tier DRAM."""
        return self._n_local

    @property
    def local_regions(self) -> np.ndarray:
        """Indices of first-tier regions (fresh array; callers may mutate)."""
        self._refresh_idx()
        return self._local_idx.copy()

    @property
    def remote_regions(self) -> np.ndarray:
        """Indices of second-tier regions (fresh array; callers may mutate)."""
        self._refresh_idx()
        return self._remote_idx.copy()

    def snapshot(self) -> MemorySnapshot:
        """Read cumulative accounting (accrued to now)."""
        self._accrue()
        return MemorySnapshot(
            time_us=self.kernel.now,
            local_accesses=self._local_accesses,
            remote_accesses=self._remote_accesses,
            bit_resets=self._bit_resets,
            pages_scanned=self._pages_scanned,
            migrations=self._migrations,
        )

    def true_region_accesses(self) -> np.ndarray:
        """Cumulative true accesses per region (experiment ground truth)."""
        self._accrue()
        return self._true_accesses.copy()

    # -- fault injection ----------------------------------------------------------

    def set_scan_fault_probability(self, probability: float) -> None:
        """Make each scan fail (driver error) with this probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if probability > 0.0 and self.rng is None:
            raise ValueError("scan faults require an rng")
        self._scan_fault_probability = probability

    # -- internals -------------------------------------------------------------------

    def _occupancy(self, accesses: float) -> int:
        """Distinct pages touched by ``accesses`` accesses (Poisson model)."""
        pages = self.pages_per_region
        if accesses <= 0:
            return 0
        expected_fraction = 1.0 - np.exp(-accesses / pages)
        if self.rng is None:
            return int(round(pages * expected_fraction))
        return int(self.rng.binomial(pages, expected_fraction))

    def _refresh_idx(self) -> None:
        if self._idx_stale:
            self._local_idx = np.flatnonzero(self._local)
            self._remote_idx = np.flatnonzero(~self._local)
            self._idx_stale = False

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed_s = (now - self._last_accrue_us) / SEC
        if elapsed_s <= 0:
            return
        # delta.take(idx) visits the same elements in the same ascending
        # order as the seed's delta[mask], and np.add.reduce is the
        # primitive inside ndarray.sum — so both tier sums see the same
        # pairwise reduction and every accumulated bit is unchanged,
        # while the per-accrual mask build (including the ~mask
        # allocation), the fancy-extraction allocations, and the delta
        # allocation are gone.  mode='clip' only skips the bounds check
        # (the cached indices are in range by construction) and selects
        # numpy's unbuffered take path.
        delta = self._delta
        np.multiply(self._rates, elapsed_s, out=delta)
        self._true_accesses += delta
        n_local = self._n_local
        if n_local == self.n_regions:
            # All-local (the starting state): the extraction would be
            # the whole delta vector, so sum it directly.
            self._local_accesses += float(np.add.reduce(delta))
        elif n_local == 0:
            self._remote_accesses += float(np.add.reduce(delta))
        else:
            self._refresh_idx()
            local_idx = self._local_idx
            scratch = self._local_scratch_buf[:local_idx.size]
            delta.take(local_idx, out=scratch, mode="clip")
            self._local_accesses += float(np.add.reduce(scratch))
            remote_idx = self._remote_idx
            scratch = self._remote_scratch_buf[:remote_idx.size]
            delta.take(remote_idx, out=scratch, mode="clip")
            self._remote_accesses += float(np.add.reduce(scratch))
        self._last_accrue_us = now

    def _check_region(self, region: int) -> None:
        if not 0 <= region < self.n_regions:
            raise IndexError(
                f"region {region} out of range [0, {self.n_regions})"
            )
