"""Simulated server-node substrate (CPU, hypervisor, memory, faults).

These are the systems the paper's testbed provides in hardware and
Hyper-V; ``DESIGN.md`` §2 documents each substitution.
"""

from repro.node.counters import CounterReader, IntervalMetrics
from repro.node.cpu import CounterSnapshot, CpuModel
from repro.node.faults import (
    DelayInjector,
    ModelBreaker,
    bad_ips_injector,
    bad_usage_injector,
    stuck_usage_injector,
)
from repro.node.hypervisor import Hypervisor, HypervisorSnapshot
from repro.node.memory import MemorySnapshot, ScanResult, Tier, TieredMemory
from repro.node.power import PowerModel
from repro.node.signals import PiecewiseConstant, SlidingWindowQuantile
from repro.node.vm import VirtualMachine

__all__ = [
    "CounterReader",
    "CounterSnapshot",
    "CpuModel",
    "DelayInjector",
    "Hypervisor",
    "HypervisorSnapshot",
    "IntervalMetrics",
    "MemorySnapshot",
    "ModelBreaker",
    "PiecewiseConstant",
    "PowerModel",
    "ScanResult",
    "SlidingWindowQuantile",
    "Tier",
    "TieredMemory",
    "VirtualMachine",
    "bad_ips_injector",
    "bad_usage_injector",
    "stuck_usage_injector",
]
