"""CPU model: DVFS, hardware-counter accrual, and work execution.

This is the substrate under SmartOverclock.  It models one VM's frequency
domain (the paper's agent sets all of a VM's cores to the same frequency
within an epoch, §6.2) and maintains the exact cumulative values of the
counters the agent reads:

* retired instructions (→ IPS over an interval),
* unhalted / stalled / total cycles (→ the α factor of §5.1),
* energy (→ average power over an interval).

Counters accrue *lazily*: rates only change at discrete instants
(frequency changes, workload phase changes), so the cumulative values are
advanced analytically at each change or read.  No periodic simulation
events are needed, which keeps hundreds of simulated seconds cheap.

Because every accrual rate is piecewise-constant between state changes,
the rates themselves (cycle/instruction/energy rates, including the
``ratio ** freq_scaling`` pow and the power-curve polynomial) are
computed once per state change and reused by every accrual until the
next change — the seed model re-derived all of them inside ``_accrue``
on every phase flip, which dominated the 200 ms sampling loops of the
CPU workloads (DESIGN.md §8).  The cached products use exactly the seed
expressions in the seed operand order, so every accrued value is
bit-identical to the seed path (pinned by
``tests/workloads/test_vectorized_workloads_bit_identity.py``).

Workload model
--------------
A workload phase is three numbers:

``utilization``    fraction of cycles the cores are unhalted;
``boundness``      fraction of unhalted cycles doing useful work (high for
                   CPU-bound code, low for disk/memory-bound code) — this
                   is exactly the α=(unhalted−stalled)/total signal the
                   paper's actuator safeguard monitors;
``freq_scaling``   exponent ``s`` such that IPS ∝ f^s (1 = perfectly
                   CPU-bound, 0 = no benefit from overclocking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.node.power import PowerModel
from repro.sim.kernel import Event, Kernel
from repro.sim.units import SEC

__all__ = ["CounterSnapshot", "CpuModel"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Cumulative hardware counters at one instant.

    Units: instructions and cycles in giga-units; energy in joules.
    """

    time_us: int
    instructions: float
    unhalted_cycles: float
    stalled_cycles: float
    total_cycles: float
    energy_joules: float


class CpuModel:
    """One VM's cores: frequency control plus exact counter accounting.

    Args:
        kernel: simulation kernel.
        n_cores: cores in the frequency domain.
        nominal_freq_ghz: the "safe" frequency the paper's safeguards
            restore (1.5 GHz in §6.2).
        min_freq_ghz / max_freq_ghz: clamp range for :meth:`set_frequency`.
        max_ipc: instructions per cycle of a fully CPU-bound workload.
        power_model: node power curve.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_cores: int = 8,
        nominal_freq_ghz: float = 1.5,
        min_freq_ghz: float = 1.0,
        max_freq_ghz: float = 2.6,
        max_ipc: float = 4.0,
        power_model: PowerModel = PowerModel(),
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if not min_freq_ghz <= nominal_freq_ghz <= max_freq_ghz:
            raise ValueError("need min_freq <= nominal_freq <= max_freq")
        self.kernel = kernel
        self.n_cores = n_cores
        self.nominal_freq_ghz = nominal_freq_ghz
        self.min_freq_ghz = min_freq_ghz
        self.max_freq_ghz = max_freq_ghz
        self.max_ipc = max_ipc
        self.power_model = power_model

        self._freq_ghz = nominal_freq_ghz
        self._utilization = 0.0
        self._boundness = 1.0
        self._freq_scaling = 1.0

        self._instructions = 0.0
        self._unhalted = 0.0
        self._stalled = 0.0
        self._total = 0.0
        self._energy = 0.0
        self._last_accrue_us = kernel.now

        # pow caches: ratio ** freq_scaling and the power curve's
        # freq³ prefix only change with frequency (or the scaling
        # exponent), not with utilization — the common phase flip.
        self._pow_ratio = -1.0
        self._pow_scaling = -1.0
        self._pow_value = 1.0
        self._watts_freq = -1.0
        self._watts_prefix = 0.0
        # Hoisted power-curve constants: the model is immutable, and
        # (1 - idle_activity) precomputed gives the same product the
        # seed's activity expression evaluates per call.
        self._pm_static = power_model.static_watts
        self._pm_idle = power_model.idle_activity
        self._pm_active_span = 1.0 - power_model.idle_activity
        # accrual rates, recomputed once per state change (see module
        # docstring); initialized for the idle starting phase.
        self._recompute_rates()

        # The change event is allocated lazily: only :meth:`run_work` (and
        # external waiters) ever observe it, and the sampling workloads
        # flip phases thousands of times per run without anyone waiting —
        # the seed allocated and fired one Event per flip regardless.
        self._change: Optional[Event] = None

    # -- state inspection ----------------------------------------------------

    @property
    def change(self) -> Event:
        """Fires (and is replaced) whenever frequency or phase changes.

        :meth:`run_work` races its ETA against this.  Allocated on first
        access per state epoch: code that never waits on changes never
        pays for the event churn.
        """
        if self._change is None:
            self._change = self.kernel.event("cpu.change")
        return self._change

    @property
    def frequency_ghz(self) -> float:
        """Current core frequency."""
        return self._freq_ghz

    @property
    def utilization(self) -> float:
        """Current workload utilization (fraction of cycles unhalted)."""
        return self._utilization

    @property
    def alpha(self) -> float:
        """Instantaneous α = (unhalted − stalled) / total = u·β (§5.1)."""
        return self._utilization * self._boundness

    def instantaneous_watts(self) -> float:
        """Current power draw."""
        return self._watts

    def ips_rate(self) -> float:
        """Current retirement rate in giga-instructions per second.

        ``IPS(f) = u · β · max_ipc · n_cores · f_nom · (f/f_nom)^s`` —
        linear in frequency for CPU-bound work (s=1), flat for
        disk-bound work (s=0).
        """
        return self._ips_rate

    # -- control -------------------------------------------------------------

    def set_frequency(self, freq_ghz: float) -> float:
        """Set the frequency (clamped to the model's range); returns it.

        This is the agent's actuation point (SmartOverclock's
        ``TakeAction``).
        """
        clamped = min(self.max_freq_ghz, max(self.min_freq_ghz, freq_ghz))
        self._accrue()
        self._freq_ghz = clamped
        self._recompute_rates()
        self._notify_change()
        return clamped

    def set_phase(
        self,
        utilization: float,
        boundness: float = 1.0,
        freq_scaling: float = 1.0,
    ) -> None:
        """Workload-side phase change (see module docstring for semantics)."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        if not 0.0 <= boundness <= 1.0:
            raise ValueError(f"boundness must be in [0, 1], got {boundness}")
        if not 0.0 <= freq_scaling <= 1.0:
            raise ValueError(
                f"freq_scaling must be in [0, 1], got {freq_scaling}"
            )
        self._accrue()
        self._utilization = utilization
        self._boundness = boundness
        self._freq_scaling = freq_scaling
        self._recompute_rates()
        # _notify_change, inlined for the per-sample hot path.
        change = self._change
        if change is not None:
            self._change = None
            change.succeed(None)

    def snapshot(self) -> CounterSnapshot:
        """Read the cumulative counters (accrued to the current instant)."""
        self._accrue()
        return CounterSnapshot(
            time_us=self.kernel.now,
            instructions=self._instructions,
            unhalted_cycles=self._unhalted,
            stalled_cycles=self._stalled,
            total_cycles=self._total,
            energy_joules=self._energy,
        )

    # -- work execution --------------------------------------------------------

    def run_work(
        self, giga_instructions: float
    ) -> Generator[Any, Any, None]:
        """Process generator: complete ``giga_instructions`` of work.

        Completion time depends on the frequency the agent sets *while the
        work runs*; the generator re-plans whenever the CPU state changes.
        The caller is responsible for setting a busy phase first (work
        retires at :meth:`ips_rate`).

        Usage::

            cpu.set_phase(utilization=1.0, boundness=0.9)
            yield from cpu.run_work(batch_size)
            cpu.set_phase(utilization=0.0)
        """
        if giga_instructions < 0:
            raise ValueError("work must be non-negative")
        self._accrue()
        target = self._instructions + giga_instructions
        while True:
            self._accrue()
            remaining = target - self._instructions
            if remaining <= 1e-9:
                return
            rate = self.ips_rate()
            if rate <= 0.0:
                # No progress possible (idle phase): wait for any change.
                yield self.change
                continue
            eta_us = int(math.ceil(remaining / rate * SEC))
            waiter = self.kernel.event("cpu.work")
            self.kernel.call_later(eta_us, lambda w=waiter: w.succeed("eta"))
            self.change.add_callback(lambda _v, w=waiter: w.succeed("change"))
            yield waiter

    # -- internals -------------------------------------------------------------

    def _recompute_rates(self) -> None:
        """Re-derive every accrual rate for the new (freq, phase) state.

        Expressions and operand order are exactly the seed ``_accrue`` /
        ``ips_rate`` / ``PowerModel.watts`` forms, so the cached values
        are the bits the seed recomputed per accrual.  The pow is cached
        separately: utilization flips (the common case — every workload
        sample) leave ``ratio ** freq_scaling`` untouched.
        """
        total_rate = self.n_cores * self._freq_ghz  # giga-cycles per second
        unhalted_rate = self._utilization * total_rate
        self._total_rate = total_rate
        self._unhalted_rate = unhalted_rate
        self._stalled_rate = unhalted_rate * (1.0 - self._boundness)
        ratio = self._freq_ghz / self.nominal_freq_ghz
        if ratio != self._pow_ratio or self._freq_scaling != self._pow_scaling:
            self._pow_ratio = ratio
            self._pow_scaling = self._freq_scaling
            self._pow_value = ratio**self._freq_scaling
        self._ips_rate = (
            self._utilization
            * self._boundness
            * self.max_ipc
            * self.n_cores
            * self.nominal_freq_ghz
            * self._pow_value
        )
        # PowerModel.watts, with its frequency-only prefix
        # ``dynamic_coeff * n_cores * f³`` cached: left-to-right operand
        # grouping matches the seed expression, so the product is the
        # same bits PowerModel.watts returns.
        if self._freq_ghz != self._watts_freq:
            self._watts_freq = self._freq_ghz
            self._watts_prefix = (
                self.power_model.dynamic_coeff
                * self.n_cores
                * self._freq_ghz**3
            )
        activity = self._pm_idle + self._pm_active_span * self._utilization
        self._watts = self._pm_static + self._watts_prefix * activity

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed_s = (now - self._last_accrue_us) / SEC
        if elapsed_s <= 0.0:
            return
        self._total += self._total_rate * elapsed_s
        self._unhalted += self._unhalted_rate * elapsed_s
        self._stalled += self._stalled_rate * elapsed_s
        self._instructions += self._ips_rate * elapsed_s
        self._energy += self._watts * elapsed_s
        self._last_accrue_us = now

    def _notify_change(self) -> None:
        old = self._change
        if old is not None:
            self._change = None
            old.succeed(None)
