"""Server power model.

The paper's SmartOverclock experiments run with C-states disabled ("we
disable simultaneous multithreading, C-states, and Turbo-Boost", §6.1),
so even *idle* cores draw frequency-dependent power — that is why
overclocking an idle workload wastes power (Figures 4 and 5), and why the
agent's safeguards matter.

We use the standard CMOS approximation: dynamic power scales with ``f³``
(frequency times the square of the roughly-proportional voltage), plus a
platform-static floor::

    P(f, u) = static + coeff · n_cores · f³ · (idle_activity + (1-idle_activity) · u)

where ``u`` is utilization (fraction of unhalted cycles) and
``idle_activity`` models the draw of a spinning-idle core with C-states
disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """Parameters of the node power curve.

    Attributes:
        static_watts: platform draw independent of core activity
            (uncore, memory, fans, VRs).
        dynamic_coeff: watts per core per GHz³ at full utilization.
        idle_activity: fraction of the dynamic draw consumed by an idle
            core (C-states disabled → clock keeps toggling).  0 would mean
            perfect clock gating; the paper's setup is closer to ~0.35.
    """

    static_watts: float = 60.0
    dynamic_coeff: float = 2.0
    idle_activity: float = 0.35

    def __post_init__(self) -> None:
        if self.static_watts < 0:
            raise ValueError("static_watts must be non-negative")
        if self.dynamic_coeff <= 0:
            raise ValueError("dynamic_coeff must be positive")
        if not 0.0 <= self.idle_activity <= 1.0:
            raise ValueError("idle_activity must be in [0, 1]")

    def watts(self, n_cores: int, freq_ghz: float, utilization: float) -> float:
        """Instantaneous node power draw.

        Args:
            n_cores: number of cores in the frequency domain.
            freq_ghz: current core frequency.
            utilization: fraction of cycles unhalted, in [0, 1].
        """
        activity = self.idle_activity + (1.0 - self.idle_activity) * utilization
        return (
            self.static_watts
            + self.dynamic_coeff * n_cores * freq_ghz**3 * activity
        )
