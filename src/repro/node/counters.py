"""Interval counter readings — the telemetry surface agents actually see.

Agents never touch :class:`~repro.node.cpu.CpuModel` internals; they read
hardware counters the way the paper's agents do (§5.1: "the agent collects
multiple CPU counters"): take a snapshot, wait, take another, and derive
interval metrics (IPS, α, utilization, average power) from the diff.

:class:`CounterReader` packages that diffing, and is also the fault
injection point for the invalid-data experiments (Figure 2): injectors
corrupt the *readings*, exactly where misconfigured drivers or semantics
changes corrupt them in production (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.node.cpu import CounterSnapshot, CpuModel
from repro.sim.units import SEC

__all__ = ["IntervalMetrics", "CounterReader"]


@dataclass(frozen=True)
class IntervalMetrics:
    """Derived metrics over one collection interval.

    Attributes:
        start_us / end_us: the interval bounds.
        ips: retired giga-instructions per second over the interval.
        alpha: (unhalted − stalled) / total cycles — the paper's
            overclocking-benefit indicator.
        utilization: unhalted / total cycles.
        mean_watts: average power over the interval.
        freq_ghz: frequency at read time (the setting the agent chose).
    """

    start_us: int
    end_us: int
    ips: float
    alpha: float
    utilization: float
    mean_watts: float
    freq_ghz: float

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


#: An injector maps a genuine reading to a (possibly corrupted) reading.
Injector = Callable[[IntervalMetrics], IntervalMetrics]


class CounterReader:
    """Stateful interval reader over a :class:`CpuModel`.

    Each :meth:`read` returns metrics since the previous ``read`` (or
    since construction).  Registered injectors are applied in order to
    every reading, mirroring data corruption at the driver boundary.
    """

    def __init__(self, cpu: CpuModel) -> None:
        self.cpu = cpu
        self._previous: CounterSnapshot = cpu.snapshot()
        self._injectors: List[Injector] = []

    def add_injector(self, injector: Injector) -> None:
        """Register a fault injector applied to all subsequent readings."""
        self._injectors.append(injector)

    def clear_injectors(self) -> None:
        """Remove all fault injectors (end of an injection experiment)."""
        self._injectors.clear()

    def read(self) -> Optional[IntervalMetrics]:
        """Metrics since the previous read; ``None`` for an empty interval."""
        current = self.cpu.snapshot()
        previous, self._previous = self._previous, current
        metrics = self._derive(previous, current)
        if metrics is None:
            return None
        for injector in self._injectors:
            metrics = injector(metrics)
        return metrics

    def _derive(
        self, previous: CounterSnapshot, current: CounterSnapshot
    ) -> Optional[IntervalMetrics]:
        duration_us = current.time_us - previous.time_us
        if duration_us <= 0:
            return None
        duration_s = duration_us / SEC
        d_instr = current.instructions - previous.instructions
        d_unhalted = current.unhalted_cycles - previous.unhalted_cycles
        d_stalled = current.stalled_cycles - previous.stalled_cycles
        d_total = current.total_cycles - previous.total_cycles
        d_energy = current.energy_joules - previous.energy_joules
        alpha = (d_unhalted - d_stalled) / d_total if d_total > 0 else 0.0
        utilization = d_unhalted / d_total if d_total > 0 else 0.0
        return IntervalMetrics(
            start_us=previous.time_us,
            end_us=current.time_us,
            ips=d_instr / duration_s,
            alpha=alpha,
            utilization=utilization,
            mean_watts=d_energy / duration_s,
            freq_ghz=self.cpu.frequency_ghz,
        )
