"""Fault injection — the failure conditions of §3.2, as first-class objects.

The paper evaluates SOL by injecting failures "into the system" (§6.1):

* **bad input data** — out-of-range counter readings (Figure 2, Figure 6
  left): injected at the counter-read boundary via
  :func:`bad_ips_injector` / :func:`bad_usage_injector`;
* **broken models** — a model that consistently selects the worst action
  (Figure 3, Figure 6 middle): injected at the model-output boundary via
  :class:`ModelBreaker`;
* **scheduling delays** — the agent's Model loop is starved for a period
  (Figure 4, Figure 6 right): injected at the loop-scheduling boundary
  via :class:`DelayInjector`, which the SOL runtime consults between
  operations.

Keeping injection at these three boundaries matches where production
failures actually enter: the driver, the learner, and the scheduler.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.node.counters import IntervalMetrics

__all__ = [
    "bad_ips_injector",
    "bad_usage_injector",
    "ModelBreaker",
    "DelayInjector",
]


def bad_ips_injector(
    rng: np.random.Generator,
    probability: float,
    bad_value: float = 1e9,
) -> Callable[[IntervalMetrics], IntervalMetrics]:
    """Corrupt a fraction of IPS readings with an out-of-range value.

    Reproduces Figure 2's invalid-data experiment: "randomly returning
    out-of-range IPS readings to the agent a fixed percentage of the
    time".  The returned injector plugs into
    :meth:`repro.node.counters.CounterReader.add_injector`.

    Args:
        rng: random stream dedicated to this injector.
        probability: chance each reading is corrupted.
        bad_value: the out-of-range IPS to substitute (default far above
            any feasible ``max_freq · max_IPC`` bound, so range checks
            catch it — the *interesting* case is agents without checks).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(metrics: IntervalMetrics) -> IntervalMetrics:
        if rng.random() < probability:
            return replace(metrics, ips=bad_value)
        return metrics

    return inject


def bad_usage_injector(
    rng: np.random.Generator,
    probability: float,
    scale: float = 0.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Corrupt CPU-usage sample arrays (SmartHarvest's model input).

    With probability ``probability`` the whole sample window is scaled by
    ``scale`` (default 0: reads as "VM idle"), biasing an unguarded model
    toward underprediction.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(samples: np.ndarray) -> np.ndarray:
        if rng.random() < probability:
            return samples * scale
        return samples

    return inject


def stuck_usage_injector(
    rng: np.random.Generator,
    probability: float,
    sentinel: float = -1.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Misconfigured usage counter: reads return an error sentinel.

    A stuck or misconfigured hypervisor counter returns its error value
    instead of real samples ("telemetry collection can fail in a variety
    of ways — e.g., misconfigured drivers", §3.2).  The sentinel is out
    of physical range, so SmartHarvest's range check ``ValidateData``
    discards it; an unguarded agent instead learns "the primary needs
    zero cores" and harvests the node hollow (Figure 6 left).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(samples: np.ndarray) -> np.ndarray:
        if rng.random() < probability:
            return np.full_like(samples, sentinel)
        return samples

    return inject


class ModelBreaker:
    """Switchable model-output override (the "broken model" failures).

    The experiment harness arms the breaker at a chosen simulated time;
    while armed, the agent's model produces ``broken_value`` regardless of
    its learned state.  SmartOverclock's breaker forces the maximum
    frequency (Figure 3); SmartHarvest's forces a prediction of zero
    cores needed (Figure 6 middle).
    """

    def __init__(self, broken_value) -> None:
        self.broken_value = broken_value
        self._armed = False
        self.activations = 0

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        """Start overriding model outputs."""
        self._armed = True

    def disarm(self) -> None:
        """Stop overriding; the real model output flows again."""
        self._armed = False

    def apply(self, value):
        """Return the (possibly overridden) model output."""
        if self._armed:
            self.activations += 1
            return self.broken_value
        return value


class DelayInjector:
    """Scheduling-delay plan for an agent loop.

    Holds ``(at_us, duration_us)`` windows.  The SOL runtime asks
    :meth:`pending_delay` between operations; a hit stalls the loop for
    the window's duration, reproducing host-side throttling ("agents will
    be throttled for arbitrary periods of time", §3.2).  One-shot windows
    can also be armed dynamically by experiment triggers (e.g. Figure 4
    injects a 30 s delay exactly when the workload finishes a batch).
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[int, int]] = []
        self._pending: Optional[int] = None
        self.triggered: List[Tuple[int, int]] = []

    def add_window(self, at_us: int, duration_us: int) -> None:
        """Schedule a delay of ``duration_us`` at absolute time ``at_us``."""
        if at_us < 0 or duration_us <= 0:
            raise ValueError("need at_us >= 0 and duration_us > 0")
        self._windows.append((at_us, duration_us))
        self._windows.sort()

    def trigger_now(self, duration_us: int) -> None:
        """Arm a one-shot delay to be consumed at the next check."""
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        self._pending = duration_us

    def pending_delay(self, now_us: int) -> int:
        """Delay (µs) the loop must stall for at ``now_us``; 0 if none.

        Consumes at most one window/trigger per call.
        """
        if self._pending is not None:
            duration, self._pending = self._pending, None
            self.triggered.append((now_us, duration))
            return duration
        while self._windows and self._windows[0][0] <= now_us:
            _at, duration = self._windows.pop(0)
            self.triggered.append((now_us, duration))
            return duration
        return 0
