"""Fault injection — the failure conditions of §3.2, as first-class objects.

The paper evaluates SOL by injecting failures "into the system" (§6.1):

* **bad input data** — out-of-range counter readings (Figure 2, Figure 6
  left): injected at the counter-read boundary via
  :func:`bad_ips_injector` / :func:`bad_usage_injector`;
* **broken models** — a model that consistently selects the worst action
  (Figure 3, Figure 6 middle): injected at the model-output boundary via
  :class:`ModelBreaker`;
* **scheduling delays** — the agent's Model loop is starved for a period
  (Figure 4, Figure 6 right): injected at the loop-scheduling boundary
  via :class:`DelayInjector`, which the SOL runtime consults between
  operations.

Beyond the paper's three, the robustness campaigns (``repro.sweep``)
need failure modes §3.2 only gestures at:

* **telemetry dropout / stale reads** — a wedged telemetry daemon keeps
  serving its last cached value instead of fresh readings
  (:class:`StaleReadInjector`), or a scan batch is lost outright
  (:func:`dropped_batch_injector`);
* **agent crash-restart** — the whole agent process dies and a node
  supervisor later restarts it (``SolRuntime.crash`` / ``restart``,
  scheduled fleet-wide by :func:`repro.fleet.faults.attach_burst`).

Keeping injection at these boundaries matches where production
failures actually enter: the driver, the learner, and the scheduler.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

import numpy as np

from repro.node.counters import IntervalMetrics

__all__ = [
    "bad_ips_injector",
    "bad_usage_injector",
    "dropped_batch_injector",
    "ModelBreaker",
    "DelayInjector",
    "StaleReadInjector",
]

T = TypeVar("T")


def bad_ips_injector(
    rng: np.random.Generator,
    probability: float,
    bad_value: float = 1e9,
) -> Callable[[IntervalMetrics], IntervalMetrics]:
    """Corrupt a fraction of IPS readings with an out-of-range value.

    Reproduces Figure 2's invalid-data experiment: "randomly returning
    out-of-range IPS readings to the agent a fixed percentage of the
    time".  The returned injector plugs into
    :meth:`repro.node.counters.CounterReader.add_injector`.

    Args:
        rng: random stream dedicated to this injector.
        probability: chance each reading is corrupted.
        bad_value: the out-of-range IPS to substitute (default far above
            any feasible ``max_freq · max_IPC`` bound, so range checks
            catch it — the *interesting* case is agents without checks).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(metrics: IntervalMetrics) -> IntervalMetrics:
        if rng.random() < probability:
            return replace(metrics, ips=bad_value)
        return metrics

    return inject


def bad_usage_injector(
    rng: np.random.Generator,
    probability: float,
    scale: float = 0.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Corrupt CPU-usage sample arrays (SmartHarvest's model input).

    With probability ``probability`` the whole sample window is scaled by
    ``scale`` (default 0: reads as "VM idle"), biasing an unguarded model
    toward underprediction.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(samples: np.ndarray) -> np.ndarray:
        if rng.random() < probability:
            return samples * scale
        return samples

    return inject


def stuck_usage_injector(
    rng: np.random.Generator,
    probability: float,
    sentinel: float = -1.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Misconfigured usage counter: reads return an error sentinel.

    A stuck or misconfigured hypervisor counter returns its error value
    instead of real samples ("telemetry collection can fail in a variety
    of ways — e.g., misconfigured drivers", §3.2).  The sentinel is out
    of physical range, so SmartHarvest's range check ``ValidateData``
    discards it; an unguarded agent instead learns "the primary needs
    zero cores" and harvests the node hollow (Figure 6 left).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(samples: np.ndarray) -> np.ndarray:
        if rng.random() < probability:
            return np.full_like(samples, sentinel)
        return samples

    return inject


class StaleReadInjector(Generic[T]):
    """Telemetry dropout: a fraction of reads return the *last* value.

    Models a wedged telemetry daemon (or a dropped refresh in a polled
    metrics pipeline) that keeps serving its cached reading: with
    probability ``probability`` the consumer receives the most recent
    genuine value again instead of a fresh one.  Works on any read type
    — :class:`~repro.node.counters.IntervalMetrics` at the counter
    boundary, usage-sample arrays at the model boundary (arrays are
    defensively copied so later buffer reuse cannot mutate the stale
    snapshot).

    The first read always passes through (there is nothing stale to
    serve yet); :attr:`stale_reads` counts how many reads were served
    stale.
    """

    def __init__(
        self, rng: np.random.Generator, probability: float
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.rng = rng
        self.probability = probability
        self.stale_reads = 0
        self._last: Optional[T] = None

    def __call__(self, value: T) -> T:
        if self._last is not None and self.rng.random() < self.probability:
            self.stale_reads += 1
            return self._last
        self._last = (
            value.copy() if isinstance(value, np.ndarray) else value
        )
        return value


def dropped_batch_injector(
    rng: np.random.Generator,
    probability: float,
) -> Callable[[List], List]:
    """Scan-batch telemetry dropout (SmartMemory's collection boundary).

    With probability ``probability`` an entire scan batch is lost — every
    result in it comes back flagged as an error, exactly what a telemetry
    transport dropping a poll cycle looks like to the agent.  SmartMemory's
    ``validate_data`` then discards the batch (all-errored), starving the
    epoch of data until the default-prediction safeguard engages.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def inject(batch: List) -> List:
        if batch and rng.random() < probability:
            return [replace(result, error=True) for result in batch]
        return batch

    return inject


class ModelBreaker:
    """Switchable model-output override (the "broken model" failures).

    The experiment harness arms the breaker at a chosen simulated time;
    while armed, the agent's model produces ``broken_value`` regardless of
    its learned state.  SmartOverclock's breaker forces the maximum
    frequency (Figure 3); SmartHarvest's forces a prediction of zero
    cores needed (Figure 6 middle).
    """

    def __init__(self, broken_value) -> None:
        self.broken_value = broken_value
        self._armed = False
        self.activations = 0

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        """Start overriding model outputs."""
        self._armed = True

    def disarm(self) -> None:
        """Stop overriding; the real model output flows again."""
        self._armed = False

    def apply(self, value):
        """Return the (possibly overridden) model output."""
        if self._armed:
            self.activations += 1
            return self.broken_value
        return value


class DelayInjector:
    """Scheduling-delay plan for an agent loop.

    Holds ``(at_us, duration_us)`` windows.  The SOL runtime asks
    :meth:`pending_delay` between operations; a hit stalls the loop for
    the window's duration, reproducing host-side throttling ("agents will
    be throttled for arbitrary periods of time", §3.2).  One-shot windows
    can also be armed dynamically by experiment triggers (e.g. Figure 4
    injects a 30 s delay exactly when the workload finishes a batch).
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[int, int]] = []
        self._pending: Optional[int] = None
        self.triggered: List[Tuple[int, int]] = []

    def add_window(self, at_us: int, duration_us: int) -> None:
        """Schedule a delay of ``duration_us`` at absolute time ``at_us``."""
        if at_us < 0 or duration_us <= 0:
            raise ValueError("need at_us >= 0 and duration_us > 0")
        self._windows.append((at_us, duration_us))
        self._windows.sort()

    def trigger_now(self, duration_us: int) -> None:
        """Arm a one-shot delay to be consumed at the next check."""
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        self._pending = duration_us

    def pending_delay(self, now_us: int) -> int:
        """Delay (µs) the loop must stall for at ``now_us``; 0 if none.

        Consumes at most one window/trigger per call.
        """
        if self._pending is not None:
            duration, self._pending = self._pending, None
            self.triggered.append((now_us, duration))
            return duration
        while self._windows and self._windows[0][0] <= now_us:
            _at, duration = self._windows.pop(0)
            self.triggered.append((now_us, duration))
            return duration
        return 0
