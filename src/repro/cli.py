"""The ``python -m repro`` command line.

Subcommands::

    repro list                      # artifacts and agent kinds
    repro run fig1 [fig2 ...]       # named table/figure reproductions
    repro fleet --nodes 64 --agent overclock --workers 8
    repro reproduce-all [--parallel] [--granularity series|artifact]
                        [--quick] [--only ARTIFACT ...]
                        [--no-cache] [--cache-dir PATH]
                        [--emit-experiments PATH]
    repro sweep run SPEC.toml [--workers 8] [--no-cache]
    repro sweep show SPEC.toml      # expanded grid, nothing executed
    repro sweep list [DIR]          # committed campaign specs
    repro bench [--suite kernel|ml|workloads|all] [--quick]
                [--output PATH] [--check-against PATH]
    repro bench --compare NEW.json BASELINE.json

``fleet`` prints a fleet-wide report ending in a content digest; runs
with the same seed agree on the digest regardless of ``--workers``,
which is how CI smoke-checks the sharding (DESIGN.md §5).

``reproduce-all`` is incremental by default: work units are looked up
in a content-addressed result cache (``.repro-cache``, or
``$REPRO_CACHE_DIR`` / ``--cache-dir``) keyed over artifact, series,
scale, resolved experiment arguments, and a code-version salt, so a
warm re-run executes zero units and prints bit-identical digests — CI
smoke-checks exactly that (DESIGN.md §8).  ``--no-cache`` recomputes
everything.

``sweep run`` executes a declarative robustness campaign
(``repro.sweep``, DESIGN.md §9) through the same cache (``sweep::``
namespace) and warm pool: a warm re-run executes zero cells and
reproduces the campaign digest bit-identically, for any ``--workers``.

Every pooled path dispatches through the supervised execution substrate
(``repro.resilience``, DESIGN.md §11): worker crashes are retried with
deterministic backoff, repeat offenders are quarantined as explicit
holes, and ``--max-retries`` / ``--unit-timeout`` tune the policy.
``repro chaos`` turns the substrate on itself: it runs a target twice —
fault-free, then under an injected worker-fault plan — and verifies
that the faulted run either reproduces the fault-free digests
bit-identically or reports the exact quarantined units.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from typing import List, Optional

from repro.cache import ResultCache, default_cache_dir
from repro.conformance.cli import add_conformance_parser, cmd_conformance
from repro.experiments.common import experiment_digest
from repro.experiments.driver import (
    ARTIFACTS,
    ArtifactRun,
    FleetDriver,
    reproduce_all,
    runs_digest,
)
from repro.fleet.config import (
    AGENT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FleetConfig,
)
from repro.journal.cli import add_runs_parser, cmd_runs, journal_status_line
from repro.journal.lease import LeaseHeldError
from repro.obs import run_tracing
from repro.obs.cli import add_trace_parser, cmd_trace
from repro.serve.cli import add_serve_parser, cmd_serve

__all__ = ["main"]


class _Terminated(Exception):
    """SIGTERM arrived; unwind like a Ctrl-C, exit 143."""


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """``--max-retries`` / ``--unit-timeout`` for supervised dispatch."""
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-dispatches per failed/crashed/timed-out work unit "
             "before it is quarantined (default: %(default)s)",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt deadline; a unit running past it is presumed "
             "hung, its worker is killed, and the attempt counts as a "
             "failure (default: no deadline)",
    )


def _add_journal_flags(parser: argparse.ArgumentParser) -> None:
    """``--resume`` / ``--no-journal`` for the crash-consistent ledger."""
    parser.add_argument(
        "--resume", action="store_true",
        help="resume this run's journal instead of starting fresh: "
             "journaled units replay, only un-journaled units execute "
             "(see 'repro runs list' for resumable runs)",
    )
    parser.add_argument(
        "--no-journal", dest="journal", action="store_false", default=True,
        help="disable the crash-consistent run journal (the run is not "
             "resumable after an orchestrator death)",
    )
    parser.add_argument(
        "--no-trace", dest="trace", action="store_false", default=True,
        help="disable the telemetry sidecar (trace.jsonl/metrics.json "
             "next to the run journal); results and digests are "
             "bit-identical either way (DESIGN.md §14)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOL reproduction driver (Wang et al., ASPLOS 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artifacts")

    run = sub.add_parser("run", help="reproduce named tables/figures")
    run.add_argument(
        "artifacts", nargs="+", choices=ARTIFACTS, metavar="ARTIFACT",
        help=f"one of: {', '.join(ARTIFACTS)}",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="shortened (less converged) durations",
    )

    fleet = sub.add_parser(
        "fleet", help="simulate a multi-node fleet of SOL agents"
    )
    fleet.add_argument("--nodes", type=int, default=16)
    fleet.add_argument(
        "--agent", default="overclock",
        choices=AGENT_KINDS + ("mixed",),
    )
    fleet.add_argument("--workers", type=int, default=1)
    fleet.add_argument(
        "--seconds", type=int, default=120,
        help="simulated seconds per node",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--rack-size", type=int, default=8,
        help="nodes per rack (fault blast radius)",
    )
    fleet.add_argument(
        "--fault-racks", default=None, metavar="R0,R1,...",
        help="inject a correlated invalid-data burst into these racks",
    )
    fleet.add_argument("--fault-start", type=int, default=30,
                       help="burst onset (simulated seconds)")
    fleet.add_argument("--fault-duration", type=int, default=60,
                       help="burst length (simulated seconds)")
    fleet.add_argument(
        "--fault-probability", type=float, default=0.9,
        help="fault intensity inside the burst: per-read corruption/"
             "staleness chance, or per-node crash chance for "
             "crash_restart",
    )
    fleet.add_argument(
        "--fault-kind", default="bad_data", choices=FAULT_KINDS,
        help="burst kind: invalid values, telemetry dropout/stale "
             "reads, or agent crash-restart (default: %(default)s)",
    )
    _add_resilience_flags(fleet)
    _add_journal_flags(fleet)

    rall = sub.add_parser(
        "reproduce-all", help="regenerate every table and figure"
    )
    rall.add_argument("--parallel", action="store_true",
                      help="shard the pass across worker processes")
    rall.add_argument("--workers", type=int, default=None)
    rall.add_argument(
        "--granularity", choices=("series", "artifact"), default="series",
        help="parallel work-unit size: independent (artifact, series) "
             "scenarios (default; scales past the artifact count) or "
             "whole artifacts (the pre-sharding behavior)",
    )
    rall.add_argument("--quick", action="store_true")
    rall.add_argument(
        "--scale", type=float, default=None, metavar="FRACTION",
        help="explicit duration scale (overrides --quick; 1.0 is the "
             "full pass, 0.33 is --quick)",
    )
    rall.add_argument(
        "--only", nargs="+", choices=ARTIFACTS, metavar="ARTIFACT",
        default=None,
        help="restrict the pass to these artifacts (canonical order kept)",
    )
    rall.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse cached unit results (the default)",
    )
    rall.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="recompute every unit, ignoring the result cache",
    )
    rall.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro-cache)",
    )
    rall.add_argument(
        "--emit-experiments", metavar="PATH", default=None,
        help="also write the EXPERIMENTS.md measured-output tables",
    )
    _add_resilience_flags(rall)
    _add_journal_flags(rall)

    sweep = sub.add_parser(
        "sweep",
        help="declarative robustness campaigns with a safety scoreboard",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="execute a campaign spec and print its scoreboard"
    )
    sweep_run.add_argument(
        "spec", metavar="SPEC",
        help="path to a campaign spec (.toml), e.g. "
             "examples/campaigns/smoke.toml",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for cache-miss cells (default: 1)",
    )
    sweep_run.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse cached cell results (the default)",
    )
    sweep_run.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="recompute every cell, ignoring the result cache",
    )
    sweep_run.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro-cache)",
    )
    _add_resilience_flags(sweep_run)
    _add_journal_flags(sweep_run)
    sweep_show = sweep_sub.add_parser(
        "show", help="expand a campaign spec without executing anything"
    )
    sweep_show.add_argument("spec", metavar="SPEC")
    sweep_list = sweep_sub.add_parser(
        "list", help="list committed campaign specs"
    )
    sweep_list.add_argument(
        "directory", nargs="?", default="examples/campaigns",
        help="directory to scan for .toml specs (default: %(default)s)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="prove resilience: run a target fault-free and under an "
             "injected worker-fault plan, then compare digests and "
             "quarantine reports",
    )
    chaos.add_argument(
        "target", choices=("fleet", "reproduce", "sweep", "serve"),
        help="which pooled pipeline to stress ('serve' drives the "
             "control-plane kill-server harness)",
    )
    chaos.add_argument(
        "--fault", default="crash",
        choices=("crash", "hang", "corrupt_cache", "slow"),
        help="injected fault kind (default: %(default)s); corrupt_cache "
             "targets the result cache and needs a cached target "
             "(reproduce or sweep)",
    )
    chaos.add_argument(
        "--probability", type=float, default=0.4,
        help="per-unit fault selection probability, hashed from "
             "--chaos-seed (default: %(default)s)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="fault-selection seed; the faulted subset is a pure "
             "function of (seed, unit id) (default: %(default)s)",
    )
    chaos.add_argument(
        "--poison", action="append", default=None, metavar="UNIT_ID",
        help="unit id that faults on every attempt (repeatable); the "
             "run must quarantine exactly these units",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument(
        "--nodes", type=int, default=16, help="fleet target: node count"
    )
    chaos.add_argument(
        "--agent", default="overclock", choices=AGENT_KINDS + ("mixed",),
        help="fleet target: agent kind (default: %(default)s)",
    )
    chaos.add_argument(
        "--seconds", type=int, default=60,
        help="fleet target: simulated seconds per node",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="fleet target: fleet seed"
    )
    chaos.add_argument(
        "--scale", type=float, default=0.1,
        help="reproduce target: duration scale (default: %(default)s)",
    )
    chaos.add_argument(
        "--only", nargs="+", choices=ARTIFACTS, metavar="ARTIFACT",
        default=None, help="reproduce target: restrict the artifact set",
    )
    chaos.add_argument(
        "--spec", metavar="SPEC", default=None,
        help="sweep target: campaign spec path (required for sweep)",
    )
    chaos.add_argument(
        "--kill-parent", type=int, default=None, metavar="N",
        help="crash-consistency mode (DESIGN.md §12): run the target in "
             "a subprocess, SIGKILL the orchestrator after its Nth "
             "journal record, resume the run, and fail unless the "
             "resume re-executes zero journaled units and seals with a "
             "digest bit-identical to an uninterrupted run",
    )
    chaos.add_argument(
        "--kill-server", type=int, default=None, metavar="N",
        help="serve target (DESIGN.md §13): start a real 'repro serve' "
             "server, submit --job over its socket, SIGKILL the server "
             "after its Nth journal record, and fail unless a restarted "
             "server adopts the run, re-executes zero journaled units, "
             "and seals with the uninterrupted digest",
    )
    chaos.add_argument(
        "--job", choices=("fleet", "reproduce", "sweep"),
        default="fleet",
        help="serve target: which job kind the kill-server harness "
             "submits (default: %(default)s)",
    )
    _add_resilience_flags(chaos)

    add_serve_parser(sub)

    add_runs_parser(sub)

    add_trace_parser(sub)

    add_conformance_parser(sub)

    bench = sub.add_parser(
        "bench",
        help="microbenchmarks + end-to-end timings vs the frozen "
             "pre-optimization implementations",
    )
    bench.add_argument(
        "--suite", choices=("kernel", "ml", "workloads", "all"),
        default="kernel",
        help="kernel: event kernel vs the frozen seed kernel; "
             "ml: learning-epoch hot path vs the frozen per-class path; "
             "workloads: workload/substrate per-event loops vs the "
             "frozen pre-vectorization path; "
             "all: every suite in one invocation, merged into one "
             "report (default: %(default)s)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller microbenchmarks, skip the end-to-end section "
             "(speedup ratios stay comparable)",
    )
    bench.add_argument(
        "--output", metavar="PATH", default=None,
        help="where to write the JSON report "
             "(default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--check-against", metavar="PATH", default=None,
        help="compare speedups to a committed baseline report and exit "
             "non-zero on regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional speedup drop vs the baseline "
             "(default: %(default)s)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats per microbenchmark (default: %(default)s)",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("NEW", "BASELINE"), default=None,
        help="compare two existing bench reports instead of running "
             "anything: print a per-benchmark ratio table and exit "
             "non-zero past the --max-regression gate",
    )
    bench.add_argument(
        "--gate", choices=("each", "geomean"), default="each",
        help="regression-gate granularity: 'each' floors every shared "
             "benchmark, 'geomean' floors only the suite geomean ratio "
             "(use for tight thresholds where per-benchmark noise "
             "dominates; default: %(default)s)",
    )
    bench.add_argument(
        "--trace", action="store_true",
        help="run the suite with an active in-memory tracer (no "
             "sidecar); CI's obs-smoke job compares --trace vs plain "
             "reports to gate tracing overhead",
    )
    return parser


def _cmd_list() -> int:
    print("artifacts:")
    for name in ARTIFACTS:
        print(f"  {name}")
    print(f"fleet agent kinds: {', '.join(AGENT_KINDS + ('mixed',))}")
    return 0


def _print_run(run: ArtifactRun) -> None:
    print(run.result.render())
    # The digest line is what the CI cache smoke diffs between a cold
    # and a warm pass — cached assembly must be bit-identical.
    print(f"[digest {run.result.name} {experiment_digest(run.result)}]")
    print(f"[{run.wall_seconds:.1f}s wall]\n", flush=True)


def _cmd_run(args: argparse.Namespace) -> int:
    scale = 0.33 if args.quick else 1.0
    reproduce_all(scale=scale, only=args.artifacts, on_result=_print_run)
    return 0


def _parse_fault(args: argparse.Namespace) -> Optional[FaultPlan]:
    if args.fault_racks is None:
        return None
    racks = tuple(int(r) for r in args.fault_racks.split(",") if r != "")
    if not racks:
        raise SystemExit("--fault-racks needs at least one rack index")
    return FaultPlan(
        racks=racks,
        start_s=args.fault_start,
        duration_s=args.fault_duration,
        probability=args.fault_probability,
        kind=args.fault_kind,
    )


def _retry_policy(args: argparse.Namespace):
    from repro.resilience import RetryPolicy

    return RetryPolicy(
        max_retries=args.max_retries, unit_timeout_s=args.unit_timeout
    )


def _quarantine_log(cache: Optional[ResultCache]):
    """A quarantine log next to the cache's corrupt-object quarantine
    (memory-only when no cache directory is in play)."""
    from repro.resilience import QuarantineLog

    if cache is None:
        return QuarantineLog()
    return QuarantineLog(directory=cache.quarantine_dir)


def _print_quarantine(quarantine, only_units=None) -> None:
    """Summarize this run's quarantined units (the persisted log keeps
    records across runs; ``only_units`` restricts to this run's holes)."""
    records = quarantine.load()
    if only_units is not None:
        records = [r for r in records if r.unit_id in set(only_units)]
    if not records:
        return
    units = ", ".join(sorted(r.unit_id for r in records))
    where = f" (log: {quarantine.path})" if quarantine.path else ""
    print(f"[quarantine: {len(records)} unit(s) — {units}{where}]")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.resilience import QuarantineLog

    config = FleetConfig(
        n_nodes=args.nodes,
        agent=args.agent,
        seed=args.seed,
        duration_s=args.seconds,
        rack_size=args.rack_size,
        fault=_parse_fault(args),
    )
    quarantine = QuarantineLog()
    journal = None
    if args.journal:
        from repro.journal.pipelines import open_fleet_journal

        journal = open_fleet_journal(
            default_cache_dir(), config, args.workers, resume=args.resume
        )
    try:
        driver = FleetDriver(
            config,
            workers=args.workers,
            resilience=_retry_policy(args),
            quarantine=quarantine,
            journal=journal,
        )
        started = time.perf_counter()
        with run_tracing(
            journal, enabled_=args.trace,
            kind="fleet", nodes=args.nodes, workers=args.workers,
        ):
            aggregate = driver.run()
        wall = time.perf_counter() - started
        print(aggregate.render())
        # driver.workers, not args.workers: the pool is capped at n_nodes.
        print(f"[{driver.workers} worker(s), {wall:.1f}s wall]")
        if journal is not None:
            print(journal_status_line(journal))
        _print_quarantine(quarantine)
    finally:
        if journal is not None:
            journal.close()
    return 0


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    if args.emit_experiments:
        # Fail before the (minutes-long) run, not after it.
        directory = os.path.dirname(
            os.path.abspath(args.emit_experiments)
        )
        if not os.path.isdir(directory):
            raise SystemExit(
                f"repro: error: cannot write {args.emit_experiments}: "
                f"{directory} is not a directory"
            )
    if args.scale is not None:
        scale = args.scale
    else:
        scale = 0.33 if args.quick else 1.0
    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    quarantine = _quarantine_log(cache)
    journal = None
    if args.journal and args.granularity == "series":
        from repro.journal.pipelines import open_reproduce_journal

        journal = open_reproduce_journal(
            args.cache_dir or default_cache_dir(),
            args.only, scale, resume=args.resume,
        )
    elif args.resume:
        raise SystemExit(
            "repro: error: --resume needs the journal "
            "(series granularity, no --no-journal)"
        )
    started = time.perf_counter()
    try:
        with run_tracing(
            journal, enabled_=args.trace,
            kind="reproduce", scale=scale, workers=args.workers,
        ):
            runs = reproduce_all(
                parallel=args.parallel,
                workers=args.workers,
                scale=scale,
                only=args.only,
                on_result=_print_run,
                granularity=args.granularity,
                cache=cache,
                resilience=_retry_policy(args),
                quarantine=quarantine,
                journal=journal,
            )
        wall = time.perf_counter() - started
        mode = (
            f"parallel/{args.granularity}" if args.parallel else "serial"
        )
        partial = sum(1 for run in runs if run.partial)
        summary = f"[reproduce-all: {len(runs)} artifacts"
        if partial:
            summary += f" ({partial} PARTIAL)"
        print(f"{summary}, {mode}, {wall:.1f}s wall total]")
        if cache is not None:
            print(f"[cache: {cache.stats.render()} dir={cache.directory}]")
        if journal is not None:
            print(journal_status_line(journal))
        _print_quarantine(
            quarantine, only_units=[h for run in runs for h in run.holes]
        )
    finally:
        if journal is not None:
            journal.close()
    if args.emit_experiments:
        text = render_experiments_markdown(runs, quick=args.quick)
        with open(args.emit_experiments, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[wrote {args.emit_experiments}]")
    return 0


def render_experiments_markdown(
    runs: List[ArtifactRun], quick: bool = False
) -> str:
    """EXPERIMENTS.md-style measured-output tables for ``runs``."""
    lines = [
        "# Measured outputs",
        "",
        "Generated by `repro reproduce-all --emit-experiments`"
        + (" (--quick pass)." if quick else " (full pass)."),
        "",
    ]
    for run in runs:
        result = run.result
        lines.append(f"## {result.name}: {result.title}")
        lines.append("")
        lines.append("| " + " | ".join(result.columns) + " |")
        lines.append("|" + "|".join("---" for _ in result.columns) + "|")
        for row in result.rows:
            lines.append(
                "| "
                + " | ".join(
                    result.format_cell(row.get(col))
                    for col in result.columns
                )
                + " |"
            )
        for note in result.notes:
            lines.append(f"\n*{note}*")
        lines.append(f"\n`{run.wall_seconds:.1f}s wall`")
        lines.append("")
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, load_spec

    if args.sweep_command == "list":
        specs = []
        try:
            names = sorted(os.listdir(args.directory))
        except OSError as error:
            raise SystemExit(f"repro: error: {error}")
        for name in names:
            if not name.endswith(".toml"):
                continue
            path = os.path.join(args.directory, name)
            try:
                spec = load_spec(path)
                cells = len(spec.expand())
            except (OSError, ValueError) as error:
                print(f"  {path}: INVALID ({error})")
                continue
            specs.append((path, spec, cells))
        if not specs:
            print(f"no campaign specs (*.toml) under {args.directory}")
            return 0
        print("campaigns:")
        for path, spec, cells in specs:
            fault_kinds = ",".join(
                sorted({axis.kind for axis in spec.faults})
            ) or "none"
            print(
                f"  {path}: {spec.name} — {cells} cells "
                f"({len(spec.agents)} agents × {len(spec.scales)} scales "
                f"× {len(spec.seeds)} seeds; faults: {fault_kinds})"
            )
        return 0

    try:
        spec = load_spec(args.spec)
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {args.spec}: {error}")

    if args.sweep_command == "show":
        units = spec.expand()
        print(f"== campaign: {spec.name} — {len(units)} cells ==")
        for unit in units:
            print(f"  {unit.unit_id()}")
        return 0

    assert args.sweep_command == "run"
    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    quarantine = _quarantine_log(cache)
    journal = None
    if args.journal:
        from repro.journal.pipelines import open_sweep_journal

        journal = open_sweep_journal(
            args.cache_dir or default_cache_dir(), spec, resume=args.resume
        )
    try:
        runner = SweepRunner(
            spec,
            workers=args.workers,
            cache=cache,
            resilience=_retry_policy(args),
            quarantine=quarantine,
            journal=journal,
        )
        with run_tracing(
            journal, enabled_=args.trace,
            kind="sweep", campaign=spec.name, workers=args.workers,
        ):
            report = runner.run()
        print(report.render())
        print(
            f"[sweep: {len(report.records)} cells, "
            f"{report.executed} executed, "
            f"{report.from_cache} from cache, "
            f"{report.wall_seconds:.1f}s wall]"
        )
        if cache is not None:
            print(f"[cache: {cache.stats.render()} dir={cache.directory}]")
        if journal is not None:
            print(journal_status_line(journal))
        _print_quarantine(quarantine, only_units=report.holes)
    finally:
        if journal is not None:
            journal.close()
    return 0


def _chaos_fleet(args, plan, policy, quarantine) -> List[str]:
    config = FleetConfig(
        n_nodes=args.nodes, agent=args.agent, seed=args.seed,
        duration_s=args.seconds,
    )
    baseline = FleetDriver(config, workers=args.workers).run()
    print(f"[baseline: digest {baseline.digest()}]")
    chaotic = FleetDriver(
        config, workers=args.workers,
        resilience=policy, quarantine=quarantine, chaos=plan,
    ).run()
    suffix = " PARTIAL" if chaotic.partial else ""
    print(f"[chaos:    digest {chaotic.digest()}{suffix}]")
    if chaotic.partial:
        # Holes are verified against the poison set by the caller; a
        # partial aggregate legitimately diverges from the baseline.
        return []
    if chaotic.digest() != baseline.digest():
        return ["fleet digest diverged under faults with nothing "
                "quarantined"]
    return []


def _chaos_reproduce(args, plan, policy, quarantine) -> List[str]:
    def run_all(cache=None, chaos=None):
        return reproduce_all(
            parallel=True,
            workers=args.workers,
            scale=args.scale,
            only=args.only,
            granularity="series",
            cache=cache,
            resilience=policy,
            quarantine=quarantine if chaos is not None or cache else None,
            chaos=chaos,
        )

    def digests(runs):
        return {
            run.result.name: experiment_digest(run.result) for run in runs
        }

    if plan.kind == "corrupt_cache":
        return _chaos_corrupt_cache(
            plan,
            lambda cache: digests(run_all(cache=cache)),
        )

    base = digests(run_all())
    print(f"[baseline: {len(base)} artifact digest(s)]")
    failures: List[str] = []
    for run in run_all(chaos=plan):
        name = run.result.name
        if run.partial:
            print(f"[chaos: {name} PARTIAL — "
                  f"holes: {', '.join(run.holes)}]")
            continue
        if experiment_digest(run.result) == base.get(name):
            print(f"[chaos: {name} digest matches baseline]")
        else:
            print(f"[chaos: {name} digest DIVERGED]")
            failures.append(f"{name}: digest diverged under faults")
    return failures


def _chaos_sweep(args, plan, policy, quarantine) -> List[str]:
    from repro.sweep import SweepRunner, load_spec

    try:
        spec = load_spec(args.spec)
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {args.spec}: {error}")

    def run_campaign(cache=None, chaos=None):
        return SweepRunner(
            spec,
            workers=args.workers,
            cache=cache,
            resilience=policy,
            quarantine=quarantine if chaos is not None or cache else None,
            chaos=chaos,
        ).run()

    if plan.kind == "corrupt_cache":
        return _chaos_corrupt_cache(
            plan,
            lambda cache: {"campaign": run_campaign(cache=cache).digest()},
        )

    baseline = run_campaign()
    print(f"[baseline: digest {baseline.digest()}]")
    report = run_campaign(chaos=plan)
    suffix = " PARTIAL" if report.partial else ""
    print(f"[chaos:    digest {report.digest()}{suffix}]")
    if report.partial:
        return []
    if report.digest() != baseline.digest():
        return ["campaign digest diverged under faults with nothing "
                "quarantined"]
    return []


def _chaos_corrupt_cache(plan, run_with_cache) -> List[str]:
    """Cold run through a write-corrupting cache, then a warm rerun
    through a plain cache on the same directory: every corrupt object
    must be quarantined (never trusted) and the warm digests must still
    match the cold ones bit-for-bit.
    """
    import shutil
    import tempfile

    from repro.resilience import ChaosCache

    tmp = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    try:
        cold_cache = ChaosCache(directory=tmp, plan=plan)
        cold = run_with_cache(cold_cache)
        corrupted = len(cold_cache.corrupted_keys)
        print(f"[chaos: corrupted {corrupted} cache object(s) on disk]")
        warm_cache = ResultCache(tmp)
        warm = run_with_cache(warm_cache)
        print(f"[chaos: warm rerun quarantined "
              f"{warm_cache.stats.corrupt} corrupt object(s); "
              f"{warm_cache.stats.render()}]")
        failures: List[str] = []
        if corrupted == 0:
            print("[chaos: WARNING — no cache writes selected; raise "
                  "--probability for a meaningful run]")
        if warm_cache.stats.corrupt != corrupted:
            failures.append(
                f"corrupted {corrupted} object(s) but the warm rerun "
                f"quarantined {warm_cache.stats.corrupt}"
            )
        for name in sorted(cold):
            if warm.get(name) != cold[name]:
                failures.append(
                    f"{name}: warm digest diverged after cache corruption"
                )
        if not failures:
            print(f"[chaos: {len(cold)} digest(s) reproduced through "
                  f"corruption + quarantine]")
        return failures
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _kill_parent_command(args: argparse.Namespace) -> List[str]:
    """The journaled CLI invocation the kill-parent harness interrupts."""
    if args.target == "fleet":
        return [
            "fleet", "--nodes", str(args.nodes), "--agent", args.agent,
            "--seconds", str(args.seconds), "--seed", str(args.seed),
            "--workers", str(args.workers),
        ]
    if args.target == "reproduce":
        command = [
            "reproduce-all", "--parallel",
            "--workers", str(args.workers), "--scale", str(args.scale),
        ]
        if args.only:
            command += ["--only", *args.only]
        return command
    return ["sweep", "run", args.spec, "--workers", str(args.workers)]


def _kill_parent_baseline(args: argparse.Namespace) -> str:
    """The uninterrupted run's digest (no journal, no cache)."""
    if args.target == "fleet":
        config = FleetConfig(
            n_nodes=args.nodes, agent=args.agent, seed=args.seed,
            duration_s=args.seconds,
        )
        return FleetDriver(config, workers=args.workers).run().digest()
    if args.target == "reproduce":
        runs = reproduce_all(
            scale=args.scale, only=args.only, granularity="series"
        )
        return runs_digest(runs)
    from repro.sweep import SweepRunner, load_spec

    return SweepRunner(load_spec(args.spec)).run().digest()


def _kill_parent_resume(args: argparse.Namespace, root: str, run_id: str):
    """Resume the interrupted run in-process; returns its journal."""
    from repro.journal.pipelines import (
        fleet_config_from_payload,
        open_fleet_journal,
        open_reproduce_journal,
        open_sweep_journal,
        reproduce_selection_from_payload,
        spec_from_payload,
    )
    from repro.journal.registry import inspect_run

    info = inspect_run(root, run_id)
    assert info is not None
    cache = ResultCache(root)
    if info.kind == "fleet":
        config = fleet_config_from_payload(info.manifest["config"])
        with open_fleet_journal(
            root, config, args.workers, resume=True, run_id=run_id
        ) as journal:
            # A resumed run appends a second process segment to the
            # sidecar the killed orchestrator started — the merged
            # trace carries both (DESIGN.md §14).
            with run_tracing(journal, kind="fleet", resumed=True):
                FleetDriver(
                    config, workers=args.workers, journal=journal
                ).run()
        return journal
    if info.kind == "reproduce":
        names, scale = reproduce_selection_from_payload(
            info.manifest["config"]
        )
        with open_reproduce_journal(
            root, names, scale, resume=True, run_id=run_id
        ) as journal:
            with run_tracing(journal, kind="reproduce", resumed=True):
                reproduce_all(
                    parallel=args.workers > 1, workers=args.workers,
                    scale=scale, only=names, cache=cache, journal=journal,
                )
        return journal
    spec = spec_from_payload(info.manifest["config"])
    from repro.sweep import SweepRunner

    with open_sweep_journal(
        root, spec, resume=True, run_id=run_id
    ) as journal:
        with run_tracing(journal, kind="sweep", resumed=True):
            SweepRunner(
                spec, workers=args.workers, cache=cache, journal=journal
            ).run()
    return journal


def _chaos_kill_parent(args: argparse.Namespace) -> int:
    """Crash-consistency proof (DESIGN.md §12): SIGKILL the orchestrator
    mid-run in a subprocess, resume from the journal, and require (a)
    zero journaled units re-executed and (b) a sealed digest that is
    bit-identical to an uninterrupted run's.
    """
    import shutil
    import subprocess
    import tempfile

    from repro.journal.log import KILL_AFTER_ENV
    from repro.journal.registry import list_runs

    print(f"== chaos {args.target}: kill-parent after record "
          f"#{args.kill_parent} ==")
    baseline = _kill_parent_baseline(args)
    print(f"[baseline: digest {baseline}]")
    root = tempfile.mkdtemp(prefix="repro-kill-parent-")
    failures: List[str] = []
    try:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = root
        env[KILL_AFTER_ENV] = str(args.kill_parent)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        command = [sys.executable, "-m", "repro"]
        command += _kill_parent_command(args)
        # Output goes to files, not pipes: the orchestrator's pool
        # workers inherit its stdio, and a captured pipe would make the
        # harness wait on the orphans instead of just the SIGKILLed
        # orchestrator itself.
        out_path = os.path.join(root, "orchestrator.out")
        err_path = os.path.join(root, "orchestrator.err")
        with open(out_path, "wb") as out, open(err_path, "wb") as err:
            proc = subprocess.run(
                command, env=env, stdout=out, stderr=err, timeout=600,
            )
        if proc.returncode == 0:
            failures.append(
                f"run completed before record #{args.kill_parent}; "
                f"lower --kill-parent"
            )
            return _kill_parent_verdict(failures)
        if proc.returncode != -signal.SIGKILL:
            with open(err_path, "r", encoding="utf-8") as handle:
                tail = handle.read().strip().splitlines()[-5:]
            failures.append(
                f"orchestrator exited {proc.returncode}, expected "
                f"SIGKILL: {' | '.join(tail)}"
            )
            return _kill_parent_verdict(failures)
        runs = list_runs(root)
        if len(runs) != 1:
            failures.append(
                f"expected exactly one journaled run, found {len(runs)}"
            )
            return _kill_parent_verdict(failures)
        info = runs[0]
        print(f"[killed: run {info.run_id} — {info.done_units}/"
              f"{info.total_units} units journaled, {info.status}]")
        if info.status == "sealed":
            failures.append("run sealed before the kill landed; "
                            "lower --kill-parent")
            return _kill_parent_verdict(failures)
        journal = _kill_parent_resume(args, root, info.run_id)
        stats = journal.stats
        re_executed = info.done_units - stats.replayed
        print(
            f"[resumed: units={info.total_units} "
            f"journaled={info.done_units} replayed={stats.replayed} "
            f"executed={stats.executed} cached={stats.cached} "
            f"re-executed={max(re_executed, 0)}]"
        )
        if re_executed > 0:
            failures.append(
                f"resume re-executed {re_executed} journaled unit(s)"
            )
        if not journal.sealed:
            failures.append("resumed run did not seal")
        elif journal.sealed_digest != baseline:
            failures.append(
                f"resumed digest {journal.sealed_digest} != "
                f"uninterrupted digest {baseline}"
            )
        else:
            print(f"[resumed: digest {journal.sealed_digest} matches "
                  f"uninterrupted run]")
        # Observability across the kill (DESIGN.md §14): the killed
        # process wrote trace segment 0, the resume appended segment 1;
        # the merged sidecar must export a valid Chrome trace.
        from repro.obs.export import chrome_trace
        from repro.obs.sidecar import read_trace, segments, trace_path

        trace_records = read_trace(trace_path(info.directory))
        heads = segments(trace_records)
        if len(heads) < 2:
            failures.append(
                f"telemetry: expected >= 2 trace segments "
                f"(killed + resumed), found {len(heads)}"
            )
        else:
            events = chrome_trace(trace_records).get("traceEvents", [])
            if not events:
                failures.append(
                    "telemetry: merged trace exported no chrome events"
                )
            else:
                print(
                    f"[telemetry: trace.jsonl merged "
                    f"{len(heads)} process segments, "
                    f"{len(events)} chrome event(s)]"
                )
        return _kill_parent_verdict(failures)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _kill_parent_verdict(failures: List[str]) -> int:
    if failures:
        for failure in failures:
            print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
        return 1
    print("[chaos: OK — orchestrator death survived; resume replayed "
          "the journal and reproduced the digest]")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import ChaosPlan, QuarantineLog

    if args.target == "serve":
        if args.kill_server is None or args.kill_server < 1:
            raise SystemExit(
                "repro: error: chaos serve needs --kill-server N (N >= 1)"
            )
        if args.job == "sweep" and not args.spec:
            raise SystemExit(
                "repro: error: chaos serve --job sweep needs "
                "--spec SPEC.toml"
            )
        from repro.serve.harness import run_kill_server_harness

        return run_kill_server_harness(args)
    if args.kill_server is not None:
        raise SystemExit(
            "repro: error: --kill-server is only meaningful for the "
            "serve target"
        )
    if args.target == "sweep" and not args.spec:
        raise SystemExit(
            "repro: error: chaos sweep needs --spec SPEC.toml"
        )
    if args.kill_parent is not None:
        if args.kill_parent < 1:
            raise SystemExit(
                "repro: error: --kill-parent needs a record count >= 1"
            )
        return _chaos_kill_parent(args)
    if args.fault == "corrupt_cache":
        if args.target == "fleet":
            raise SystemExit(
                "repro: error: corrupt_cache needs a cached target "
                "(reproduce or sweep)"
            )
        if args.poison:
            raise SystemExit(
                "repro: error: --poison targets worker faults; "
                "corrupt_cache selects cache keys by hash"
            )
    if args.fault == "hang" and args.unit_timeout is None:
        # A hang without a deadline would stall the run by design.
        args.unit_timeout = 5.0
        print("[chaos: hang fault with no --unit-timeout; "
              "defaulting to 5s]")
    plan = ChaosPlan(
        kind=args.fault,
        probability=args.probability,
        seed=args.chaos_seed,
        poison_units=tuple(args.poison or ()),
    )
    policy = _retry_policy(args)
    quarantine = QuarantineLog()
    print(f"== chaos {args.target}: {plan.describe()} "
          f"retries={policy.max_retries} "
          f"timeout={policy.unit_timeout_s or 'none'} ==")
    if args.target == "fleet":
        failures = _chaos_fleet(args, plan, policy, quarantine)
    elif args.target == "reproduce":
        failures = _chaos_reproduce(args, plan, policy, quarantine)
    else:
        failures = _chaos_sweep(args, plan, policy, quarantine)
    records = sorted(quarantine.load(), key=lambda r: r.unit_id)
    for record in records:
        detail = f" — {record.error}" if record.error else ""
        print(f"[quarantined: {record.unit_id} ({record.kind} after "
              f"{record.attempts} attempts{detail})]")
    holes = sorted({record.unit_id for record in records})
    expected = sorted(set(plan.poison_units))
    if holes != expected:
        failures.append(
            f"quarantined units {holes} != poison set {expected}"
        )
    if failures:
        for failure in failures:
            print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
        return 1
    print(f"[chaos: OK — fault={plan.kind} degraded predictably "
          f"({len(holes)} hole(s), exact)]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf import (
        build_all_report,
        build_ml_report,
        build_report,
        build_workloads_report,
        compare_reports,
        compare_warnings,
        render_comparison,
        render_report,
        write_report,
    )

    if args.compare is not None:
        new_path, baseline_path = args.compare
        with open(new_path, "r", encoding="utf-8") as handle:
            new = json.load(handle)
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        print(render_comparison(new, baseline, new_path, baseline_path))
        # One-sided benchmarks (renamed/added/removed scenarios) warn
        # instead of failing: the comparison is partial, not wrong.
        for warning in compare_warnings(new, baseline):
            print(f"WARNING: {warning}", file=sys.stderr)
        problems = compare_reports(
            new, baseline, max_regression=args.max_regression,
            gate=args.gate,
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"[no regression vs {baseline_path} "
            f"(gate: {args.max_regression:.0%} per {args.gate})]"
        )
        return 0

    if args.repeats < 1:
        raise SystemExit("repro: error: --repeats must be >= 1")
    builder = {
        "kernel": build_report,
        "ml": build_ml_report,
        "workloads": build_workloads_report,
        "all": build_all_report,
    }[args.suite]
    if args.trace:
        # In-memory tracer, no sidecar: the point is to measure the
        # enabled-path overhead itself (CI's obs-smoke bench gate).
        from repro.obs import spans as obs_spans

        tracer = obs_spans.activate(obs_spans.Tracer())
        try:
            report = builder(quick=args.quick, repeats=args.repeats)
        finally:
            obs_spans.deactivate()
        print(f"[trace: {len(tracer.drain())} span record(s) buffered "
              f"during the suite]")
    else:
        report = builder(quick=args.quick, repeats=args.repeats)
    output = args.output or f"BENCH_{args.suite}.json"
    print(render_report(report))
    write_report(report, output)
    print(f"[wrote {output}]")
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        for warning in compare_warnings(report, baseline):
            print(f"WARNING: {warning}", file=sys.stderr)
        problems = compare_reports(
            report, baseline, max_regression=args.max_regression,
            gate=args.gate,
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"[no regression vs {args.check_against}]")
    return 0


def _raise_terminated(signum, frame) -> None:
    raise _Terminated()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    # SIGTERM gets the SIGINT treatment (DESIGN.md §12): unwind the
    # dispatch (supervised_map resets the pool on the way out), release
    # journal leases via the finally blocks, exit 143 = 128 + SIGTERM.
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:
        pass  # not the main thread (embedded use); keep default handling
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "reproduce-all":
            return _cmd_reproduce_all(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "conformance":
            return cmd_conformance(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "runs":
            return cmd_runs(args)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench(args)
    except LeaseHeldError as error:
        raise SystemExit(f"repro: error: {error}")
    except ValueError as error:
        # Config validation (bad --nodes/--workers/--fault-* values):
        # present it as a usage error, not a traceback.
        raise SystemExit(f"repro: error: {error}")
    except KeyboardInterrupt:
        # The supervised dispatcher already tore the worker pool down on
        # its way out (DESIGN.md §11); resetting here as well covers a
        # Ctrl-C that lands outside any dispatch.  130 = 128 + SIGINT.
        from repro.experiments.driver import shutdown_shared_pool

        shutdown_shared_pool()
        print("repro: interrupted", file=sys.stderr)
        return 130
    except _Terminated:
        from repro.experiments.driver import shutdown_shared_pool

        shutdown_shared_pool()
        print("repro: terminated", file=sys.stderr)
        return 143
    finally:
        if previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:
                pass
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
