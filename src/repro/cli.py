"""The ``python -m repro`` command line.

Subcommands::

    repro list                      # artifacts and agent kinds
    repro run fig1 [fig2 ...]       # named table/figure reproductions
    repro fleet --nodes 64 --agent overclock --workers 8
    repro reproduce-all [--parallel] [--granularity series|artifact]
                        [--quick] [--only ARTIFACT ...]
                        [--no-cache] [--cache-dir PATH]
                        [--emit-experiments PATH]
    repro sweep run SPEC.toml [--workers 8] [--no-cache]
    repro sweep show SPEC.toml      # expanded grid, nothing executed
    repro sweep list [DIR]          # committed campaign specs
    repro bench [--suite kernel|ml|workloads|all] [--quick]
                [--output PATH] [--check-against PATH]
    repro bench --compare NEW.json BASELINE.json

``fleet`` prints a fleet-wide report ending in a content digest; runs
with the same seed agree on the digest regardless of ``--workers``,
which is how CI smoke-checks the sharding (DESIGN.md §5).

``reproduce-all`` is incremental by default: work units are looked up
in a content-addressed result cache (``.repro-cache``, or
``$REPRO_CACHE_DIR`` / ``--cache-dir``) keyed over artifact, series,
scale, resolved experiment arguments, and a code-version salt, so a
warm re-run executes zero units and prints bit-identical digests — CI
smoke-checks exactly that (DESIGN.md §8).  ``--no-cache`` recomputes
everything.

``sweep run`` executes a declarative robustness campaign
(``repro.sweep``, DESIGN.md §9) through the same cache (``sweep::``
namespace) and warm pool: a warm re-run executes zero cells and
reproduces the campaign digest bit-identically, for any ``--workers``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.cache import ResultCache, default_cache_dir
from repro.conformance.cli import add_conformance_parser, cmd_conformance
from repro.experiments.common import experiment_digest
from repro.experiments.driver import (
    ARTIFACTS,
    ArtifactRun,
    FleetDriver,
    reproduce_all,
)
from repro.fleet.config import (
    AGENT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FleetConfig,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOL reproduction driver (Wang et al., ASPLOS 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artifacts")

    run = sub.add_parser("run", help="reproduce named tables/figures")
    run.add_argument(
        "artifacts", nargs="+", choices=ARTIFACTS, metavar="ARTIFACT",
        help=f"one of: {', '.join(ARTIFACTS)}",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="shortened (less converged) durations",
    )

    fleet = sub.add_parser(
        "fleet", help="simulate a multi-node fleet of SOL agents"
    )
    fleet.add_argument("--nodes", type=int, default=16)
    fleet.add_argument(
        "--agent", default="overclock",
        choices=AGENT_KINDS + ("mixed",),
    )
    fleet.add_argument("--workers", type=int, default=1)
    fleet.add_argument(
        "--seconds", type=int, default=120,
        help="simulated seconds per node",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--rack-size", type=int, default=8,
        help="nodes per rack (fault blast radius)",
    )
    fleet.add_argument(
        "--fault-racks", default=None, metavar="R0,R1,...",
        help="inject a correlated invalid-data burst into these racks",
    )
    fleet.add_argument("--fault-start", type=int, default=30,
                       help="burst onset (simulated seconds)")
    fleet.add_argument("--fault-duration", type=int, default=60,
                       help="burst length (simulated seconds)")
    fleet.add_argument(
        "--fault-probability", type=float, default=0.9,
        help="fault intensity inside the burst: per-read corruption/"
             "staleness chance, or per-node crash chance for "
             "crash_restart",
    )
    fleet.add_argument(
        "--fault-kind", default="bad_data", choices=FAULT_KINDS,
        help="burst kind: invalid values, telemetry dropout/stale "
             "reads, or agent crash-restart (default: %(default)s)",
    )

    rall = sub.add_parser(
        "reproduce-all", help="regenerate every table and figure"
    )
    rall.add_argument("--parallel", action="store_true",
                      help="shard the pass across worker processes")
    rall.add_argument("--workers", type=int, default=None)
    rall.add_argument(
        "--granularity", choices=("series", "artifact"), default="series",
        help="parallel work-unit size: independent (artifact, series) "
             "scenarios (default; scales past the artifact count) or "
             "whole artifacts (the pre-sharding behavior)",
    )
    rall.add_argument("--quick", action="store_true")
    rall.add_argument(
        "--only", nargs="+", choices=ARTIFACTS, metavar="ARTIFACT",
        default=None,
        help="restrict the pass to these artifacts (canonical order kept)",
    )
    rall.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse cached unit results (the default)",
    )
    rall.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="recompute every unit, ignoring the result cache",
    )
    rall.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro-cache)",
    )
    rall.add_argument(
        "--emit-experiments", metavar="PATH", default=None,
        help="also write the EXPERIMENTS.md measured-output tables",
    )

    sweep = sub.add_parser(
        "sweep",
        help="declarative robustness campaigns with a safety scoreboard",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="execute a campaign spec and print its scoreboard"
    )
    sweep_run.add_argument(
        "spec", metavar="SPEC",
        help="path to a campaign spec (.toml), e.g. "
             "examples/campaigns/smoke.toml",
    )
    sweep_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for cache-miss cells (default: 1)",
    )
    sweep_run.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="reuse cached cell results (the default)",
    )
    sweep_run.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="recompute every cell, ignoring the result cache",
    )
    sweep_run.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro-cache)",
    )
    sweep_show = sweep_sub.add_parser(
        "show", help="expand a campaign spec without executing anything"
    )
    sweep_show.add_argument("spec", metavar="SPEC")
    sweep_list = sweep_sub.add_parser(
        "list", help="list committed campaign specs"
    )
    sweep_list.add_argument(
        "directory", nargs="?", default="examples/campaigns",
        help="directory to scan for .toml specs (default: %(default)s)",
    )

    add_conformance_parser(sub)

    bench = sub.add_parser(
        "bench",
        help="microbenchmarks + end-to-end timings vs the frozen "
             "pre-optimization implementations",
    )
    bench.add_argument(
        "--suite", choices=("kernel", "ml", "workloads", "all"),
        default="kernel",
        help="kernel: event kernel vs the frozen seed kernel; "
             "ml: learning-epoch hot path vs the frozen per-class path; "
             "workloads: workload/substrate per-event loops vs the "
             "frozen pre-vectorization path; "
             "all: every suite in one invocation, merged into one "
             "report (default: %(default)s)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smaller microbenchmarks, skip the end-to-end section "
             "(speedup ratios stay comparable)",
    )
    bench.add_argument(
        "--output", metavar="PATH", default=None,
        help="where to write the JSON report "
             "(default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--check-against", metavar="PATH", default=None,
        help="compare speedups to a committed baseline report and exit "
             "non-zero on regression",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional speedup drop vs the baseline "
             "(default: %(default)s)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats per microbenchmark (default: %(default)s)",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("NEW", "BASELINE"), default=None,
        help="compare two existing bench reports instead of running "
             "anything: print a per-benchmark ratio table and exit "
             "non-zero past the --max-regression gate",
    )
    return parser


def _cmd_list() -> int:
    print("artifacts:")
    for name in ARTIFACTS:
        print(f"  {name}")
    print(f"fleet agent kinds: {', '.join(AGENT_KINDS + ('mixed',))}")
    return 0


def _print_run(run: ArtifactRun) -> None:
    print(run.result.render())
    # The digest line is what the CI cache smoke diffs between a cold
    # and a warm pass — cached assembly must be bit-identical.
    print(f"[digest {run.result.name} {experiment_digest(run.result)}]")
    print(f"[{run.wall_seconds:.1f}s wall]\n", flush=True)


def _cmd_run(args: argparse.Namespace) -> int:
    scale = 0.33 if args.quick else 1.0
    reproduce_all(scale=scale, only=args.artifacts, on_result=_print_run)
    return 0


def _parse_fault(args: argparse.Namespace) -> Optional[FaultPlan]:
    if args.fault_racks is None:
        return None
    racks = tuple(int(r) for r in args.fault_racks.split(",") if r != "")
    if not racks:
        raise SystemExit("--fault-racks needs at least one rack index")
    return FaultPlan(
        racks=racks,
        start_s=args.fault_start,
        duration_s=args.fault_duration,
        probability=args.fault_probability,
        kind=args.fault_kind,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    config = FleetConfig(
        n_nodes=args.nodes,
        agent=args.agent,
        seed=args.seed,
        duration_s=args.seconds,
        rack_size=args.rack_size,
        fault=_parse_fault(args),
    )
    driver = FleetDriver(config, workers=args.workers)
    started = time.perf_counter()
    aggregate = driver.run()
    wall = time.perf_counter() - started
    print(aggregate.render())
    # driver.workers, not args.workers: the pool is capped at n_nodes.
    print(f"[{driver.workers} worker(s), {wall:.1f}s wall]")
    return 0


def _cmd_reproduce_all(args: argparse.Namespace) -> int:
    if args.emit_experiments:
        # Fail before the (minutes-long) run, not after it.
        directory = os.path.dirname(
            os.path.abspath(args.emit_experiments)
        )
        if not os.path.isdir(directory):
            raise SystemExit(
                f"repro: error: cannot write {args.emit_experiments}: "
                f"{directory} is not a directory"
            )
    scale = 0.33 if args.quick else 1.0
    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    started = time.perf_counter()
    runs = reproduce_all(
        parallel=args.parallel,
        workers=args.workers,
        scale=scale,
        only=args.only,
        on_result=_print_run,
        granularity=args.granularity,
        cache=cache,
    )
    wall = time.perf_counter() - started
    mode = (
        f"parallel/{args.granularity}" if args.parallel else "serial"
    )
    print(f"[reproduce-all: {len(runs)} artifacts, {mode}, "
          f"{wall:.1f}s wall total]")
    if cache is not None:
        print(f"[cache: {cache.stats.render()} dir={cache.directory}]")
    if args.emit_experiments:
        text = render_experiments_markdown(runs, quick=args.quick)
        with open(args.emit_experiments, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"[wrote {args.emit_experiments}]")
    return 0


def render_experiments_markdown(
    runs: List[ArtifactRun], quick: bool = False
) -> str:
    """EXPERIMENTS.md-style measured-output tables for ``runs``."""
    lines = [
        "# Measured outputs",
        "",
        "Generated by `repro reproduce-all --emit-experiments`"
        + (" (--quick pass)." if quick else " (full pass)."),
        "",
    ]
    for run in runs:
        result = run.result
        lines.append(f"## {result.name}: {result.title}")
        lines.append("")
        lines.append("| " + " | ".join(result.columns) + " |")
        lines.append("|" + "|".join("---" for _ in result.columns) + "|")
        for row in result.rows:
            lines.append(
                "| "
                + " | ".join(
                    result.format_cell(row.get(col))
                    for col in result.columns
                )
                + " |"
            )
        for note in result.notes:
            lines.append(f"\n*{note}*")
        lines.append(f"\n`{run.wall_seconds:.1f}s wall`")
        lines.append("")
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, load_spec

    if args.sweep_command == "list":
        specs = []
        try:
            names = sorted(os.listdir(args.directory))
        except OSError as error:
            raise SystemExit(f"repro: error: {error}")
        for name in names:
            if not name.endswith(".toml"):
                continue
            path = os.path.join(args.directory, name)
            try:
                spec = load_spec(path)
                cells = len(spec.expand())
            except (OSError, ValueError) as error:
                print(f"  {path}: INVALID ({error})")
                continue
            specs.append((path, spec, cells))
        if not specs:
            print(f"no campaign specs (*.toml) under {args.directory}")
            return 0
        print("campaigns:")
        for path, spec, cells in specs:
            fault_kinds = ",".join(
                sorted({axis.kind for axis in spec.faults})
            ) or "none"
            print(
                f"  {path}: {spec.name} — {cells} cells "
                f"({len(spec.agents)} agents × {len(spec.scales)} scales "
                f"× {len(spec.seeds)} seeds; faults: {fault_kinds})"
            )
        return 0

    try:
        spec = load_spec(args.spec)
    except OSError as error:
        raise SystemExit(f"repro: error: cannot read {args.spec}: {error}")

    if args.sweep_command == "show":
        units = spec.expand()
        print(f"== campaign: {spec.name} — {len(units)} cells ==")
        for unit in units:
            print(f"  {unit.unit_id()}")
        return 0

    assert args.sweep_command == "run"
    cache = None
    if args.cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    runner = SweepRunner(spec, workers=args.workers, cache=cache)
    report = runner.run()
    print(report.render())
    print(
        f"[sweep: {len(report.records)} cells, {report.executed} executed, "
        f"{report.from_cache} from cache, {report.wall_seconds:.1f}s wall]"
    )
    if cache is not None:
        print(f"[cache: {cache.stats.render()} dir={cache.directory}]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf import (
        build_all_report,
        build_ml_report,
        build_report,
        build_workloads_report,
        compare_reports,
        compare_warnings,
        render_comparison,
        render_report,
        write_report,
    )

    if args.compare is not None:
        new_path, baseline_path = args.compare
        with open(new_path, "r", encoding="utf-8") as handle:
            new = json.load(handle)
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        print(render_comparison(new, baseline, new_path, baseline_path))
        # One-sided benchmarks (renamed/added/removed scenarios) warn
        # instead of failing: the comparison is partial, not wrong.
        for warning in compare_warnings(new, baseline):
            print(f"WARNING: {warning}", file=sys.stderr)
        problems = compare_reports(
            new, baseline, max_regression=args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(
            f"[no regression vs {baseline_path} "
            f"(gate: {args.max_regression:.0%})]"
        )
        return 0

    if args.repeats < 1:
        raise SystemExit("repro: error: --repeats must be >= 1")
    builder = {
        "kernel": build_report,
        "ml": build_ml_report,
        "workloads": build_workloads_report,
        "all": build_all_report,
    }[args.suite]
    report = builder(quick=args.quick, repeats=args.repeats)
    output = args.output or f"BENCH_{args.suite}.json"
    print(render_report(report))
    write_report(report, output)
    print(f"[wrote {output}]")
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        for warning in compare_warnings(report, baseline):
            print(f"WARNING: {warning}", file=sys.stderr)
        problems = compare_reports(
            report, baseline, max_regression=args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"[no regression vs {args.check_against}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        if args.command == "reproduce-all":
            return _cmd_reproduce_all(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "conformance":
            return cmd_conformance(args)
        if args.command == "bench":
            return _cmd_bench(args)
    except ValueError as error:
        # Config validation (bad --nodes/--workers/--fault-* values):
        # present it as a usage error, not a traceback.
        raise SystemExit(f"repro: error: {error}")
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
