"""Performance measurement subsystem (``python -m repro bench``).

Public surface::

    from repro.perf import build_report, build_ml_report, compare_reports
    from repro.perf.microbench import MICROBENCHMARKS, run_microbench
    from repro.perf.microbench_ml import ML_MICROBENCHMARKS, run_ml_microbench

``repro.perf.legacy`` (seed kernel) and ``repro.perf.legacy_ml``
(pre-vectorization ML epoch path) hold frozen copies used as the
measurement baselines; never import them from production code.
"""

from repro.perf.harness import (
    SEED_BASELINES,
    build_ml_report,
    build_report,
    compare_reports,
    render_report,
    write_report,
)

__all__ = [
    "SEED_BASELINES",
    "build_ml_report",
    "build_report",
    "compare_reports",
    "render_report",
    "write_report",
]
