"""Performance measurement subsystem (``python -m repro bench``).

Public surface::

    from repro.perf import build_report, compare_reports, write_report
    from repro.perf.microbench import MICROBENCHMARKS, run_microbench

``repro.perf.legacy`` holds a frozen copy of the seed kernel used as the
measurement baseline; never import it from production code.
"""

from repro.perf.harness import (
    SEED_BASELINES,
    build_report,
    compare_reports,
    render_report,
    write_report,
)

__all__ = [
    "SEED_BASELINES",
    "build_report",
    "compare_reports",
    "render_report",
    "write_report",
]
