"""Performance measurement subsystem (``python -m repro bench``).

Public surface::

    from repro.perf import build_report, build_ml_report, compare_reports
    from repro.perf import build_workloads_report, render_comparison
    from repro.perf.microbench import MICROBENCHMARKS, run_microbench
    from repro.perf.microbench_ml import ML_MICROBENCHMARKS, run_ml_microbench
    from repro.perf.microbench_workloads import WORKLOADS_MICROBENCHMARKS

``repro.perf.legacy`` (seed kernel), ``repro.perf.legacy_ml``
(pre-vectorization ML epoch path), and ``repro.perf.legacy_workloads``
(pre-vectorization workload/substrate loops) hold frozen copies used as
the measurement baselines; never import them from production code.
"""

from repro.perf.harness import (
    SEED_BASELINES,
    build_all_report,
    build_ml_report,
    build_report,
    build_workloads_report,
    compare_reports,
    compare_warnings,
    merge_suite_reports,
    render_comparison,
    render_report,
    write_report,
)

__all__ = [
    "SEED_BASELINES",
    "build_all_report",
    "build_ml_report",
    "build_report",
    "build_workloads_report",
    "compare_reports",
    "compare_warnings",
    "merge_suite_reports",
    "render_comparison",
    "render_report",
    "write_report",
]
