"""Golden-model implementation namespaces, one registry for all users.

The frozen pre-optimization copies (:mod:`repro.perf.legacy`,
:mod:`repro.perf.legacy_ml`, :mod:`repro.perf.legacy_workloads`) are
*reference implementations*: trusted-but-slow baselines every optimized
path must reproduce bit-exactly.  Three consumers need the same
live/frozen pairing —

* the ``repro bench`` harness (speedup ratios, optimized vs frozen),
* the lockstep bit-identity tests,
* the conformance subsystem's differential replay runner
  (:mod:`repro.conformance`), which registers each namespace as a
  :class:`~repro.conformance.registry.ReferenceImpl`

— so the pairing is defined exactly once, here.  Each namespace exposes
the same API surface as its counterpart (the microbench modules document
the contracts); a future second kernel backend (ROADMAP item 1, the SoA
mega-fleet backend) joins by adding itself to :data:`KERNEL_IMPLS` and
is immediately benchable *and* conformance-checkable.
"""

from __future__ import annotations

from typing import Any, Dict

import repro.perf.legacy as _legacy_kernel
import repro.perf.legacy_ml as _legacy_ml
import repro.perf.legacy_workloads as _legacy_workloads
import repro.sim as _live_kernel
from repro.perf.microbench_ml import LIVE_ML
from repro.perf.microbench_workloads import LIVE_WORKLOADS

__all__ = ["KERNEL_IMPLS", "ML_IMPLS", "WORKLOADS_IMPLS"]

#: Kernel implementations: ``Kernel``, ``SimQueue``, ``QUEUE_TIMEOUT``.
KERNEL_IMPLS: Dict[str, Any] = {
    "current": _live_kernel,
    "seed": _legacy_kernel,
}

#: ML epoch implementations: ``CostSensitiveClassifier``,
#: ``distributional_features``, ``Hypervisor``.
ML_IMPLS: Dict[str, Any] = {
    "current": LIVE_ML,
    "seed": _legacy_ml,
}

#: Workload/substrate implementations: ``CpuModel``, ``Hypervisor``,
#: ``TieredMemory``, ``TailBenchWorkload``, ``ObjectStoreWorkload``,
#: ``DiskSpeedWorkload``, ``ZipfMemoryTrace``.
WORKLOADS_IMPLS: Dict[str, Any] = {
    "current": LIVE_WORKLOADS,
    "seed": _legacy_workloads,
}
