"""Pinned seed-commit baselines — the single source of truth.

Both the golden-digest tests (`tests/fleet/test_golden_digests.py`) and
the ``repro bench`` harness consume these constants, so a legitimate
physics change (which EXPERIMENTS.md anticipates) is updated in exactly
one place and cannot leave the bench and the tests disagreeing about
what "unchanged results" means.

All values were recorded at the seed commit (pre kernel-overhaul):
digests from `FleetAggregate.digest()` / the canonical
`ExperimentResult` hash, wall times best-of-3 on the reference
container.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "GOLDEN_EXPERIMENT_DIGESTS",
    "GOLDEN_EXPERIMENT_SCALE",
    "GOLDEN_FLEET_DIGESTS",
    "SEED_E2E_WALL_S",
]

#: Fleet-configuration name -> seed digest.  The configurations
#: themselves are defined where they are used (tests, harness); the
#: names here are the contract.
GOLDEN_FLEET_DIGESTS: Dict[str, str] = {
    "overclock_8x20_seed7": (
        "e4dab531a38b27801c57e90f28da03284b0d84a0d4524e1974d9d281fe118570"
    ),
    "mixed_6x15_seed3": (
        "52e61d334671947b1ada1141e42fab6340d69e886e64ab65e38e9a4a878a55f6"
    ),
    "harvest_4x20_seed5_fault": (
        "f05f7a6ec8ebd7b3d552a482f9785ee5fa2d7c7ea46288cf61cb532da102e716"
    ),
}

#: Artifact name -> canonical ExperimentResult digest at
#: :data:`GOLDEN_EXPERIMENT_SCALE`.
GOLDEN_EXPERIMENT_DIGESTS: Dict[str, str] = {
    "table1": (
        "557084de35d05bd9f9ea31e0bfc7d21a0afe225f147786ff8112f1c59d60c6db"
    ),
    "table2": (
        "9e4f3d7a2657206488a24cc50418a9251de6ae7ffbbbfacf8ed0607768167073"
    ),
    "fig6-left": (
        "84d2a7f26ca752bd3fd78491b62abc1e06343319da2bdfa906299ad9282d0a5c"
    ),
}
GOLDEN_EXPERIMENT_SCALE = 0.2

#: Seed-commit wall-clock of the bench end-to-end scenarios.
SEED_E2E_WALL_S: Dict[str, float] = {
    "fleet_mixed_6x15": 1.115,
    "reproduce_subset": 3.233,
}
