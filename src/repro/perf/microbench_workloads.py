"""Workload/substrate microbenchmarks, runnable against either path.

Each benchmark takes an *implementation* namespace exposing
``CpuModel``, ``TieredMemory``, ``TailBenchWorkload``,
``ObjectStoreWorkload``, ``DiskSpeedWorkload``, and ``ZipfMemoryTrace``
— either :data:`LIVE_WORKLOADS` (the vectorized live path) or
:mod:`repro.perf.legacy_workloads` (the frozen pre-optimization path) —
so ``repro bench --suite workloads`` can report speedups measured on
the same machine in the same process.

The scenarios isolate the remaining per-event hot loops this PR
attacks (they became the dominant per-step cost once PR 2 moved the
bottleneck out of the kernel and PR 3 out of the ML epoch):

* ``cpu_phase_accounting`` — the CPU substrate under the sampling
  workloads: one phase flip + counter accrual per sample, with the
  occasional agent frequency action.  The seed recomputed every rate
  (two pows + the power polynomial) inside ``_accrue`` and allocated +
  fired a ``cpu.change`` event per flip.
* ``memory_rate_accrual`` — the tiered-memory substrate under the
  SmartMemory scan loop: scans, migrations, and rate pushes, each
  paying one accrual.  The seed rebuilt ``rates * elapsed`` plus two
  boolean tier masks per accrual and recounted ``n_local`` per read.
* ``zipf_rate_push`` — trace popularity shifts: the seed rebuilt and
  renormalized the Zipf weight vector on every push.
* ``tailbench_step_window`` — the 25 ms TailBench batch-window loop:
  demand step, harvest churn, deficit-ratio latency accounting.  The
  seed materialized a ``HypervisorSnapshot`` dataclass per step.
* ``objectstore_request_accounting`` / ``diskspeed_request_accounting``
  — the 200 ms CPU-workload sampling loops: the seed paid a fresh
  ``ratio ** freq_scaling`` per sample on both the workload and the
  substrate side.

Workload loops are driven exactly as the lockstep bit-identity tests
drive them: the ``_run`` generator is stepped directly and the kernel
clock advanced by each yielded delay, so the scenarios measure the
loop bodies, not kernel dispatch.  Timing uses best-of-``repeats``
wall clock per scenario, like the other suites.
"""

from __future__ import annotations

import time
from types import SimpleNamespace
from typing import Any, Callable, Dict

import numpy as np

from repro.node.cpu import CpuModel as _LiveCpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import Tier, TieredMemory as _LiveTieredMemory
from repro.perf.microbench import BenchResult
from repro.sim import Kernel
from repro.workloads.diskspeed import DiskSpeedWorkload as _LiveDiskSpeed
from repro.workloads.objectstore import ObjectStoreWorkload as _LiveObjectStore
from repro.workloads.tailbench import (
    IMAGE_DNN,
    TailBenchWorkload as _LiveTailBench,
)
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    ZipfMemoryTrace as _LiveZipfTrace,
    zipf_rates as _live_zipf_rates,
)

__all__ = [
    "LIVE_WORKLOADS",
    "WORKLOADS_MICROBENCHMARKS",
    "run_workloads_microbench",
]

#: The live implementation namespace (mirrors legacy_workloads' API).
LIVE_WORKLOADS = SimpleNamespace(
    CpuModel=_LiveCpuModel,
    Hypervisor=Hypervisor,
    TieredMemory=_LiveTieredMemory,
    TailBenchWorkload=_LiveTailBench,
    ObjectStoreWorkload=_LiveObjectStore,
    DiskSpeedWorkload=_LiveDiskSpeed,
    ZipfMemoryTrace=_LiveZipfTrace,
    zipf_rates=_live_zipf_rates,
)


def _drive(kernel: Kernel, gen: Any, steps: int, on_step=None) -> None:
    """Step a workload ``_run`` generator, advancing the clock manually."""
    delay = next(gen)
    for step in range(steps):
        kernel._now += delay
        if on_step is not None:
            on_step(step)
        delay = gen.send(None)


def _bench_cpu_phase_accounting(impl: Any, scale: float) -> BenchResult:
    iters = max(1, int(40_000 * scale))
    kernel = Kernel()
    cpu = impl.CpuModel(kernel)
    rng = np.random.default_rng(31)
    utilizations = rng.uniform(0.3, 1.0, size=256)
    frequencies = rng.uniform(1.5, 2.3, size=16)
    started = time.perf_counter()
    for i in range(iters):
        kernel._now += 200_000
        cpu.set_phase(utilizations[i % 256], 0.9, 0.9)
        if i % 64 == 0:  # the agent's occasional frequency action
            cpu.set_frequency(frequencies[(i // 64) % 16])
        if i % 16 == 0:  # the agent's counter read
            cpu.snapshot()
    return BenchResult(
        "cpu_phase_accounting", iters, time.perf_counter() - started
    )


def _bench_memory_rate_accrual(impl: Any, scale: float) -> BenchResult:
    # The tiered-memory rate-application path: every SLO-watcher window
    # read, trace rate push, and agent migration batch pays one accrual
    # over the region vectors.  Cadence mirrors fig7: 5 s windows, rate
    # pushes every few windows, a migration batch per decision epoch.
    iters = max(1, int(12_000 * scale))
    n_regions = 256
    kernel = Kernel()
    memory = impl.TieredMemory(kernel, n_regions=n_regions)
    rng = np.random.default_rng(37)
    rate_vectors = rng.uniform(0.0, 5000.0, size=(8, n_regions))
    regions = rng.integers(0, n_regions, size=512)
    memory.set_rates(rate_vectors[0])
    started = time.perf_counter()
    for i in range(iters):
        kernel._now += 5_000_000  # the 5 s SLO window cadence
        memory.snapshot()
        memory.n_local
        if i % 4 == 0:
            memory.set_rates(rate_vectors[(i // 4) % 8])
        if i % 16 == 0:
            base = (i // 16) % 64
            tier = Tier.REMOTE if (i // 16) % 2 else Tier.LOCAL
            memory.migrate_many(
                (int(r) for r in regions[base:base + 8]), tier
            )
    return BenchResult(
        "memory_rate_accrual", iters, time.perf_counter() - started
    )


def _bench_zipf_rate_push(impl: Any, scale: float) -> BenchResult:
    iters = max(1, int(4_000 * scale))
    kernel = Kernel()
    memory = impl.TieredMemory(kernel, n_regions=256)
    trace = impl.ZipfMemoryTrace(
        kernel, memory, np.random.default_rng(41), OBJECTSTORE_MEM
    )
    interval = OBJECTSTORE_MEM.shift_interval_us
    started = time.perf_counter()
    trace.apply_rates()
    for _ in range(iters):
        kernel._now += interval
        trace.shift_popularity()
        trace.apply_rates()
    return BenchResult(
        "zipf_rate_push", iters, time.perf_counter() - started
    )


def _bench_tailbench_step_window(impl: Any, scale: float) -> BenchResult:
    steps = max(1, int(20_000 * scale))
    kernel = Kernel()
    hypervisor = impl.Hypervisor(
        kernel, n_cores=8, history_horizon_us=1_000_000
    )
    workload = impl.TailBenchWorkload(
        kernel, hypervisor, np.random.default_rng(43), IMAGE_DNN
    )
    rng = np.random.default_rng(47)
    harvests = rng.integers(0, 8, size=256)

    def churn(step):
        if step % 5 == 0:  # agent-side harvest actions create deficits
            hypervisor.set_harvested(int(harvests[(step // 5) % 256]))

    started = time.perf_counter()
    _drive(kernel, workload._run(), steps, churn)
    return BenchResult(
        "tailbench_step_window", steps, time.perf_counter() - started
    )


def _bench_cpu_workload(
    name: str, workload_attr: str, impl: Any, scale: float
) -> BenchResult:
    steps = max(1, int(20_000 * scale))
    kernel = Kernel()
    cpu = impl.CpuModel(kernel)
    workload = getattr(impl, workload_attr)(
        kernel, cpu, np.random.default_rng(53)
    )
    rng = np.random.default_rng(59)
    frequencies = rng.uniform(1.5, 2.3, size=64)

    def agent(step):
        if step % 50 == 0:  # occasional agent frequency action
            cpu.set_frequency(frequencies[(step // 50) % 64])

    started = time.perf_counter()
    _drive(kernel, workload._run(), steps, agent)
    return BenchResult(name, steps, time.perf_counter() - started)


def _bench_objectstore(impl: Any, scale: float) -> BenchResult:
    return _bench_cpu_workload(
        "objectstore_request_accounting", "ObjectStoreWorkload", impl, scale
    )


def _bench_diskspeed(impl: Any, scale: float) -> BenchResult:
    return _bench_cpu_workload(
        "diskspeed_request_accounting", "DiskSpeedWorkload", impl, scale
    )


#: Scenario registry: name -> callable(impl, scale) -> BenchResult.
WORKLOADS_MICROBENCHMARKS: Dict[str, Callable[[Any, float], BenchResult]] = {
    "cpu_phase_accounting": _bench_cpu_phase_accounting,
    "memory_rate_accrual": _bench_memory_rate_accrual,
    "zipf_rate_push": _bench_zipf_rate_push,
    "tailbench_step_window": _bench_tailbench_step_window,
    "objectstore_request_accounting": _bench_objectstore,
    "diskspeed_request_accounting": _bench_diskspeed,
}


def run_workloads_microbench(
    name: str, impl: Any, scale: float = 1.0, repeats: int = 3
) -> BenchResult:
    """Best-of-``repeats`` run of one scenario against one implementation."""
    bench = WORKLOADS_MICROBENCHMARKS[name]
    best: BenchResult = bench(impl, scale)
    for _ in range(repeats - 1):
        result = bench(impl, scale)
        if result.wall_s < best.wall_s:
            best = result
    return best
