"""Frozen copy of the pre-vectorization ML epoch hot path.

This module is the *measurement baseline* for ``repro bench --suite
ml``, exactly as :mod:`repro.perf.legacy` is for the kernel suite: the
ML microbenchmarks run the same epoch workload against this
implementation and against the live :mod:`repro.ml` /
:mod:`repro.node.hypervisor`, and report the ratio.  Keeping the frozen
path in-tree makes the claimed speedups reproducible on any machine
forever, and gives the bit-identity property tests
(``tests/ml/test_vectorized_bit_identity.py``) a reference that cannot
drift.

Never import this from production code.  It intentionally preserves the
pre-vectorization inefficiencies: one ``OnlineLinearRegression`` object
per class (per-class method dispatch, ``asarray``/shape checks, list
building on every predict/update), multi-pass distributional features
(``mean``/``std`` each re-reducing the window), and per-call
``np.empty``/noise/clip allocation in ``Hypervisor.sample_usage``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.quantiles import percentile_of_sorted

__all__ = [
    "CostSensitiveClassifier",
    "Hypervisor",
    "OnlineLinearRegression",
    "distributional_features",
]


class OnlineLinearRegression:
    """Seed per-class regressor (see :mod:`repro.ml.linear` history)."""

    def __init__(
        self,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 0.0,
        clip_gradient: Optional[float] = 100.0,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_features = n_features
        self.learning_rate = learning_rate
        self.l2 = l2
        self.clip_gradient = clip_gradient
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self.updates = 0
        self._step_buffer = np.empty(n_features)

    def predict(self, features: Sequence[float]) -> float:
        x = self._check(features)
        return float(self.weights @ x + self.bias)

    def update(self, features: Sequence[float], target: float) -> float:
        x = self._check(features)
        error = float(self.weights @ x + self.bias) - float(target)
        step_error = error
        clip = self.clip_gradient
        if clip is not None:
            step_error = min(max(error, -clip), clip)
        if self.l2:
            self.weights -= self.learning_rate * (
                step_error * x + self.l2 * self.weights
            )
        else:
            step = self._step_buffer
            np.multiply(x, step_error, out=step)
            step *= self.learning_rate
            self.weights -= step
        self.bias -= self.learning_rate * step_error
        self.updates += 1
        return error

    def _check(self, features: Sequence[float]) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {x.shape}"
            )
        return x


class CostSensitiveClassifier:
    """Seed csoaa reduction: one regressor object per class."""

    def __init__(
        self,
        n_classes: int,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 0.0,
    ) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self.n_features = n_features
        self._regressors = [
            OnlineLinearRegression(
                n_features, learning_rate=learning_rate, l2=l2
            )
            for _ in range(n_classes)
        ]
        self.updates = 0

    def predicted_costs(self, features: Sequence[float]) -> np.ndarray:
        return np.array(
            [regressor.predict(features) for regressor in self._regressors]
        )

    def predict(self, features: Sequence[float]) -> int:
        return int(np.argmin(self.predicted_costs(features)))

    def update(
        self, features: Sequence[float], costs: Sequence[float]
    ) -> None:
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (self.n_classes,):
            raise ValueError(
                f"expected {self.n_classes} costs, got shape {costs.shape}"
            )
        for regressor, cost in zip(self._regressors, costs):
            regressor.update(features, float(cost))
        self.updates += 1


def distributional_features(samples: np.ndarray) -> np.ndarray:
    """Seed multi-pass feature extraction (fresh arrays every call)."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("need a non-empty 1-D sample window")
    half = samples.size // 2
    if half > 0:
        trend = float(samples[half:].mean() - samples[:half].mean())
    else:
        trend = 0.0
    ordered = np.sort(samples)
    return np.array(
        [
            float(samples.mean()),
            float(samples.std()),
            float(ordered[0]),
            percentile_of_sorted(ordered, 50),
            percentile_of_sorted(ordered, 90),
            percentile_of_sorted(ordered, 99),
            float(ordered[-1]),
            float(samples[-1]),
            trend,
        ]
    )


class Hypervisor:
    """Seed telemetry-sampling path (list history, per-call allocation).

    Only the pieces the ML epoch microbenchmarks exercise are kept:
    demand/allocation change points, trailing-window usage
    reconstruction, and the ground-truth demand maximum.  ``kernel``
    only needs a ``.now`` attribute.
    """

    def __init__(
        self,
        kernel,
        n_cores: int = 8,
        history_horizon_us: int = 500_000,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.kernel = kernel
        self.n_cores = n_cores
        self._horizon = history_horizon_us
        self._demand = 0.0
        self._allocated = float(n_cores)
        self._history: list = []
        self._segment_start = kernel.now
        self._demand_cus = 0.0
        self._usage_cus = 0.0
        self._deficit_cus = 0.0
        self._elastic_cus = 0.0
        self._last_accrue_us = kernel.now

    def set_demand(self, cores: float) -> None:
        if cores < 0:
            raise ValueError("demand must be non-negative")
        self._change(demand=min(float(cores), float(self.n_cores)))

    def set_harvested(self, cores: int) -> int:
        applied = max(0, min(int(cores), self.n_cores))
        self._change(allocated=float(self.n_cores - applied))
        return applied

    def sample_usage(
        self,
        window_us: int,
        period_us: int,
        rng: Optional[np.random.Generator] = None,
        noise_cores: float = 0.0,
    ) -> np.ndarray:
        if period_us <= 0 or window_us <= 0:
            raise ValueError("window and period must be positive")
        now = self.kernel.now
        start = max(0, now - window_us)
        size = (now - start + period_us - 1) // period_us
        if size <= 0:
            return np.zeros(0)
        demand = np.empty(size)
        allocated = np.empty(size)
        index = 0
        for _seg_start, seg_end, seg_demand, seg_alloc in self._segments():
            if index >= size:
                break
            end = (seg_end - start + period_us - 1) // period_us
            if end > index:
                if end > size:
                    end = size
                demand[index:end] = seg_demand
                allocated[index:end] = seg_alloc
                index = end
        if index < size:
            demand[index:] = self._demand
            allocated[index:] = self._allocated
        usage = np.minimum(demand, allocated)
        if rng is not None and noise_cores > 0.0:
            usage = usage + rng.normal(0.0, noise_cores, size=usage.size)
            usage = np.clip(usage, 0.0, allocated)
        return usage

    def max_demand_over(self, window_us: int) -> float:
        now = self.kernel.now
        start = max(0, now - window_us)
        peak = self._demand
        for seg_start, seg_end, seg_demand, _alloc in self._segments():
            if seg_end > start and seg_start < now:
                peak = max(peak, seg_demand)
        return peak

    def _segments(self):
        yield from self._history
        now = self.kernel.now
        if now > self._segment_start:
            yield (self._segment_start, now, self._demand, self._allocated)

    def _change(
        self,
        demand: Optional[float] = None,
        allocated: Optional[float] = None,
    ) -> None:
        self._accrue()
        now = self.kernel.now
        if now > self._segment_start:
            self._history.append(
                (self._segment_start, now, self._demand, self._allocated)
            )
            cutoff = now - self._horizon
            while self._history and self._history[0][1] <= cutoff:
                self._history.pop(0)
        if demand is not None:
            self._demand = demand
        if allocated is not None:
            self._allocated = allocated
        self._segment_start = now

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed = now - self._last_accrue_us
        if elapsed <= 0:
            return
        self._demand_cus += self._demand * elapsed
        self._usage_cus += min(self._demand, self._allocated) * elapsed
        self._deficit_cus += max(0.0, self._demand - self._allocated) * elapsed
        self._elastic_cus += (self.n_cores - self._allocated) * elapsed
        self._last_accrue_us = now
