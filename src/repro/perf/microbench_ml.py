"""ML learning-epoch microbenchmarks, runnable against either ML path.

Each benchmark takes an *implementation* namespace exposing
``CostSensitiveClassifier``, ``distributional_features``, and
``Hypervisor`` — either :data:`LIVE_ML` (the vectorized live path) or
:mod:`repro.perf.legacy_ml` (the frozen pre-vectorization path) — so
``repro bench --suite ml`` can report speedups measured on the same
machine in the same process.

The scenarios isolate the 25 ms learning-epoch hot loop this PR
attacks (it became the dominant cost once PR 2 moved the bottleneck out
of the simulation kernel):

* ``csc_predict`` / ``csc_update`` — the cost-sensitive classifier's
  two per-epoch calls.  The seed path paid per-class Python dispatch
  (method calls, ``asarray``/shape checks, list building) nine times
  per call; the vectorized path is one pass over a shared weight
  matrix.
* ``feature_extraction`` — ``distributional_features`` over a
  SmartHarvest-sized window (25 ms / 50 µs = 500 samples).  The seed
  re-reduced the window for ``mean`` and twice more inside ``std``;
  the live path folds them into one shared sum and reuses scratch.
* ``epoch_telemetry`` — ``Hypervisor.sample_usage`` +
  ``max_demand_over`` against a realistic change-point history (the
  25 ms collection pattern).  The seed allocated five arrays per epoch
  and scanned the whole retained horizon for the demand maximum.

Timing uses best-of-``repeats`` wall clock per scenario, like the
kernel suite.
"""

from __future__ import annotations

import time
from types import SimpleNamespace
from typing import Any, Callable, Dict

import numpy as np

from repro.ml.costsensitive import (
    CostSensitiveClassifier as _LiveClassifier,
    asymmetric_core_costs,
)
from repro.ml.features import distributional_features as _live_features
from repro.node.hypervisor import Hypervisor as _LiveHypervisor
from repro.perf.microbench import BenchResult

__all__ = ["LIVE_ML", "ML_MICROBENCHMARKS", "run_ml_microbench"]

#: The live implementation namespace (mirrors the legacy_ml module API).
LIVE_ML = SimpleNamespace(
    CostSensitiveClassifier=_LiveClassifier,
    distributional_features=_live_features,
    Hypervisor=_LiveHypervisor,
)

# SmartHarvest's dimensions: 8 cores -> 9 classes, 9 features, and a
# 25 ms window of 50 µs samples.
_N_CLASSES = 9
_N_FEATURES = 9
_WINDOW_SAMPLES = 500
_EPOCH_US = 25_000
_SAMPLE_PERIOD_US = 50


def _feature_batch(count: int) -> np.ndarray:
    rng = np.random.default_rng(1234)
    return rng.uniform(0.0, 1.0, size=(count, _N_FEATURES))


def _cost_batch(count: int) -> np.ndarray:
    rng = np.random.default_rng(5678)
    labels = rng.integers(0, _N_CLASSES, size=count)
    return np.stack(
        [asymmetric_core_costs(int(label), _N_CLASSES) for label in labels]
    )


def _trained_classifier(impl: Any) -> Any:
    classifier = impl.CostSensitiveClassifier(
        n_classes=_N_CLASSES, n_features=_N_FEATURES
    )
    for features, costs in zip(_feature_batch(50), _cost_batch(50)):
        classifier.update(features, costs)
    return classifier


def _bench_csc_predict(impl: Any, scale: float) -> BenchResult:
    iters = max(1, int(20_000 * scale))
    classifier = _trained_classifier(impl)
    batch = _feature_batch(256)
    n_batch = len(batch)
    started = time.perf_counter()
    for i in range(iters):
        classifier.predict(batch[i % n_batch])
    return BenchResult("csc_predict", iters, time.perf_counter() - started)


def _bench_csc_update(impl: Any, scale: float) -> BenchResult:
    iters = max(1, int(10_000 * scale))
    classifier = _trained_classifier(impl)
    features = _feature_batch(256)
    costs = _cost_batch(256)
    n_batch = len(features)
    started = time.perf_counter()
    for i in range(iters):
        j = i % n_batch
        classifier.update(features[j], costs[j])
    return BenchResult("csc_update", iters, time.perf_counter() - started)


def _bench_feature_extraction(impl: Any, scale: float) -> BenchResult:
    iters = max(1, int(10_000 * scale))
    rng = np.random.default_rng(42)
    windows = rng.uniform(0.0, 8.0, size=(16, _WINDOW_SAMPLES))
    extract = impl.distributional_features
    started = time.perf_counter()
    for i in range(iters):
        extract(windows[i % 16])
    return BenchResult(
        "feature_extraction", iters, time.perf_counter() - started
    )


class _FakeKernel:
    """A ``.now``-only stand-in; the sampling path needs nothing else."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


def _bench_epoch_telemetry(impl: Any, scale: float) -> BenchResult:
    # One iteration = one learning epoch: 25 demand change points at
    # 1 ms cadence (a busy TailBench-style primary), then the 500-sample
    # window reconstruction and the ground-truth demand maximum.
    epochs = max(1, int(2_000 * scale))
    kernel = _FakeKernel()
    hypervisor = impl.Hypervisor(
        kernel, n_cores=8, history_horizon_us=1_000_000
    )
    rng = np.random.default_rng(7)
    demands = rng.uniform(0.0, 8.0, size=256)
    noise_rng = np.random.default_rng(11)
    step_us = 1_000
    i = 0
    started = time.perf_counter()
    for _epoch in range(epochs):
        for _change in range(_EPOCH_US // step_us):
            kernel.now += step_us
            hypervisor.set_demand(demands[i % 256])
            i += 1
        hypervisor.sample_usage(
            _EPOCH_US, _SAMPLE_PERIOD_US, rng=noise_rng, noise_cores=0.05
        )
        hypervisor.max_demand_over(_EPOCH_US)
    return BenchResult(
        "epoch_telemetry", epochs, time.perf_counter() - started
    )


#: Scenario registry: name -> callable(impl, scale) -> BenchResult.
ML_MICROBENCHMARKS: Dict[str, Callable[[Any, float], BenchResult]] = {
    "csc_predict": _bench_csc_predict,
    "csc_update": _bench_csc_update,
    "feature_extraction": _bench_feature_extraction,
    "epoch_telemetry": _bench_epoch_telemetry,
}


def run_ml_microbench(
    name: str, impl: Any, scale: float = 1.0, repeats: int = 3
) -> BenchResult:
    """Best-of-``repeats`` run of one scenario against one implementation."""
    bench = ML_MICROBENCHMARKS[name]
    best: BenchResult = bench(impl, scale)
    for _ in range(repeats - 1):
        result = bench(impl, scale)
        if result.wall_s < best.wall_s:
            best = result
    return best
