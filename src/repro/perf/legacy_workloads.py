"""Frozen copy of the pre-vectorization workload/substrate hot path.

This module is the *measurement baseline* for ``repro bench --suite
workloads``, exactly as :mod:`repro.perf.legacy` is for the kernel
suite and :mod:`repro.perf.legacy_ml` for the ML epoch: the workloads
microbenchmarks run the same per-step scenarios against this
implementation and against the live :mod:`repro.node` /
:mod:`repro.workloads`, and report the ratio.  Keeping the frozen path
in-tree makes the claimed speedups reproducible on any machine forever,
and gives the lockstep bit-identity tests
(``tests/workloads/test_vectorized_workloads_bit_identity.py``) a
reference that cannot drift.

Never import this from production code.  It intentionally preserves the
pre-optimization inefficiencies:

* ``CpuModel`` recomputes every counter rate (including a ``pow`` for
  the frequency-scaling exponent and the power-curve polynomial) inside
  ``_accrue`` on every phase change, and allocates + fires a fresh
  ``cpu.change`` :class:`~repro.sim.kernel.Event` per change even when
  nothing waits on it;
* ``TieredMemory`` re-derives boolean tier masks (including a ``~mask``
  allocation) and a fresh ``rates * elapsed`` array on every accrual,
  and recounts ``n_local`` with a full ``mask.sum()`` per read;
* ``zipf_rates`` rebuilds and renormalizes the Zipf weight vector on
  every rate push;
* ``TailBenchWorkload`` materializes a full ``HypervisorSnapshot``
  dataclass per 25 ms step, and the CPU workloads pay attribute/method
  dispatch plus a fresh ``ratio ** freq_scaling`` per sample;
* ``Hypervisor`` (the change-point/accrual core only — telemetry
  reconstruction stayed as PR 3 left it) re-derives the usage/deficit/
  elastic rates through property dispatch on every accrual instead of
  caching them per change point.

The frozen classes share the live dataclasses and the live ``Workload``
base — only the per-event accounting loops this PR vectorizes are
copied.
"""

from __future__ import annotations

import math
from collections import deque
from typing import (
    Any,
    Deque,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.node.cpu import CounterSnapshot
from repro.node.hypervisor import HypervisorSnapshot
from repro.node.memory import MemorySnapshot, ScanResult, Tier
from repro.node.power import PowerModel
from repro.sim.kernel import Event, Kernel
from repro.sim.units import MS, SEC
from repro.workloads.base import PerformanceReport, Workload, percentile
from repro.workloads.tailbench import IMAGE_DNN, DemandProfile
from repro.workloads.traces import OBJECTSTORE_MEM, TraceProfile

__all__ = [
    "CpuModel",
    "DiskSpeedWorkload",
    "Hypervisor",
    "ObjectStoreWorkload",
    "TailBenchWorkload",
    "TieredMemory",
    "ZipfMemoryTrace",
    "zipf_rates",
]


class Hypervisor:
    """Seed hypervisor accrual core: property dispatch per accrual.

    Only the change-point/accrual machinery the TailBench step loop
    exercises is frozen here; the PR 3 telemetry reconstruction
    (``sample_usage``) is out of this PR's scope and therefore omitted.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_cores: int = 8,
        history_horizon_us: int = 500_000,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.kernel = kernel
        self.n_cores = n_cores
        self._horizon = history_horizon_us
        self._demand = 0.0
        self._allocated = float(n_cores)
        self._history: Deque[Tuple[int, int, float, float]] = deque()
        self._segment_start = kernel.now
        self._demand_cus = 0.0
        self._usage_cus = 0.0
        self._deficit_cus = 0.0
        self._elastic_cus = 0.0
        self._last_accrue_us = kernel.now

    @property
    def demand(self) -> float:
        return self._demand

    @property
    def allocated(self) -> float:
        return self._allocated

    @property
    def harvested(self) -> float:
        return self.n_cores - self._allocated

    @property
    def usage(self) -> float:
        return min(self._demand, self._allocated)

    @property
    def deficit(self) -> float:
        return max(0.0, self._demand - self._allocated)

    def set_demand(self, cores: float) -> None:
        if cores < 0:
            raise ValueError("demand must be non-negative")
        self._change(demand=min(float(cores), float(self.n_cores)))

    def set_harvested(self, cores: int) -> int:
        applied = max(0, min(int(cores), self.n_cores))
        self._change(allocated=float(self.n_cores - applied))
        return applied

    def snapshot(self) -> HypervisorSnapshot:
        self._accrue()
        return HypervisorSnapshot(
            time_us=self.kernel.now,
            demand_cus=self._demand_cus,
            usage_cus=self._usage_cus,
            deficit_cus=self._deficit_cus,
            elastic_cus=self._elastic_cus,
        )

    def _change(
        self,
        demand: Optional[float] = None,
        allocated: Optional[float] = None,
    ) -> None:
        self._accrue()
        now = self.kernel.now
        if now > self._segment_start:
            self._history.append(
                (self._segment_start, now, self._demand, self._allocated)
            )
            cutoff = now - self._horizon
            while self._history and self._history[0][1] <= cutoff:
                self._history.popleft()
        if demand is not None:
            self._demand = demand
        if allocated is not None:
            self._allocated = allocated
        self._segment_start = now

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed = now - self._last_accrue_us
        if elapsed <= 0:
            return
        self._demand_cus += self._demand * elapsed
        self._usage_cus += self.usage * elapsed
        self._deficit_cus += self.deficit * elapsed
        self._elastic_cus += self.harvested * elapsed
        self._last_accrue_us = now


class CpuModel:
    """Seed CPU substrate: per-accrual rate recomputation, eager events."""

    def __init__(
        self,
        kernel: Kernel,
        n_cores: int = 8,
        nominal_freq_ghz: float = 1.5,
        min_freq_ghz: float = 1.0,
        max_freq_ghz: float = 2.6,
        max_ipc: float = 4.0,
        power_model: PowerModel = PowerModel(),
    ) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if not min_freq_ghz <= nominal_freq_ghz <= max_freq_ghz:
            raise ValueError("need min_freq <= nominal_freq <= max_freq")
        self.kernel = kernel
        self.n_cores = n_cores
        self.nominal_freq_ghz = nominal_freq_ghz
        self.min_freq_ghz = min_freq_ghz
        self.max_freq_ghz = max_freq_ghz
        self.max_ipc = max_ipc
        self.power_model = power_model

        self._freq_ghz = nominal_freq_ghz
        self._utilization = 0.0
        self._boundness = 1.0
        self._freq_scaling = 1.0

        self._instructions = 0.0
        self._unhalted = 0.0
        self._stalled = 0.0
        self._total = 0.0
        self._energy = 0.0
        self._last_accrue_us = kernel.now

        self.change: Event = kernel.event("cpu.change")

    @property
    def frequency_ghz(self) -> float:
        return self._freq_ghz

    @property
    def utilization(self) -> float:
        return self._utilization

    @property
    def alpha(self) -> float:
        return self._utilization * self._boundness

    def instantaneous_watts(self) -> float:
        return self.power_model.watts(
            self.n_cores, self._freq_ghz, self._utilization
        )

    def ips_rate(self) -> float:
        ratio = self._freq_ghz / self.nominal_freq_ghz
        return (
            self._utilization
            * self._boundness
            * self.max_ipc
            * self.n_cores
            * self.nominal_freq_ghz
            * ratio**self._freq_scaling
        )

    def set_frequency(self, freq_ghz: float) -> float:
        clamped = min(self.max_freq_ghz, max(self.min_freq_ghz, freq_ghz))
        self._accrue()
        self._freq_ghz = clamped
        self._notify_change()
        return clamped

    def set_phase(
        self,
        utilization: float,
        boundness: float = 1.0,
        freq_scaling: float = 1.0,
    ) -> None:
        for name, value in (
            ("utilization", utilization),
            ("boundness", boundness),
            ("freq_scaling", freq_scaling),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._accrue()
        self._utilization = utilization
        self._boundness = boundness
        self._freq_scaling = freq_scaling
        self._notify_change()

    def snapshot(self) -> CounterSnapshot:
        self._accrue()
        return CounterSnapshot(
            time_us=self.kernel.now,
            instructions=self._instructions,
            unhalted_cycles=self._unhalted,
            stalled_cycles=self._stalled,
            total_cycles=self._total,
            energy_joules=self._energy,
        )

    def run_work(
        self, giga_instructions: float
    ) -> Generator[Any, Any, None]:
        if giga_instructions < 0:
            raise ValueError("work must be non-negative")
        self._accrue()
        target = self._instructions + giga_instructions
        while True:
            self._accrue()
            remaining = target - self._instructions
            if remaining <= 1e-9:
                return
            rate = self.ips_rate()
            if rate <= 0.0:
                yield self.change
                continue
            eta_us = int(math.ceil(remaining / rate * SEC))
            waiter = self.kernel.event("cpu.work")
            self.kernel.call_later(eta_us, lambda w=waiter: w.succeed("eta"))
            self.change.add_callback(lambda _v, w=waiter: w.succeed("change"))
            yield waiter

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed_s = (now - self._last_accrue_us) / SEC
        if elapsed_s <= 0.0:
            return
        total_rate = self.n_cores * self._freq_ghz
        unhalted_rate = self._utilization * total_rate
        stalled_rate = unhalted_rate * (1.0 - self._boundness)
        self._total += total_rate * elapsed_s
        self._unhalted += unhalted_rate * elapsed_s
        self._stalled += stalled_rate * elapsed_s
        self._instructions += self.ips_rate() * elapsed_s
        self._energy += self.instantaneous_watts() * elapsed_s
        self._last_accrue_us = now

    def _notify_change(self) -> None:
        old = self.change
        self.change = self.kernel.event("cpu.change")
        old.succeed(None)


class TieredMemory:
    """Seed memory substrate: mask churn and full-vector accrual."""

    def __init__(
        self,
        kernel: Kernel,
        n_regions: int = 512,
        pages_per_region: int = 512,
        rng: Optional[np.random.Generator] = None,
        saturation_fraction: float = 0.98,
    ) -> None:
        if n_regions <= 0 or pages_per_region <= 0:
            raise ValueError("n_regions and pages_per_region must be positive")
        self.kernel = kernel
        self.n_regions = n_regions
        self.pages_per_region = pages_per_region
        self.rng = rng
        self.saturation_fraction = saturation_fraction

        self._rates = np.zeros(n_regions)
        self._local = np.ones(n_regions, dtype=bool)
        self._true_accesses = np.zeros(n_regions)
        self._accesses_at_last_scan = np.zeros(n_regions)
        self._last_scan_us = np.zeros(n_regions, dtype=np.int64)
        self._local_accesses = 0.0
        self._remote_accesses = 0.0
        self._bit_resets = 0
        self._pages_scanned = 0
        self._migrations = 0
        self._last_accrue_us = kernel.now
        self._scan_fault_probability = 0.0

    def set_rates(self, rates: Sequence[float]) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.n_regions,):
            raise ValueError(
                f"expected {self.n_regions} rates, got shape {rates.shape}"
            )
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        self._accrue()
        self._rates = rates.copy()

    @property
    def rates(self) -> np.ndarray:
        return self._rates.copy()

    def scan(self, region: int) -> ScanResult:
        self._check_region(region)
        self._accrue()
        now = self.kernel.now
        elapsed_us = int(now - self._last_scan_us[region])
        if (
            self._scan_fault_probability > 0.0
            and self.rng is not None
            and self.rng.random() < self._scan_fault_probability
        ):
            return ScanResult(
                region=region,
                set_bits=0,
                pages=self.pages_per_region,
                elapsed_us=elapsed_us,
                saturated=False,
                error=True,
            )
        accesses = (
            self._true_accesses[region] - self._accesses_at_last_scan[region]
        )
        set_bits = self._occupancy(accesses)
        self._accesses_at_last_scan[region] = self._true_accesses[region]
        self._last_scan_us[region] = now
        self._bit_resets += set_bits
        self._pages_scanned += self.pages_per_region
        saturated = set_bits >= self.saturation_fraction * self.pages_per_region
        return ScanResult(
            region=region,
            set_bits=set_bits,
            pages=self.pages_per_region,
            elapsed_us=elapsed_us,
            saturated=saturated,
        )

    def migrate(self, region: int, tier: Tier) -> bool:
        self._check_region(region)
        target_local = tier is Tier.LOCAL
        if self._local[region] == target_local:
            return False
        self._accrue()
        self._local[region] = target_local
        self._migrations += 1
        return True

    def migrate_many(self, regions: Iterable[int], tier: Tier) -> int:
        return sum(1 for region in regions if self.migrate(region, tier))

    def tier_of(self, region: int) -> Tier:
        self._check_region(region)
        return Tier.LOCAL if self._local[region] else Tier.REMOTE

    @property
    def n_local(self) -> int:
        return int(self._local.sum())

    @property
    def local_regions(self) -> np.ndarray:
        return np.flatnonzero(self._local)

    @property
    def remote_regions(self) -> np.ndarray:
        return np.flatnonzero(~self._local)

    def snapshot(self) -> MemorySnapshot:
        self._accrue()
        return MemorySnapshot(
            time_us=self.kernel.now,
            local_accesses=self._local_accesses,
            remote_accesses=self._remote_accesses,
            bit_resets=self._bit_resets,
            pages_scanned=self._pages_scanned,
            migrations=self._migrations,
        )

    def true_region_accesses(self) -> np.ndarray:
        self._accrue()
        return self._true_accesses.copy()

    def set_scan_fault_probability(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if probability > 0.0 and self.rng is None:
            raise ValueError("scan faults require an rng")
        self._scan_fault_probability = probability

    def _occupancy(self, accesses: float) -> int:
        pages = self.pages_per_region
        if accesses <= 0:
            return 0
        expected_fraction = 1.0 - np.exp(-accesses / pages)
        if self.rng is None:
            return int(round(pages * expected_fraction))
        return int(self.rng.binomial(pages, expected_fraction))

    def _accrue(self) -> None:
        now = self.kernel.now
        elapsed_s = (now - self._last_accrue_us) / SEC
        if elapsed_s <= 0:
            return
        delta = self._rates * elapsed_s
        self._true_accesses += delta
        self._local_accesses += float(delta[self._local].sum())
        self._remote_accesses += float(delta[~self._local].sum())
        self._last_accrue_us = now

    def _check_region(self, region: int) -> None:
        if not 0 <= region < self.n_regions:
            raise IndexError(
                f"region {region} out of range [0, {self.n_regions})"
            )


def zipf_rates(
    n_regions: int,
    profile: TraceProfile,
    permutation: np.ndarray,
) -> np.ndarray:
    """Seed rate derivation: weights rebuilt and renormalized per call."""
    n_active = max(1, int(round(profile.active_fraction * n_regions)))
    weights = 1.0 / np.arange(1, n_active + 1) ** profile.zipf_s
    weights /= weights.sum()
    rates = np.zeros(n_regions)
    rates[permutation[:n_active]] = profile.total_rate * weights
    return rates


class ZipfMemoryTrace(Workload):
    """Seed Zipf trace: full weight recomputation on every rate push."""

    def __init__(
        self,
        kernel,
        memory,
        rng: np.random.Generator,
        profile: TraceProfile = OBJECTSTORE_MEM,
    ) -> None:
        super().__init__(kernel)
        self.name = f"{profile.name}-trace"
        self.memory = memory
        self.rng = rng
        self.profile = profile
        self.permutation = rng.permutation(memory.n_regions)
        self.shifts = 0

    def apply_rates(self) -> None:
        self.memory.set_rates(
            zipf_rates(self.memory.n_regions, self.profile, self.permutation)
        )

    def shift_popularity(self) -> None:
        n_active = max(
            1,
            int(round(self.profile.active_fraction * self.memory.n_regions)),
        )
        n_shift = max(1, int(round(self.profile.shift_fraction * n_active)))
        chosen = self.rng.choice(n_active, size=n_shift, replace=False)
        self.permutation[chosen] = self.permutation[np.roll(chosen, 1)]
        self.shifts += 1

    def _run(self):
        self.apply_rates()
        while True:
            yield self.profile.shift_interval_us
            self.shift_popularity()
            self.apply_rates()

    def performance(self) -> PerformanceReport:
        snap = self.memory.snapshot()
        total = snap.total_accesses
        fraction = snap.local_accesses / total if total > 0 else 1.0
        return PerformanceReport(
            metric="local access fraction",
            value=fraction,
            higher_is_better=True,
        )


class TailBenchWorkload(Workload):
    """Seed TailBench loop: one HypervisorSnapshot dataclass per step."""

    def __init__(
        self,
        kernel,
        hypervisor: Hypervisor,
        rng: np.random.Generator,
        profile: DemandProfile = IMAGE_DNN,
        step_us: int = 25 * MS,
    ) -> None:
        super().__init__(kernel)
        self.name = profile.name
        self.hypervisor = hypervisor
        self.rng = rng
        self.profile = profile
        self.step_us = step_us
        self.latency_samples_ms: List[float] = []
        self._demand = (profile.base_low + profile.base_high) / 2.0
        self._burst_steps_left = 0
        self._ramp = 0.0

    def _next_demand(self) -> float:
        profile = self.profile
        if self._burst_steps_left > 0:
            self._burst_steps_left -= 1
            self._ramp = min(1.0, self._ramp + 0.5)
            level = (
                self._demand
                + (profile.burst_cores - self._demand) * self._ramp
            )
            return min(
                max(float(level + self.rng.normal(0.0, 0.2)), 0.0),
                float(self.hypervisor.n_cores),
            )
        self._ramp = 0.0
        if self.rng.random() < profile.burst_probability:
            self._burst_steps_left = int(
                self.rng.integers(
                    profile.burst_steps_min, profile.burst_steps_max + 1
                )
            )
            return self._next_demand()
        self._demand = min(
            max(
                float(self._demand + self.rng.normal(0.0, profile.wander)),
                profile.base_low,
            ),
            profile.base_high,
        )
        return self._demand

    def _run(self):
        previous = self.hypervisor.snapshot()
        while True:
            self.hypervisor.set_demand(self._next_demand())
            yield self.step_us
            current = self.hypervisor.snapshot()
            demand_cus = current.demand_cus - previous.demand_cus
            deficit_cus = current.deficit_cus - previous.deficit_cus
            previous = current
            deficit_ratio = (
                min(1.0, deficit_cus / demand_cus) if demand_cus > 0 else 0.0
            )
            jitter = float(self.rng.lognormal(mean=0.0, sigma=0.06))
            self.latency_samples_ms.append(
                self.profile.base_latency_ms
                * jitter
                * (1.0 + self.profile.starvation_penalty * deficit_ratio)
            )

    def performance(self) -> PerformanceReport:
        return PerformanceReport(
            metric="p99 latency (ms)",
            value=percentile(self.latency_samples_ms, 99),
            higher_is_better=False,
        )


class ObjectStoreWorkload(Workload):
    """Seed ObjectStore loop: per-sample pow and attribute dispatch."""

    name = "objectstore"

    def __init__(
        self,
        kernel,
        cpu,
        rng: np.random.Generator,
        base_latency_ms: float = 2.0,
        boundness: float = 0.9,
        freq_scaling: float = 0.9,
        sample_interval_us: int = 200 * MS,
        speedup_smoothing: float = 0.05,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_latency_ms = base_latency_ms
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        self._speedup_ewma = None
        self.speedup_smoothing = speedup_smoothing
        self.latency_samples_ms: List[float] = []

    def _speedup(self) -> float:
        ratio = self.cpu.frequency_ghz / self.cpu.nominal_freq_ghz
        instantaneous = ratio**self.freq_scaling
        if self._speedup_ewma is None:
            self._speedup_ewma = instantaneous
        else:
            self._speedup_ewma += self.speedup_smoothing * (
                instantaneous - self._speedup_ewma
            )
        return self._speedup_ewma

    def _run(self):
        while True:
            utilization = min(max(float(self.rng.normal(0.95, 0.02)), 0.85),
                              1.0)
            self.cpu.set_phase(
                utilization=utilization,
                boundness=self.boundness,
                freq_scaling=self.freq_scaling,
            )
            jitter = float(self.rng.lognormal(mean=0.0, sigma=0.08))
            self.latency_samples_ms.append(
                self.base_latency_ms * jitter / self._speedup()
            )
            yield self.sample_interval_us

    def performance(self) -> PerformanceReport:
        return PerformanceReport(
            metric="p99 latency (ms)",
            value=percentile(self.latency_samples_ms, 99),
            higher_is_better=False,
        )


class DiskSpeedWorkload(Workload):
    """Seed DiskSpeed loop: per-sample pow and attribute dispatch."""

    name = "diskspeed"

    def __init__(
        self,
        kernel,
        cpu,
        rng: np.random.Generator,
        base_throughput_rps: float = 5000.0,
        utilization: float = 0.6,
        boundness: float = 0.25,
        freq_scaling: float = 0.05,
        sample_interval_us: int = 200 * MS,
    ) -> None:
        super().__init__(kernel)
        self.cpu = cpu
        self.rng = rng
        self.base_throughput_rps = base_throughput_rps
        self.utilization = utilization
        self.boundness = boundness
        self.freq_scaling = freq_scaling
        self.sample_interval_us = sample_interval_us
        self.throughput_samples: List[float] = []

    def _run(self):
        while True:
            utilization = min(
                max(float(self.rng.normal(self.utilization, 0.03)), 0.3), 0.9
            )
            self.cpu.set_phase(
                utilization=utilization,
                boundness=self.boundness,
                freq_scaling=self.freq_scaling,
            )
            ratio = self.cpu.frequency_ghz / self.cpu.nominal_freq_ghz
            jitter = float(self.rng.normal(1.0, 0.02))
            self.throughput_samples.append(
                self.base_throughput_rps * ratio**self.freq_scaling * jitter
            )
            yield self.sample_interval_us

    def performance(self) -> PerformanceReport:
        if not self.throughput_samples:
            raise ValueError("no samples collected")
        return PerformanceReport(
            metric="throughput (req/s)",
            value=float(np.mean(self.throughput_samples)),
            higher_is_better=True,
        )
