"""Kernel microbenchmarks, runnable against any kernel implementation.

Each benchmark takes an *implementation* namespace exposing ``Kernel``,
``SimQueue``, and ``QUEUE_TIMEOUT`` — either :mod:`repro.sim` (the live,
optimized kernel) or :mod:`repro.perf.legacy` (the frozen seed kernel) —
so ``repro bench`` can report speedups measured on the same machine in
the same process.

The scenarios isolate the hot paths this PR attacks:

* ``sleep_hot_loop`` — pure event dispatch: concurrent processes doing
  integer sleeps.  Exercises heap entries, the inlined resume path, and
  scheduling allocation behavior.
* ``queue_timeout_churn`` — the SOL Actuator pattern: producer/consumer
  pairs where every bounded ``get`` is won by the item, not the
  timeout.  On the seed kernel each such get leaks a dead timer into
  the heap (the motivating pathology); cadence mirrors SmartHarvest
  (~1 ms predictions, 100 ms actuation bound) across 8 agents.
* ``kill_waiter_churn`` — the SRE CleanUp path: killing processes that
  wait on a shared event, which was O(waiters) per kill in the seed
  (list ``remove``) and is O(1) (swap-remove) now.

Timing uses best-of-``repeats`` wall clock per scenario — the standard
microbenchmark guard against scheduler noise and cold caches.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict

__all__ = ["MICROBENCHMARKS", "BenchResult", "run_microbench"]


@dataclass
class BenchResult:
    """One scenario × one implementation measurement."""

    name: str
    events: int
    wall_s: float

    @property
    def ns_per_event(self) -> float:
        return self.wall_s / self.events * 1e9

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s


def _bench_sleep_hot_loop(impl: Any, scale: float) -> BenchResult:
    n_procs = 10
    iters = max(1, int(20_000 * scale))
    kernel = impl.Kernel()

    def proc():
        for _ in range(iters):
            yield 1

    for i in range(n_procs):
        kernel.spawn(proc(), name=f"p{i}")
    started = time.perf_counter()
    kernel.run()
    return BenchResult(
        "sleep_hot_loop", n_procs * iters, time.perf_counter() - started
    )


def _bench_queue_timeout_churn(impl: Any, scale: float) -> BenchResult:
    n_pairs = 8
    put_interval_us = 1000     # ~SmartHarvest prediction cadence
    timeout_us = 100_000       # SmartHarvest max actuation delay
    iters = max(1, int(4_000 * scale))
    timeout_sentinel = impl.QUEUE_TIMEOUT
    kernel = impl.Kernel()

    def producer(queue):
        for i in range(iters):
            queue.put(i)
            yield put_interval_us

    def consumer(queue):
        got = 0
        while got < iters:
            item = yield from queue.get(timeout_us=timeout_us)
            if item is not timeout_sentinel:
                got += 1

    for n in range(n_pairs):
        queue = impl.SimQueue(kernel, capacity=1)
        kernel.spawn(producer(queue), name=f"prod{n}")
        kernel.spawn(consumer(queue), name=f"cons{n}")
    started = time.perf_counter()
    kernel.run()
    return BenchResult(
        "queue_timeout_churn", n_pairs * iters, time.perf_counter() - started
    )


def _bench_kill_waiter_churn(impl: Any, scale: float) -> BenchResult:
    # Thousands of concurrently-waiting processes is a dense node, not a
    # stress fantasy: every SimQueue consumer, join, and safeguard wait
    # parks a process on an event.  The count deliberately ignores
    # ``scale``: the seed's per-kill cost is O(waiters), so shrinking the
    # population in --quick runs would change the measured *ratio* and
    # make quick CI reports incomparable to the committed full baseline.
    # The whole scenario is a few tens of milliseconds regardless.
    n_waiters = 3_000
    kernel = impl.Kernel()
    event = kernel.event("shared")

    def waiter():
        yield event

    processes = [
        kernel.spawn(waiter(), name=f"w{i}") for i in range(n_waiters)
    ]
    kernel.run(until=1)  # everyone is registered on the event now
    # Kill in a strided permutation: registration-order teardown is the
    # one order the seed's list.remove() handled in O(1) (always a hit
    # at index 0); any other order pays an O(waiters) scan per kill.
    stride = 7
    while math.gcd(stride, n_waiters) != 1:
        stride += 2
    order = [(i * stride) % n_waiters for i in range(n_waiters)]
    started = time.perf_counter()
    for index in order:
        processes[index].kill()
    return BenchResult(
        "kill_waiter_churn", n_waiters, time.perf_counter() - started
    )


#: Scenario registry: name -> callable(impl, scale) -> BenchResult.
MICROBENCHMARKS: Dict[str, Callable[[Any, float], BenchResult]] = {
    "sleep_hot_loop": _bench_sleep_hot_loop,
    "queue_timeout_churn": _bench_queue_timeout_churn,
    "kill_waiter_churn": _bench_kill_waiter_churn,
}


def run_microbench(
    name: str, impl: Any, scale: float = 1.0, repeats: int = 3
) -> BenchResult:
    """Best-of-``repeats`` run of one scenario against one implementation."""
    bench = MICROBENCHMARKS[name]
    best: BenchResult = bench(impl, scale)
    for _ in range(repeats - 1):
        result = bench(impl, scale)
        if result.wall_s < best.wall_s:
            best = result
    return best
