"""Frozen copy of the seed (pre-optimization) kernel and queue.

This module is the *measurement baseline* for ``repro bench``: the
microbenchmarks run the same workload against this implementation and
against :mod:`repro.sim.kernel`, and report the ratio.  Keeping the
seed hot path in-tree makes the claimed speedups reproducible on any
machine forever, instead of only relative to a historical commit.

Never import this from production code; it exists only so the perf
trajectory has a fixed origin.  It intentionally preserves the seed's
inefficiencies: closure-per-resume scheduling, uncancellable
``call_later`` timers, a fresh ``Event`` per queue ``get``, and O(n)
waiter removal.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from repro.sim.errors import (
    KernelStopped,
    ProcessKilled,
    SchedulingError,
    SimulationError,
)

__all__ = ["Event", "Process", "Kernel", "QUEUE_TIMEOUT", "SimQueue"]



class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` transitions it to
    *succeeded* and resumes every waiting process.  Further ``succeed``
    calls are ignored (first writer wins), which makes events safe to use
    for get-with-timeout races in :class:`~repro.sim.queue.SimQueue`.
    """

    __slots__ = (
        "kernel", "name", "_value", "_succeeded", "_waiters", "_callbacks"
    )

    def __init__(self, kernel: "Kernel", name: str = "event") -> None:
        self.kernel = kernel
        self.name = name
        self._value: Any = None
        self._succeeded = False
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def succeeded(self) -> bool:
        """Whether the event has fired."""
        return self._succeeded

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` while pending)."""
        return self._value

    def succeed(self, value: Any = None) -> bool:
        """Fire the event, waking all waiters at the current sim time.

        Returns:
            ``True`` if this call fired the event, ``False`` if the event
            had already fired (the call is then a no-op).
        """
        if self._succeeded:
            return False
        self._succeeded = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.kernel._schedule_resume(process, self._value)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self._value)
        return True

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires.

        Runs synchronously inside :meth:`succeed` (same simulated instant).
        If the event has already fired, the callback runs immediately.
        """
        if self._succeeded:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def _add_waiter(self, process: "Process") -> None:
        if self._succeeded:
            self.kernel._schedule_resume(process, self._value)
        else:
            self._waiters.append(process)

    def _discard_waiter(self, process: "Process") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "succeeded" if self._succeeded else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A generator-based simulated process.

    Created via :meth:`Kernel.spawn`.  A process terminates when its
    generator returns, raises, or is :meth:`kill`-ed.  Its
    :attr:`completion` event fires with the generator's return value,
    letting other processes ``yield process`` to join it.
    """

    __slots__ = (
        "kernel",
        "name",
        "generator",
        "completion",
        "_alive",
        "_waiting_on",
        "_error",
    )

    def __init__(
        self,
        kernel: "Kernel",
        generator: Generator[Any, Any, Any],
        name: str,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.generator = generator
        self.completion = Event(kernel, name=f"{name}.completion")
        self._alive = True
        self._waiting_on: Optional[Event] = None
        self._error: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        """Whether the process is still running (or waiting)."""
        return self._alive

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that terminated the process, if any."""
        return self._error

    def kill(self) -> None:
        """Forcibly terminate the process.

        :class:`ProcessKilled` is thrown into the generator so ``finally``
        blocks run.  Killing a dead process is a no-op.  This is the
        primitive under the SOL SRE *CleanUp* path.
        """
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        try:
            self.generator.throw(ProcessKilled(f"process {self.name!r} killed"))
        except (ProcessKilled, StopIteration):
            pass
        finally:
            self._finish(value=None)

    # -- kernel-internal ---------------------------------------------------

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, interpreting its request."""
        if not self._alive:
            return
        self._waiting_on = None
        try:
            request = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessKilled:
            self._finish(value=None)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, int):
            if request < 0:
                self._crash(SchedulingError(f"negative sleep: {request}"))
                return
            self.kernel._schedule_resume(self, None, delay=request)
        elif isinstance(request, Event):
            self._waiting_on = request
            request._add_waiter(self)
        elif isinstance(request, Process):
            self._waiting_on = request.completion
            request.completion._add_waiter(self)
        else:
            self._crash(
                SimulationError(
                    f"process {self.name!r} yielded unsupported value "
                    f"{request!r}; expected int, Event, or Process"
                )
            )

    def _crash(self, error: BaseException) -> None:
        try:
            self.generator.throw(error)
        except BaseException as exc:  # noqa: BLE001 - report any failure
            self._error = exc
            self._finish(value=None)
            if not isinstance(exc, (ProcessKilled, StopIteration)):
                raise

    def _finish(self, value: Any) -> None:
        if not self._alive:
            return
        self._alive = False
        self.generator.close()
        self.completion.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Kernel:
    """Event loop: a priority queue of (time, sequence, action) triples.

    Ties at the same timestamp are broken by insertion order, so the
    simulation is fully deterministic.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._stopped = False
        self._processes: List[Process] = []

    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    # -- public API --------------------------------------------------------

    def event(self, name: str = "event") -> Event:
        """Create a fresh pending :class:`Event` bound to this kernel."""
        return Event(self, name=name)

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Register a generator as a process; it starts at the current time."""
        self._check_running()
        process = Process(self, generator, name)
        self._processes.append(process)
        self._schedule_resume(process, None)
        return process

    def call_at(self, time_us: int, action: Callable[[], None]) -> None:
        """Schedule a plain callback at an absolute simulation time."""
        self._check_running()
        if time_us < self._now:
            raise SchedulingError(
                f"cannot schedule at {time_us} (now is {self._now})"
            )
        heapq.heappush(self._heap, (time_us, next(self._sequence), action))

    def call_later(self, delay_us: int, action: Callable[[], None]) -> None:
        """Schedule a plain callback ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise SchedulingError(f"negative delay: {delay_us}")
        self.call_at(self._now + delay_us, action)

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the heap drains or time would pass ``until``.

        Args:
            until: absolute stop time in microseconds.  When provided, the
                clock is advanced to exactly ``until`` on return even if
                the last event fired earlier, so back-to-back ``run`` calls
                compose predictably.

        Returns:
            The simulation time at return.
        """
        self._check_running()
        while self._heap:
            time_us, _seq, action = self._heap[0]
            if until is not None and time_us > until:
                break
            heapq.heappop(self._heap)
            self._now = time_us
            action()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if none are pending."""
        self._check_running()
        if not self._heap:
            return False
        time_us, _seq, action = heapq.heappop(self._heap)
        self._now = time_us
        action()
        return True

    def stop(self) -> None:
        """Halt the kernel: kill all live processes and drop queued events."""
        if self._stopped:
            return
        self._stopped = True
        for process in self._processes:
            if process.alive:
                process.kill()
        self._heap.clear()

    @property
    def pending_events(self) -> int:
        """Number of events waiting in the heap (for tests/diagnostics)."""
        return len(self._heap)

    def live_processes(self) -> Iterable[Process]:
        """Yield the processes that are still alive."""
        return (p for p in self._processes if p.alive)

    # -- internals -----------------------------------------------------------

    def _schedule_resume(
        self, process: Process, value: Any, delay: int = 0
    ) -> None:
        if self._stopped:
            return

        def resume() -> None:
            process._step(value)

        heapq.heappush(
            self._heap, (self._now + delay, next(self._sequence), resume)
        )

    def _check_running(self) -> None:
        if self._stopped:
            raise KernelStopped("kernel has been stopped")




class _Timeout:
    """Sentinel returned by :meth:`SimQueue.get` when the wait expires."""

    def __repr__(self) -> str:
        return "QUEUE_TIMEOUT"


#: Singleton sentinel distinguishing "timed out" from a ``None`` message.
QUEUE_TIMEOUT = _Timeout()


class SimQueue:
    """FIFO queue for inter-process messaging inside the simulator.

    Unlike a real queue there is no locking — the kernel is single
    threaded — but the *temporal* semantics match: a consumer blocked in
    :meth:`get` wakes at the exact simulated instant an item arrives or
    its timeout elapses, whichever is first.

    Args:
        kernel: owning simulation kernel.
        capacity: maximum queued items; ``put`` on a full queue drops the
            *oldest* item.  The SOL prediction queue uses capacity 1 so the
            Actuator always sees the freshest prediction (stale ones are
            superseded, mirroring the paper's freshness-first design).
    """

    def __init__(self, kernel: "Kernel", capacity: Optional[int] = None,
                 name: str = "queue") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Number of items displaced by capacity overflow (superseded)."""
        return self._dropped

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting consumer if any."""
        while self._getters:
            waiter = self._getters.popleft()
            if waiter.succeed(item):
                return
        self._items.append(item)
        if self.capacity is not None and len(self._items) > self.capacity:
            self._items.popleft()
            self._dropped += 1

    def try_get(self) -> Any:
        """Non-blocking get: the head item, or ``QUEUE_TIMEOUT`` if empty."""
        if self._items:
            return self._items.popleft()
        return QUEUE_TIMEOUT

    def get(self, timeout_us: Optional[int] = None
            ) -> Generator[Any, Any, Any]:
        """Process-side blocking get.

        Usage inside a process generator::

            item = yield from queue.get(timeout_us=5 * SEC)
            if item is QUEUE_TIMEOUT:
                ...take the safe default action...

        Args:
            timeout_us: maximum simulated wait; ``None`` waits forever.

        Returns:
            The dequeued item, or :data:`QUEUE_TIMEOUT` on expiry.
        """
        if self._items:
            return self._items.popleft()
        waiter = self.kernel.event(name=f"{self.name}.get")
        self._getters.append(waiter)
        if timeout_us is not None:
            self.kernel.call_later(
                timeout_us, lambda: waiter.succeed(QUEUE_TIMEOUT)
            )
        value = yield waiter
        return value

    def clear(self) -> int:
        """Drop all queued items; returns how many were dropped."""
        count = len(self._items)
        self._items.clear()
        return count
