"""The ``repro bench`` harness: measure, record, and gate performance.

Produces ``BENCH_kernel.json`` (``--suite kernel``) and
``BENCH_ml.json`` (``--suite ml``) so every perf-affecting PR leaves a
recorded trajectory instead of a claim:

* **Microbenchmarks** run each scenario against both the live
  implementation and its frozen pre-optimization copy — kernel suite:
  :mod:`repro.sim` vs :mod:`repro.perf.legacy`; ML suite:
  :mod:`repro.ml` / :mod:`repro.node.hypervisor` vs
  :mod:`repro.perf.legacy_ml` — same machine, same process.  The
  reported *speedups* are therefore machine-independent ratios — that is
  what :func:`compare_reports` gates on in CI.
* **End-to-end** (kernel suite) runs a real fleet scenario and a
  ``reproduce-all`` subset on the live stack, verifies the fleet digest
  against the pinned seed value (an optimization that changes results is
  a bug, not a speedup), and compares wall-clock against
  :data:`SEED_BASELINES` — seed-commit wall times measured on the
  reference container (best-of-3; see EXPERIMENTS.md).  Absolute
  seconds are machine-dependent; the speedup column is indicative, the
  digest check is not.
* **End-to-end** (ML suite) measures every ``reproduce-all`` work unit
  once at full scale and reports (a) the measured serial full-pass
  wall, (b) the *modeled* 8-worker makespans of the artifact-granular
  and sub-artifact-granular parallel passes (an LPT schedule over the
  measured unit walls — the reference container has one core, so a
  multi-worker wall cannot be measured directly there; on an N-core
  host the measured wall tracks the model), and (c) a digest check that
  the sub-artifact-sharded pass still reproduces the golden pinned
  artifacts bit-exactly.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Callable, Dict, List

from repro.perf.baselines import (
    GOLDEN_EXPERIMENT_DIGESTS,
    GOLDEN_EXPERIMENT_SCALE,
    GOLDEN_FLEET_DIGESTS,
    SEED_E2E_WALL_S,
)
from repro.perf.golden import KERNEL_IMPLS, ML_IMPLS, WORKLOADS_IMPLS
from repro.perf.microbench import MICROBENCHMARKS, run_microbench
from repro.perf.microbench_ml import ML_MICROBENCHMARKS, run_ml_microbench
from repro.perf.microbench_workloads import (
    WORKLOADS_MICROBENCHMARKS,
    run_workloads_microbench,
)

__all__ = [
    "SEED_BASELINES",
    "build_all_report",
    "build_ml_report",
    "build_report",
    "build_workloads_report",
    "compare_reports",
    "compare_warnings",
    "merge_suite_reports",
    "render_comparison",
    "render_report",
    "write_report",
]

SCHEMA_VERSION = 2

#: Wall-clock of the end-to-end scenarios at the seed commit (pre-
#: optimization).  Digests pin result equivalence; these pin the
#: "before" of the before/after table.  Single source of truth:
#: :mod:`repro.perf.baselines` (shared with the golden-digest tests).
SEED_BASELINES: Dict[str, float] = SEED_E2E_WALL_S

#: The pinned seed digest for the end-to-end fleet scenario.
FLEET_DIGEST = GOLDEN_FLEET_DIGESTS["mixed_6x15_seed3"]

#: Artifacts of the reproduce-all end-to-end subset (cheap but covering
#: tables, a harvest figure, and hence all three runtime loops).
REPRODUCE_SUBSET = ("table1", "table2", "fig6-left")
REPRODUCE_SCALE = 0.2


def _bench_result_dict(result: Any) -> Dict[str, Any]:
    return {
        "events": result.events,
        "wall_s": round(result.wall_s, 6),
        "ns_per_event": round(result.ns_per_event, 1),
        "events_per_sec": round(result.events_per_sec, 1),
    }


def _run_suite(
    benchmarks: Dict[str, Any],
    runner: Callable[..., Any],
    live: Any,
    legacy: Any,
    scale: float,
    repeats: int,
) -> Dict[str, Any]:
    """All scenarios, optimized vs legacy, interleaved for fairness.

    Repeats alternate optimized/legacy (best-of-N each) so slow drift in
    the host's effective clock rate — the dominant noise source on
    shared runners — lands on both sides of every ratio instead of
    biasing whichever implementation ran last.
    """
    section: Dict[str, Any] = {}
    speedups: List[float] = []
    for name in benchmarks:
        optimized = frozen = None
        for _ in range(repeats):
            candidate_opt = runner(name, live, scale, 1)
            candidate_leg = runner(name, legacy, scale, 1)
            if optimized is None or candidate_opt.wall_s < optimized.wall_s:
                optimized = candidate_opt
            if frozen is None or candidate_leg.wall_s < frozen.wall_s:
                frozen = candidate_leg
        speedup = frozen.wall_s / optimized.wall_s
        speedups.append(speedup)
        section[name] = {
            "optimized": _bench_result_dict(optimized),
            "legacy": _bench_result_dict(frozen),
            "speedup": round(speedup, 2),
        }
    section["geomean_speedup"] = round(
        math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
    )
    return section


def run_microbenchmarks(
    scale: float = 1.0, repeats: int = 3
) -> Dict[str, Any]:
    """Kernel scenarios, optimized vs the frozen seed kernel."""
    return _run_suite(
        MICROBENCHMARKS, run_microbench,
        KERNEL_IMPLS["current"], KERNEL_IMPLS["seed"],
        scale, repeats,
    )


def run_ml_microbenchmarks(
    scale: float = 1.0, repeats: int = 3
) -> Dict[str, Any]:
    """ML epoch scenarios, vectorized vs the frozen per-class path."""
    return _run_suite(
        ML_MICROBENCHMARKS, run_ml_microbench,
        ML_IMPLS["current"], ML_IMPLS["seed"],
        scale, repeats,
    )


def run_workloads_microbenchmarks(
    scale: float = 1.0, repeats: int = 3
) -> Dict[str, Any]:
    """Workload/substrate loops, vectorized vs the frozen seed path."""
    return _run_suite(
        WORKLOADS_MICROBENCHMARKS, run_workloads_microbench,
        WORKLOADS_IMPLS["current"], WORKLOADS_IMPLS["seed"],
        scale, repeats,
    )


def run_end_to_end() -> Dict[str, Any]:
    """Fleet + reproduce-subset wall clock on the live stack."""
    # Imported lazily: the full stack is irrelevant to --quick runs.
    from repro.experiments.driver import FleetDriver, reproduce_all
    from repro.fleet.config import FleetConfig

    config = FleetConfig(n_nodes=6, agent="mixed", seed=3, duration_s=15)
    started = time.perf_counter()
    aggregate = FleetDriver(config, workers=1).run()
    fleet_wall = time.perf_counter() - started
    digest = aggregate.digest()

    started = time.perf_counter()
    runs = reproduce_all(only=list(REPRODUCE_SUBSET), scale=REPRODUCE_SCALE)
    reproduce_wall = time.perf_counter() - started

    def against_seed(key: str, wall: float) -> Dict[str, Any]:
        seed = SEED_BASELINES.get(key)
        entry: Dict[str, Any] = {"wall_s": round(wall, 3)}
        if seed is not None:
            entry["seed_wall_s"] = seed
            entry["speedup_vs_seed"] = round(seed / wall, 2)
        return entry

    fleet_entry = against_seed("fleet_mixed_6x15", fleet_wall)
    fleet_entry.update(
        nodes=config.n_nodes,
        sim_seconds=config.duration_s,
        digest=digest,
        digest_ok=digest == FLEET_DIGEST,
    )
    reproduce_entry = against_seed("reproduce_subset", reproduce_wall)
    reproduce_entry.update(
        artifacts=list(REPRODUCE_SUBSET),
        scale=REPRODUCE_SCALE,
        # Milliseconds with µs resolution: the tables finish in well
        # under a millisecond, so second-resolution rounding reported
        # them as 0.0 and made the per-artifact split useless.
        runs_ms={
            run.name: round(run.wall_seconds * 1000.0, 3) for run in runs
        },
    )
    return {
        "fleet_mixed_6x15": fleet_entry,
        "reproduce_subset": reproduce_entry,
    }


def _lpt_makespan(durations: List[float], workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers``.

    The standard greedy bound: sort jobs descending, always hand the
    next job to the least-loaded worker.  This is how the parallel
    driver's ``imap_unordered`` behaves in the limit of cheap dispatch,
    so it models the multi-worker wall from single-core unit timings.
    """
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def run_ml_end_to_end(workers: int = 8) -> Dict[str, Any]:
    """Full reproduce-all pass economics + sharded-pass digest check."""
    from repro.experiments.common import experiment_digest
    from repro.experiments.driver import (
        ARTIFACTS,
        _run_series_unit,
        artifact_units,
        reproduce_all,
    )

    # Measure every (artifact, series) unit once at full scale.  The
    # serial full-pass wall is their sum plus (negligible) assembly.
    unit_walls: Dict[str, List[float]] = {}
    digests: Dict[str, str] = {}
    collected: Dict[str, Dict[Any, Any]] = {}
    started = time.perf_counter()
    for name in ARTIFACTS:
        unit_walls[name] = []
        collected[name] = {}
        for _name, series in artifact_units(name, scale=1.0):
            _n, key, payload, wall = _run_series_unit((name, series, 1.0))
            unit_walls[name].append(wall)
            collected[name][key] = payload
    from repro.experiments.driver import _assemble_artifact

    for name in ARTIFACTS:
        run = _assemble_artifact(
            name, 1.0, collected[name], sum(unit_walls[name])
        )
        digests[name] = experiment_digest(run.result)
    serial_wall = time.perf_counter() - started

    artifact_durations = [sum(walls) for walls in unit_walls.values()]
    unit_durations = [w for walls in unit_walls.values() for w in walls]
    artifact_span = _lpt_makespan(artifact_durations, workers)
    series_span = _lpt_makespan(unit_durations, workers)

    # Golden check: the sub-artifact-sharded parallel path must still
    # reproduce the pinned artifact digests bit-exactly.
    check_started = time.perf_counter()
    golden_runs = reproduce_all(
        parallel=True,
        workers=2,
        only=list(GOLDEN_EXPERIMENT_DIGESTS),
        scale=GOLDEN_EXPERIMENT_SCALE,
        granularity="series",
    )
    golden_ok = all(
        experiment_digest(run.result) == GOLDEN_EXPERIMENT_DIGESTS[run.name]
        for run in golden_runs
    )
    check_wall = time.perf_counter() - check_started

    return {
        "reproduce_full_pass": {
            "wall_s": round(serial_wall, 3),
            "artifacts": len(artifact_durations),
            "work_units": len(unit_durations),
            "longest_artifact_s": round(max(artifact_durations), 3),
            "longest_unit_s": round(max(unit_durations), 3),
            "modeled_makespan_artifact_granular_s": round(artifact_span, 3),
            "modeled_makespan_subartifact_s": round(series_span, 3),
            "modeled_workers": workers,
            "modeled_speedup": round(artifact_span / series_span, 2),
            # µs resolution: the tables run in tens of µs and must not
            # round to 0.0 (the satellite fix that introduced runs_ms).
            "per_artifact_wall_s": {
                name: round(sum(walls), 6)
                for name, walls in unit_walls.items()
            },
            "digests": digests,
        },
        "sharded_golden_artifacts": {
            "wall_s": round(check_wall, 3),
            "artifacts": list(GOLDEN_EXPERIMENT_DIGESTS),
            "scale": GOLDEN_EXPERIMENT_SCALE,
            "digest_ok": golden_ok,
        },
    }


def run_workloads_end_to_end() -> Dict[str, Any]:
    """Incremental reproduction: cold-vs-warm cached pass + digest check.

    Runs the golden ``fig6-left`` artifact twice through a fresh result
    cache in a temporary directory: the cold pass executes and stores
    every unit, the warm pass must execute *zero* units (all-hit) and
    assemble the same rows — verified against the pinned golden digest,
    not just self-consistency.
    """
    import tempfile

    from repro.cache import ResultCache
    from repro.experiments.common import experiment_digest
    from repro.experiments.driver import reproduce_all

    artifact = "fig6-left"
    golden = GOLDEN_EXPERIMENT_DIGESTS[artifact]
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_cache = ResultCache(tmp)
        started = time.perf_counter()
        cold_runs = reproduce_all(
            only=[artifact], scale=GOLDEN_EXPERIMENT_SCALE, cache=cold_cache
        )
        cold_wall = time.perf_counter() - started
        warm_cache = ResultCache(tmp)
        started = time.perf_counter()
        warm_runs = reproduce_all(
            only=[artifact], scale=GOLDEN_EXPERIMENT_SCALE, cache=warm_cache
        )
        warm_wall = time.perf_counter() - started
    cold_digest = experiment_digest(cold_runs[0].result)
    warm_digest = experiment_digest(warm_runs[0].result)
    return {
        "cache_warm_reproduce": {
            "artifact": artifact,
            "scale": GOLDEN_EXPERIMENT_SCALE,
            "wall_s": round(cold_wall, 3),
            "warm_wall_s": round(warm_wall, 3),
            "warm_speedup": round(cold_wall / warm_wall, 1),
            "cold_stats": cold_cache.stats.render(),
            "warm_stats": warm_cache.stats.render(),
            "all_hit": warm_cache.stats.misses == 0
            and warm_cache.stats.hits > 0,
            "digest_ok": cold_digest == warm_digest == golden,
        }
    }


def build_report(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """The full ``repro bench`` kernel-suite report.

    ``quick`` shrinks the microbenchmarks (~4× fewer events) and skips
    the end-to-end section; speedup ratios remain comparable, which is
    all the CI regression gate consumes.
    """
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "suite": "kernel",
        "quick": quick,
        "microbench": run_microbenchmarks(
            scale=0.25 if quick else 1.0, repeats=repeats
        ),
    }
    if not quick:
        report["end_to_end"] = run_end_to_end()
    return report


def build_ml_report(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """The ``repro bench --suite ml`` report (same quick semantics)."""
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "suite": "ml",
        "quick": quick,
        "microbench": run_ml_microbenchmarks(
            scale=0.25 if quick else 1.0, repeats=repeats
        ),
    }
    if not quick:
        report["end_to_end"] = run_ml_end_to_end()
    return report


def build_workloads_report(
    quick: bool = False, repeats: int = 3
) -> Dict[str, Any]:
    """The ``repro bench --suite workloads`` report (same semantics)."""
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "suite": "workloads",
        "quick": quick,
        "microbench": run_workloads_microbenchmarks(
            scale=0.25 if quick else 1.0, repeats=repeats
        ),
    }
    if not quick:
        report["end_to_end"] = run_workloads_end_to_end()
    return report


def merge_suite_reports(
    reports: Dict[str, Dict[str, Any]], quick: bool = False
) -> Dict[str, Any]:
    """Merge per-suite bench reports into one ``suite: "all"`` report.

    Benchmark names are namespaced ``<suite>/<name>`` so the merged
    report stays a valid input to :func:`compare_reports` /
    :func:`render_comparison`; the merged ``geomean_speedup`` spans
    every microbenchmark of every suite, and per-suite geomeans are
    kept under ``suites``.
    """
    merged: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "suite": "all",
        "quick": quick,
        "microbench": {},
        "suites": {},
    }
    speedups: List[float] = []
    for suite, report in reports.items():
        micro = report.get("microbench", {})
        for name, entry in micro.items():
            if isinstance(entry, dict) and "speedup" in entry:
                merged["microbench"][f"{suite}/{name}"] = entry
                speedups.append(entry["speedup"])
        merged["suites"][suite] = {
            "geomean_speedup": micro.get("geomean_speedup")
        }
        for name, entry in report.get("end_to_end", {}).items():
            merged.setdefault("end_to_end", {})[f"{suite}/{name}"] = entry
    if speedups:
        merged["microbench"]["geomean_speedup"] = round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
        )
    return merged


def build_all_report(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """The ``repro bench --suite all`` report: every suite, one file.

    Runs the kernel, ML, and workloads suites in sequence and merges
    them (:func:`merge_suite_reports`) so one invocation leaves one
    report covering every microbenchmark and end-to-end check.
    """
    return merge_suite_reports(
        {
            "kernel": build_report(quick=quick, repeats=repeats),
            "ml": build_ml_report(quick=quick, repeats=repeats),
            "workloads": build_workloads_report(quick=quick, repeats=repeats),
        },
        quick=quick,
    )


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_reports(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.25,
    gate: str = "each",
) -> List[str]:
    """Regressions of ``new`` against a committed baseline report.

    Only machine-independent quantities are gated: per-scenario
    optimized-vs-legacy speedups (each may not fall more than
    ``max_regression`` below the baseline ratio) and the end-to-end
    digest check (must not flip to False).  Returns human-readable
    problem strings; empty means pass.

    ``gate`` selects the granularity: ``"each"`` (default) floors every
    shared benchmark individually; ``"geomean"`` floors only the
    geometric-mean ratio across shared benchmarks — the right gate for
    tight thresholds (like the tracer's 5% overhead budget), where
    single-benchmark measurement noise would dominate an individual
    floor but averages out across the suite.

    Benchmarks present in only one report are *not* problems — they are
    warnings (:func:`compare_warnings`): a renamed or newly-added
    scenario should not hard-fail a comparison against an older report.
    """
    problems: List[str] = []
    new_micro = new.get("microbench", {})
    ratios: List[float] = []
    for name, entry in baseline.get("microbench", {}).items():
        if not isinstance(entry, dict) or "speedup" not in entry:
            continue
        current = new_micro.get(name)
        if not isinstance(current, dict) or "speedup" not in current:
            continue  # one-sided benchmark: warned, not gated
        ratios.append(current["speedup"] / entry["speedup"])
        if gate != "each":
            continue
        floor = entry["speedup"] * (1.0 - max_regression)
        if current["speedup"] < floor:
            problems.append(
                f"microbench {name!r} speedup regressed: "
                f"{current['speedup']:.2f}x < floor {floor:.2f}x "
                f"(baseline {entry['speedup']:.2f}x)"
            )
    if gate == "geomean" and ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if geomean < 1.0 - max_regression:
            problems.append(
                f"suite geomean speedup ratio regressed: "
                f"{geomean:.3f} < floor {1.0 - max_regression:.3f} "
                f"(over {len(ratios)} shared benchmark(s))"
            )
    for name, entry in new.get("end_to_end", {}).items():
        if not isinstance(entry, dict):
            continue
        if entry.get("digest_ok") is False:
            problems.append(
                f"end-to-end {name!r} digest mismatch: "
                "optimization changed results"
            )
        if entry.get("all_hit") is False:
            problems.append(
                f"end-to-end {name!r}: warm cached pass re-executed units "
                "(not all-hit)"
            )
    return problems


def compare_warnings(
    new: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Benchmarks present in only one of two reports (either side).

    These make a comparison *partial*, not failed — callers print them
    as warnings while :func:`compare_reports` gates only on benchmarks
    both reports measured.  Also flags a suite mismatch, the most common
    way to end up with fully disjoint benchmark sets.
    """

    def measured(report: Dict[str, Any]) -> set:
        return {
            name
            for name, entry in report.get("microbench", {}).items()
            if isinstance(entry, dict) and "speedup" in entry
        }

    warnings: List[str] = []
    new_suite = new.get("suite", "?")
    baseline_suite = baseline.get("suite", "?")
    if new_suite != baseline_suite:
        warnings.append(
            f"comparing different suites ({new_suite!r} vs "
            f"{baseline_suite!r})"
        )
    new_names, baseline_names = measured(new), measured(baseline)
    only_baseline = sorted(baseline_names - new_names)
    only_new = sorted(new_names - baseline_names)
    if only_baseline:
        warnings.append(
            "benchmarks only in the baseline report (not compared): "
            + ", ".join(only_baseline)
        )
    if only_new:
        warnings.append(
            "benchmarks only in the new report (not compared): "
            + ", ".join(only_new)
        )
    return warnings


def render_comparison(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    new_label: str = "new",
    baseline_label: str = "baseline",
) -> str:
    """Per-benchmark speedup-ratio table between two bench reports.

    The ``ratio`` column is ``new speedup / baseline speedup`` — the
    machine-independent quantity the CI gate consumes; < 1.0 means the
    optimized-vs-legacy advantage shrank relative to the baseline
    report.
    """
    lines = [f"== bench compare: {new_label} vs {baseline_label} =="]
    new_suite = new.get("suite", "?")
    baseline_suite = baseline.get("suite", "?")
    if new_suite != baseline_suite:
        lines.append(
            f"  WARNING: comparing different suites "
            f"({new_suite!r} vs {baseline_suite!r})"
        )
    new_micro = new.get("microbench", {})
    baseline_micro = baseline.get("microbench", {})
    names = [
        name for name, entry in baseline_micro.items()
        if isinstance(entry, dict) and "speedup" in entry
    ]
    width = max((len(name) for name in names), default=8)
    lines.append(
        f"  {'benchmark':{width}s}  {new_label[:12]:>12s}  "
        f"{baseline_label[:12]:>12s}  {'ratio':>6s}"
    )
    ratios: List[float] = []
    for name in names:
        baseline_speedup = baseline_micro[name]["speedup"]
        entry = new_micro.get(name)
        if not isinstance(entry, dict) or "speedup" not in entry:
            lines.append(f"  {name:{width}s}  {'missing':>12s}")
            continue
        ratio = entry["speedup"] / baseline_speedup
        ratios.append(ratio)
        lines.append(
            f"  {name:{width}s}  {entry['speedup']:>11.2f}x  "
            f"{baseline_speedup:>11.2f}x  {ratio:>6.2f}"
        )
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        lines.append(f"  {'geomean ratio':{width}s}  {geomean:>34.2f}")
    for key in ("geomean_speedup",):
        if key in new_micro and key in baseline_micro:
            lines.append(
                f"  suite geomean speedup: {new_micro[key]:.2f}x "
                f"(baseline {baseline_micro[key]:.2f}x)"
            )
    return "\n".join(lines)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a report."""
    suite = report.get("suite", "kernel")
    lines = [f"== repro bench ({suite} suite) =="]
    micro = report.get("microbench", {})
    for name, entry in micro.items():
        if not isinstance(entry, dict):
            continue
        lines.append(
            f"  {name:22s} {entry['optimized']['ns_per_event']:>8.0f} ns/ev"
            f"  (seed {entry['legacy']['ns_per_event']:>8.0f} ns/ev)"
            f"  speedup {entry['speedup']:.2f}x"
        )
    if "geomean_speedup" in micro:
        lines.append(
            f"  {suite} microbenchmark geomean speedup: "
            f"{micro['geomean_speedup']:.2f}x"
        )
    for name, entry in report.get("suites", {}).items():
        if entry.get("geomean_speedup") is not None:
            lines.append(
                f"    {name} suite geomean: "
                f"{entry['geomean_speedup']:.2f}x"
            )
    for name, entry in report.get("end_to_end", {}).items():
        wall = entry["wall_s"]
        extra = ""
        if "speedup_vs_seed" in entry:
            extra = (
                f"  (seed {entry['seed_wall_s']:.2f} s, "
                f"speedup {entry['speedup_vs_seed']:.2f}x)"
            )
        if "digest_ok" in entry:
            extra += "  digest OK" if entry["digest_ok"] else "  DIGEST MISMATCH"
        lines.append(f"  e2e {name:18s} {wall:7.2f} s wall{extra}")
        if "warm_wall_s" in entry:
            lines.append(
                f"      warm re-run {entry['warm_wall_s']:.3f} s "
                f"({entry['warm_speedup']:.0f}x; warm pass "
                f"{entry['warm_stats']}"
                + (", all-hit" if entry.get("all_hit") else ", NOT all-hit")
                + ")"
            )
        if "modeled_makespan_subartifact_s" in entry:
            lines.append(
                f"      {entry['modeled_workers']}-worker makespan model: "
                f"artifact-granular "
                f"{entry['modeled_makespan_artifact_granular_s']:.2f} s -> "
                f"sub-artifact {entry['modeled_makespan_subartifact_s']:.2f} s"
                f"  ({entry['modeled_speedup']:.2f}x; longest unit "
                f"{entry['longest_unit_s']:.2f} s over "
                f"{entry['work_units']} units)"
            )
    return "\n".join(lines)
