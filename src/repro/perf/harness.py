"""The ``repro bench`` harness: measure, record, and gate performance.

Produces ``BENCH_kernel.json`` so every perf-affecting PR leaves a
recorded trajectory instead of a claim:

* **Microbenchmarks** run each scenario in :mod:`repro.perf.microbench`
  against both the live kernel (:mod:`repro.sim`) and the frozen seed
  kernel (:mod:`repro.perf.legacy`), same machine, same process.  The
  reported *speedups* are therefore machine-independent ratios — that is
  what :func:`compare_reports` gates on in CI.
* **End-to-end** timings run a real fleet scenario and a
  ``reproduce-all`` subset on the live stack, verify the fleet digest
  against the pinned seed value (an optimization that changes results is
  a bug, not a speedup), and compare wall-clock against
  :data:`SEED_BASELINES` — seed-commit wall times measured on the
  reference container (best-of-3; see EXPERIMENTS.md).  Absolute
  seconds are machine-dependent; the speedup column is indicative, the
  digest check is not.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Dict, List

import repro.perf.legacy as legacy_impl
import repro.sim as live_impl
from repro.perf.baselines import GOLDEN_FLEET_DIGESTS, SEED_E2E_WALL_S
from repro.perf.microbench import MICROBENCHMARKS, run_microbench

__all__ = [
    "SEED_BASELINES",
    "build_report",
    "compare_reports",
    "render_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Wall-clock of the end-to-end scenarios at the seed commit (pre-
#: optimization).  Digests pin result equivalence; these pin the
#: "before" of the before/after table.  Single source of truth:
#: :mod:`repro.perf.baselines` (shared with the golden-digest tests).
SEED_BASELINES: Dict[str, float] = SEED_E2E_WALL_S

#: The pinned seed digest for the end-to-end fleet scenario.
FLEET_DIGEST = GOLDEN_FLEET_DIGESTS["mixed_6x15_seed3"]

#: Artifacts of the reproduce-all end-to-end subset (cheap but covering
#: tables, a harvest figure, and hence all three runtime loops).
REPRODUCE_SUBSET = ("table1", "table2", "fig6-left")
REPRODUCE_SCALE = 0.2


def _bench_result_dict(result: Any) -> Dict[str, Any]:
    return {
        "events": result.events,
        "wall_s": round(result.wall_s, 6),
        "ns_per_event": round(result.ns_per_event, 1),
        "events_per_sec": round(result.events_per_sec, 1),
    }


def run_microbenchmarks(
    scale: float = 1.0, repeats: int = 3
) -> Dict[str, Any]:
    """All scenarios, optimized vs legacy, interleaved for fairness."""
    section: Dict[str, Any] = {}
    speedups: List[float] = []
    for name in MICROBENCHMARKS:
        optimized = run_microbench(name, live_impl, scale, repeats)
        legacy = run_microbench(name, legacy_impl, scale, repeats)
        speedup = legacy.wall_s / optimized.wall_s
        speedups.append(speedup)
        section[name] = {
            "optimized": _bench_result_dict(optimized),
            "legacy": _bench_result_dict(legacy),
            "speedup": round(speedup, 2),
        }
    section["geomean_speedup"] = round(
        math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2
    )
    return section


def run_end_to_end() -> Dict[str, Any]:
    """Fleet + reproduce-subset wall clock on the live stack."""
    # Imported lazily: the full stack is irrelevant to --quick runs.
    from repro.experiments.driver import FleetDriver, reproduce_all
    from repro.fleet.config import FleetConfig

    config = FleetConfig(n_nodes=6, agent="mixed", seed=3, duration_s=15)
    started = time.perf_counter()
    aggregate = FleetDriver(config, workers=1).run()
    fleet_wall = time.perf_counter() - started
    digest = aggregate.digest()

    started = time.perf_counter()
    runs = reproduce_all(only=list(REPRODUCE_SUBSET), scale=REPRODUCE_SCALE)
    reproduce_wall = time.perf_counter() - started

    def against_seed(key: str, wall: float) -> Dict[str, Any]:
        seed = SEED_BASELINES.get(key)
        entry: Dict[str, Any] = {"wall_s": round(wall, 3)}
        if seed is not None:
            entry["seed_wall_s"] = seed
            entry["speedup_vs_seed"] = round(seed / wall, 2)
        return entry

    fleet_entry = against_seed("fleet_mixed_6x15", fleet_wall)
    fleet_entry.update(
        nodes=config.n_nodes,
        sim_seconds=config.duration_s,
        digest=digest,
        digest_ok=digest == FLEET_DIGEST,
    )
    reproduce_entry = against_seed("reproduce_subset", reproduce_wall)
    reproduce_entry.update(
        artifacts=list(REPRODUCE_SUBSET),
        scale=REPRODUCE_SCALE,
        runs={run.name: round(run.wall_seconds, 3) for run in runs},
    )
    return {
        "fleet_mixed_6x15": fleet_entry,
        "reproduce_subset": reproduce_entry,
    }


def build_report(quick: bool = False, repeats: int = 3) -> Dict[str, Any]:
    """The full ``repro bench`` report.

    ``quick`` shrinks the microbenchmarks (~4× fewer events) and skips
    the end-to-end section; speedup ratios remain comparable, which is
    all the CI regression gate consumes.
    """
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "microbench": run_microbenchmarks(
            scale=0.25 if quick else 1.0, repeats=repeats
        ),
    }
    if not quick:
        report["end_to_end"] = run_end_to_end()
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def compare_reports(
    new: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.25,
) -> List[str]:
    """Regressions of ``new`` against a committed baseline report.

    Only machine-independent quantities are gated: per-scenario
    optimized-vs-legacy speedups (each may not fall more than
    ``max_regression`` below the baseline ratio) and the end-to-end
    digest check (must not flip to False).  Returns human-readable
    problem strings; empty means pass.
    """
    problems: List[str] = []
    new_micro = new.get("microbench", {})
    for name, entry in baseline.get("microbench", {}).items():
        if not isinstance(entry, dict) or "speedup" not in entry:
            continue
        current = new_micro.get(name)
        if current is None:
            problems.append(f"microbench {name!r} missing from new report")
            continue
        floor = entry["speedup"] * (1.0 - max_regression)
        if current["speedup"] < floor:
            problems.append(
                f"microbench {name!r} speedup regressed: "
                f"{current['speedup']:.2f}x < floor {floor:.2f}x "
                f"(baseline {entry['speedup']:.2f}x)"
            )
    fleet = new.get("end_to_end", {}).get("fleet_mixed_6x15")
    if fleet is not None and fleet.get("digest_ok") is False:
        problems.append(
            "end-to-end fleet digest mismatch: optimization changed results"
        )
    return problems


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a report."""
    lines = ["== repro bench =="]
    micro = report.get("microbench", {})
    for name, entry in micro.items():
        if not isinstance(entry, dict):
            continue
        lines.append(
            f"  {name:22s} {entry['optimized']['ns_per_event']:>8.0f} ns/ev"
            f"  (seed {entry['legacy']['ns_per_event']:>8.0f} ns/ev)"
            f"  speedup {entry['speedup']:.2f}x"
        )
    if "geomean_speedup" in micro:
        lines.append(
            f"  kernel microbenchmark geomean speedup: "
            f"{micro['geomean_speedup']:.2f}x"
        )
    for name, entry in report.get("end_to_end", {}).items():
        wall = entry["wall_s"]
        extra = ""
        if "speedup_vs_seed" in entry:
            extra = (
                f"  (seed {entry['seed_wall_s']:.2f} s, "
                f"speedup {entry['speedup_vs_seed']:.2f}x)"
            )
        if "digest_ok" in entry:
            extra += "  digest OK" if entry["digest_ok"] else "  DIGEST MISMATCH"
        lines.append(f"  e2e {name:18s} {wall:7.2f} s wall{extra}")
    return "\n".join(lines)
