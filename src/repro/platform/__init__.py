"""Production-platform characterization data (paper §2, Tables 1-2).

Also home of the fleet hardware catalog (:data:`NODE_SKUS`) that
:mod:`repro.fleet` provisions simulated nodes from.
"""

from repro.platform.taxonomy import (
    NODE_SKUS,
    TABLE1_TAXONOMY,
    TABLE2_LEARNING_AGENTS,
    AgentClass,
    LearningAgentExample,
    NodeSku,
    learning_beneficiary_fraction,
    render_table1,
    render_table2,
)

__all__ = [
    "AgentClass",
    "LearningAgentExample",
    "NodeSku",
    "NODE_SKUS",
    "TABLE1_TAXONOMY",
    "TABLE2_LEARNING_AGENTS",
    "learning_beneficiary_fraction",
    "render_table1",
    "render_table2",
]
