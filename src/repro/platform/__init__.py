"""Production-platform characterization data (paper §2, Tables 1-2)."""

from repro.platform.taxonomy import (
    TABLE1_TAXONOMY,
    TABLE2_LEARNING_AGENTS,
    AgentClass,
    LearningAgentExample,
    learning_beneficiary_fraction,
    render_table1,
    render_table2,
)

__all__ = [
    "AgentClass",
    "LearningAgentExample",
    "TABLE1_TAXONOMY",
    "TABLE2_LEARNING_AGENTS",
    "learning_beneficiary_fraction",
    "render_table1",
    "render_table2",
]
