"""The paper's agent characterization data (Tables 1 and 2, §2-§3).

Table 1 categorizes the 77 node agents running in Azure into six
classes; Table 2 catalogs recent on-node learning resource-control
agents.  These tables are data, not computation — reproduced here so the
benchmark harness can regenerate them and so the library can answer
"which agent classes benefit from on-node learning?" programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "AgentClass",
    "LearningAgentExample",
    "NodeSku",
    "NODE_SKUS",
    "TABLE1_TAXONOMY",
    "TABLE2_LEARNING_AGENTS",
    "learning_beneficiary_fraction",
    "render_table1",
    "render_table2",
]


@dataclass(frozen=True)
class AgentClass:
    """One row of Table 1: a class of production node agents."""

    name: str
    count: int
    description: str
    examples: str
    benefits_from_learning: bool


#: Table 1: Taxonomy of production agents (counts from the Azure survey).
TABLE1_TAXONOMY: Tuple[AgentClass, ...] = (
    AgentClass(
        "Configuration", 25,
        "Configure node HW, SW, or data",
        "Credentials, firewalls, OS updates", False,
    ),
    AgentClass(
        "Services", 23,
        "Long-running node services",
        "VM creation, live migration", False,
    ),
    AgentClass(
        "Monitoring/logging", 18,
        "Monitoring and logging node's state",
        "CPU and OS counters, network telemetry", True,
    ),
    AgentClass(
        "Watchdogs", 7,
        "Watch for problems to alert/automitigate",
        "Disk space, intrusions, HW errors", True,
    ),
    AgentClass(
        "Resource control", 2,
        "Manage resource assignments",
        "Power capping, memory management", True,
    ),
    AgentClass(
        "Access", 2,
        "Allow operators access to nodes",
        "Filesystem access", False,
    ),
)


@dataclass(frozen=True)
class LearningAgentExample:
    """One row of Table 2: an on-node learning resource-control agent."""

    name: str
    goal: str
    action: str
    frequency: str
    inputs: str
    model: str


#: Table 2: Examples of on-node learning resource control agents.
TABLE2_LEARNING_AGENTS: Tuple[LearningAgentExample, ...] = (
    LearningAgentExample(
        "SmartHarvest [37]", "Harvest idle cores", "Core assignment",
        "25 ms", "CPU usage", "Cost-sensitive classification",
    ),
    LearningAgentExample(
        "Hipster [27]", "Reduce power draw",
        "Core assignment & frequency", "1 s", "App QoS and load",
        "Reinforcement learning",
    ),
    LearningAgentExample(
        "LinnOS [16]", "Improve IO perf", "IO request routing/rejection",
        "Every IO", "Latencies, queue sizes", "Binary classification",
    ),
    LearningAgentExample(
        "ESP [25]", "Reduce interference", "App scheduling", "Every app",
        "App run time, perf counters", "Regularized regression",
    ),
    LearningAgentExample(
        "Overclocking (SmartOverclock, §5)", "Improve VM perf",
        "CPU overclocking", "1 s", "Instructions per second",
        "Reinforcement learning",
    ),
    LearningAgentExample(
        "Disaggregation (SmartMemory, §5)", "Migrate pages",
        "Warm/cold page ID", "100 ms", "Page table scans",
        "Multi-armed bandits",
    ),
)


@dataclass(frozen=True)
class NodeSku:
    """One hardware generation/SKU a fleet node can be provisioned as.

    The paper's platform runs agents "on each server node of a cloud
    platform" (§1) — a population of heterogeneous machines spanning
    several hardware generations.  :mod:`repro.fleet` draws each
    simulated node's CPU and memory shape from this catalog.

    Attributes:
        name: SKU identifier.
        n_cores: cores in the node's frequency domain.
        nominal_freq_ghz: the safe frequency safeguards restore.
        max_freq_ghz: overclocking ceiling.
        max_ipc: instructions/cycle of a fully CPU-bound workload.
        memory_regions: 2 MB regions of VM memory (512 ≈ 1 GB).
        weight: relative share of the fleet population.
    """

    name: str
    n_cores: int
    nominal_freq_ghz: float
    max_freq_ghz: float
    max_ipc: float
    memory_regions: int
    weight: float


#: The fleet's hardware mix.  The "gen5" row matches the single-node
#: experiment CPU (1.5 GHz nominal, 2.3 GHz ceiling, §6.2) so a
#: one-node fleet degenerates to the paper's setup.
NODE_SKUS: Tuple[NodeSku, ...] = (
    NodeSku("gen5-general", 8, 1.5, 2.3, 4.0, 256, 0.50),
    NodeSku("gen6-compute", 16, 2.0, 2.8, 4.0, 256, 0.25),
    NodeSku("gen4-memory", 8, 1.2, 1.8, 3.0, 512, 0.15),
    NodeSku("gen6-dense", 24, 1.8, 2.4, 4.0, 384, 0.10),
)


def learning_beneficiary_fraction() -> float:
    """Fraction of node agents that could benefit from on-node learning.

    The paper's headline characterization number: "three classes, which
    collectively make up 35% of all agents, can benefit from on-node
    learning."
    """
    total = sum(cls.count for cls in TABLE1_TAXONOMY)
    beneficiaries = sum(
        cls.count for cls in TABLE1_TAXONOMY if cls.benefits_from_learning
    )
    return beneficiaries / total


def _format_rows(header: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(str(row[i])) for row in [header] + rows)
        for i in range(len(header))
    ]
    lines = []
    for row in [header, ["-" * w for w in widths]] + rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1 as the paper prints it, plus the 35% summary line."""
    rows = [
        [c.name, str(c.count), c.description, c.examples,
         "Yes" if c.benefits_from_learning else "No"]
        for c in TABLE1_TAXONOMY
    ]
    table = _format_rows(
        ["Class", "Count", "Description", "Examples", "Benefit?"], rows
    )
    fraction = learning_beneficiary_fraction()
    total = sum(c.count for c in TABLE1_TAXONOMY)
    return (
        f"{table}\n\nTotal agents: {total}; "
        f"could benefit from learning: {fraction:.0%}"
    )


def render_table2() -> str:
    """Table 2 as the paper prints it."""
    rows = [
        [a.name, a.goal, a.action, a.frequency, a.inputs, a.model]
        for a in TABLE2_LEARNING_AGENTS
    ]
    return _format_rows(
        ["Agent", "Goal", "Action", "Frequency", "Inputs", "Model"], rows
    )
