"""``repro serve``: a crash-tolerant local control plane (DESIGN.md §13).

An asyncio job server over a local stream socket: bounded admission
with explicit backpressure, one-at-a-time scheduling onto the warm
shared worker pool, journal-backed execution (every job is a PR 8 run,
so ``kill -9`` + restart adopts interrupted work with zero re-executed
units), cooperative cancellation and deadlines, live drain on
SIGTERM/SIGINT, and streamed per-job progress events.
"""

from repro.serve.client import ServeClient, ServeUnavailable, wait_for_server
from repro.serve.jobs import (
    JOB_KINDS,
    Job,
    JobCancelled,
    JournalTap,
    execute_job,
)
from repro.serve.protocol import MAX_LINE, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ServeServer, default_socket_path

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobCancelled",
    "JournalTap",
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeServer",
    "ServeUnavailable",
    "default_socket_path",
    "execute_job",
    "wait_for_server",
]
