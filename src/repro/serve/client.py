"""A blocking stdlib client for the serve control plane.

Used by the ``repro serve submit|status|...`` subcommands, the chaos
harness, and tests.  One request-reply per connection for the simple
verbs; ``watch`` holds its connection open and yields events until the
job goes terminal (or the server dies — surfaced as a
:class:`ServeUnavailable`, which is *expected* under the kill-server
chaos harness and handled by reconnecting to the successor).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, Optional

from repro.serve import protocol
from repro.serve.jobs import TERMINAL_STATUSES

__all__ = ["ServeClient", "ServeUnavailable", "wait_for_server"]


class ServeUnavailable(ConnectionError):
    """No server behind the socket (not listening, or died mid-reply)."""


def wait_for_server(
    socket_path: str, timeout: float = 10.0
) -> None:
    """Block until a server answers ``ping`` on the socket.

    Raises:
        ServeUnavailable: nothing answered within ``timeout``.
    """
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            ServeClient(socket_path, timeout=1.0).ping()
            return
        except (ServeUnavailable, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise ServeUnavailable(
        f"no server on {socket_path} after {timeout:.1f}s: {last}"
    )


class ServeClient:
    """Thin per-request client: connect, send one line, read replies."""

    def __init__(self, socket_path: str, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServeUnavailable(
                f"cannot connect to {self.socket_path}: {exc}"
            ) from exc
        return sock

    @staticmethod
    def _read_line(handle: Any) -> Dict[str, Any]:
        line = handle.readline(protocol.MAX_LINE + 1)
        if not line:
            raise ServeUnavailable("server closed the connection")
        return protocol.decode(line)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One verb, one reply."""
        sock = self._connect()
        try:
            sock.sendall(protocol.encode(message))
            with sock.makefile("rb") as handle:
                return self._read_line(handle)
        except socket.timeout as exc:
            raise ServeUnavailable(
                f"server on {self.socket_path} timed out"
            ) from exc
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # verbs

    def ping(self) -> Dict[str, Any]:
        return self.request({"verb": "ping"})

    def submit(
        self,
        kind: str,
        config: Dict[str, Any],
        workers: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "verb": "submit", "kind": kind, "config": config,
        }
        if workers is not None:
            message["workers"] = workers
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        return self.request(message)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"verb": "status"}
        if job_id is not None:
            message["job_id"] = job_id
        return self.request(message)

    def metrics(self, fmt: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"verb": "metrics"}
        if fmt is not None:
            message["format"] = fmt
        return self.request(message)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"verb": "cancel", "job_id": job_id})

    def drain(self) -> Dict[str, Any]:
        return self.request({"verb": "drain"})

    def watch(
        self, job_id: str, since: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events until it reaches a terminal status.

        Raises:
            ServeUnavailable: the server died mid-stream (the last
                yielded event tells the caller where to resume from).
        """
        sock = self._connect()
        try:
            sock.sendall(protocol.encode(
                {"verb": "watch", "job_id": job_id, "since": since}
            ))
            with sock.makefile("rb") as handle:
                head = self._read_line(handle)
                if not head.get("ok"):
                    raise ValueError(
                        head.get("error", "watch rejected")
                    )
                while True:
                    message = self._read_line(handle)
                    yield message
                    if message.get("event") in TERMINAL_STATUSES:
                        return
        except socket.timeout as exc:
            raise ServeUnavailable(
                f"watch on {self.socket_path} timed out"
            ) from exc
        finally:
            sock.close()

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job is terminal; returns its view.

        Polling (rather than ``watch``) survives server restarts — the
        successor knows the adopted run under a *new* job id, so the
        harness matches on ``run_id`` via :meth:`find_by_run`.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            reply = self.status(job_id)
            if not reply.get("ok"):
                raise ValueError(reply.get("error", "status failed"))
            job = reply["job"]
            if job["status"] in TERMINAL_STATUSES:
                return job
            time.sleep(poll_s)
        raise TimeoutError(
            f"job {job_id} not terminal after {timeout:.1f}s"
        )

    def find_by_run(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The newest job view for ``run_id``, if the server knows one."""
        reply = self.status()
        if not reply.get("ok"):
            return None
        matches = [
            job for job in reply.get("jobs", [])
            if job.get("run_id") == run_id
        ]
        return matches[-1] if matches else None
