"""``repro serve``: the crash-tolerant asyncio control plane.

One server owns one cache root.  Clients connect over a local stream
socket (:mod:`repro.serve.protocol`) and submit fleet / reproduce /
sweep jobs; the server validates at admission time, queues onto a
*bounded* admission queue (full queue → explicit backpressure reply
with a retry-after hint, never unbounded buffering), and executes jobs
one at a time on the process-wide warm
:func:`~repro.experiments.driver.shared_pool` (``supervised_map`` is
deliberately not reentrant, so the scheduler serializes — the pool
itself still fans each job out across workers).

Crash tolerance is inherited, not bolted on: every job runs under a
PR 8 run journal opened in resume mode, so a ``kill -9`` of the server
mid-job leaves a sealed-or-resumable journal and a lease that expires
(or is stolen immediately by a successor on the same host, dead-pid
rule).  On startup the server scans for interrupted runs and re-adopts
them as internal jobs — re-executing zero journaled units.  The
``repro chaos serve --kill-server N`` harness proves the whole loop.

Shutdown surfaces, in decreasing gentleness:

* ``drain`` verb — stop admitting, let in-flight work finish, release
  leases, exit 0;
* ``SIGTERM`` — stop admitting, give in-flight jobs ``drain_grace_s``
  to finish, then cancel them (journals left resumable), exit 143;
* ``SIGINT`` — cancel in-flight work immediately, exit 130;
* ``SIGKILL`` — nothing to do; the journal + lease protocol makes the
  successor's adoption safe anyway.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket as socket_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from repro.journal.registry import interrupted_runs
from repro.resilience.supervisor import DispatchCancelled
from repro.serve import protocol
from repro.serve.jobs import (
    Job,
    execute_job,
    job_from_run_info,
    job_from_submission,
)
from repro.serve.metrics import ServeMetrics

__all__ = ["ServeServer", "default_socket_path"]

#: Events retained per job for late ``watch`` subscribers.
EVENT_BACKLOG = 512

#: Per-subscriber event queue bound; a subscriber this far behind a
#: job's event stream starts losing the oldest events (counted in
#: ``metrics.events.dropped``) rather than growing server memory.
SUBSCRIBER_QUEUE = 1024


def default_socket_path(cache_root: str) -> str:
    """Where a server for this cache root listens by default."""
    return os.path.join(os.path.abspath(cache_root), "serve.sock")


class _Subscriber:
    """One ``watch`` subscription: a bounded per-connection queue."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_QUEUE)
        self.dropped = 0

    def offer(self, message: Dict[str, Any]) -> bool:
        """Enqueue without blocking; shed oldest on overflow."""
        shed = False
        while True:
            try:
                self.queue.put_nowait(message)
                return shed
            except asyncio.QueueFull:
                with contextlib.suppress(asyncio.QueueEmpty):
                    self.queue.get_nowait()
                    self.dropped += 1
                shed = True


@dataclass
class ServeServer:
    """The control plane for one cache root.

    Args:
        cache_root: cache directory jobs execute against (journals
            under ``<cache_root>/runs/``).
        socket_path: listening socket (default
            ``<cache_root>/serve.sock``).
        queue_limit: bounded admission queue size; submissions beyond
            it get an explicit backpressure rejection.
        drain_grace_s: how long SIGTERM lets in-flight work finish
            before cancelling it.
        adopt: re-adopt interrupted runs found at startup.
        default_workers: pool size for adopted jobs whose manifest
            records none.
    """

    cache_root: str
    socket_path: Optional[str] = None
    queue_limit: int = 8
    drain_grace_s: float = 5.0
    adopt: bool = True
    default_workers: int = 2

    exit_code: int = 0
    jobs: Dict[str, Job] = field(default_factory=dict)
    metrics: ServeMetrics = field(default_factory=ServeMetrics)

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.cache_root = os.path.abspath(self.cache_root)
        if self.socket_path is None:
            self.socket_path = default_socket_path(self.cache_root)
        self._accepting = True
        self._draining = False
        self._job_seq = 0
        self._queue: Optional[asyncio.Queue] = None
        self._backlog: Deque[Job] = deque()  # adopted jobs, served first
        self._events: Dict[str, Deque[Dict[str, Any]]] = {}
        self._event_seq: Dict[str, int] = {}
        self._subscribers: Dict[str, list] = {}
        self._current: Optional[Job] = None
        self._shutdown = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_log = False

    # ------------------------------------------------------------------
    # lifecycle

    async def run(self) -> int:
        """Serve until drained or signalled; returns the exit code."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._install_signal_handlers()
        self._remove_stale_socket()
        os.makedirs(os.path.dirname(self.socket_path) or ".", exist_ok=True)
        server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=protocol.MAX_LINE + 1,
        )
        self._log(
            f"[serve: listening on {self.socket_path} "
            f"(cache {self.cache_root}, queue limit {self.queue_limit})]"
        )
        if self.adopt:
            self._adopt_interrupted()
        scheduler = asyncio.create_task(self._scheduler())
        try:
            await self._shutdown.wait()
        finally:
            self._accepting = False
            server.close()
            await server.wait_closed()
            await self._finish_scheduler(scheduler)
            self._cleanup_socket()
            from repro.experiments.driver import shutdown_shared_pool

            shutdown_shared_pool()
            self._log(f"[serve: exit {self.exit_code}]")
        return self.exit_code

    def _log(self, line: str) -> None:
        print(line, flush=True)

    def _install_signal_handlers(self) -> None:
        # add_signal_handler is main-thread-only; in-thread test servers
        # simply run without signal integration.
        assert self._loop is not None
        for signum, handler in (
            (signal.SIGTERM, self._on_sigterm),
            (signal.SIGINT, self._on_sigint),
        ):
            try:
                self._loop.add_signal_handler(signum, handler)
            except (ValueError, NotImplementedError, RuntimeError):
                return

    def _remove_stale_socket(self) -> None:
        """Unlink a dead predecessor's socket; refuse a live one.

        A bare ``connect()`` is not proof of life: a SIGKILLed
        predecessor's *pool workers* inherited the listening fd at
        fork, so the kernel keeps accepting connections that no one
        will ever service until the orphans notice the ppid change and
        exit.  Only an answered ``ping`` counts as a live server.
        """
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX)
        probe.settimeout(0.5)
        try:
            probe.connect(self.socket_path)
            probe.sendall(protocol.encode({"verb": "ping"}))
            reply = probe.recv(protocol.MAX_LINE)
            if reply and protocol.decode(reply).get("ok"):
                raise SystemExit(
                    f"repro: error: a server is already listening on "
                    f"{self.socket_path}"
                )
        except (OSError, protocol.ProtocolError):
            pass  # stale — predecessor died
        finally:
            probe.close()
        os.unlink(self.socket_path)

    def _cleanup_socket(self) -> None:
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------
    # shutdown paths

    def _on_sigterm(self) -> None:
        """Graceful drain: grace period, then cancel, exit 143."""
        if self._draining:
            return
        self._log(
            f"[serve: SIGTERM — draining "
            f"(grace {self.drain_grace_s:.1f}s)]"
        )
        self._begin_drain(exit_code=143, grace_s=self.drain_grace_s)

    def _on_sigint(self) -> None:
        """Fast drain: cancel in-flight work now, exit 130."""
        if self._draining:
            return
        self._log("[serve: SIGINT — cancelling in-flight work]")
        self._begin_drain(exit_code=130, grace_s=0.0)

    def _begin_drain(self, exit_code: int, grace_s: float) -> None:
        self._draining = True
        self._accepting = False
        self.exit_code = exit_code
        asyncio.ensure_future(self._drain(grace_s))

    async def _drain(self, grace_s: float) -> None:
        """Stop admitting, settle in-flight work, then shut down."""
        self._drop_queued(status="drained")
        current = self._current
        if current is not None and not current.terminal:
            if grace_s > 0:
                deadline = time.monotonic() + grace_s
                while (
                    time.monotonic() < deadline
                    and self._current is current
                    and not current.terminal
                ):
                    await asyncio.sleep(0.05)
            if self._current is current and not current.terminal:
                current.request_cancel("drain")
        # The scheduler notices the empty queue + drain flag and stops;
        # _finish_scheduler awaits the in-flight thread so the journal
        # close (lease release) has happened before we exit.
        self._shutdown.set()

    def _drop_queued(self, status: str) -> None:
        """Mark every queued-not-started job terminal (journals never
        opened, so there is nothing to release)."""
        for job in self._backlog:
            if job.status == "queued":
                self._set_status(job, status)
                self._emit(job, status, {"reason": "drain"})
        self._backlog.clear()
        if self._queue is not None:
            while True:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if job.status == "queued":
                    self._set_status(job, status)
                    self._emit(job, status, {"reason": "drain"})

    async def _finish_scheduler(self, scheduler: asyncio.Task) -> None:
        with contextlib.suppress(asyncio.CancelledError):
            await scheduler

    # ------------------------------------------------------------------
    # adoption

    def _adopt_interrupted(self) -> None:
        """Queue every interrupted run in this cache root as a job."""
        try:
            orphans = interrupted_runs(self.cache_root)
        except Exception as exc:  # registry scan must never kill startup
            self._log(f"[serve: adoption scan failed: {exc}]")
            return
        for info in orphans:
            if any(
                job.run_id == info.run_id and not job.terminal
                for job in self.jobs.values()
            ):
                continue
            job = job_from_run_info(self._next_job_id(), info)
            if job.workers < 1:
                job.workers = self.default_workers
            self.jobs[job.job_id] = job
            self._backlog.append(job)
            self.metrics.adopted += 1
            self._log(
                f"[serve: adopted interrupted run {info.run_id} "
                f"({info.kind}, {info.done_units}/{info.total_units} "
                f"journaled) as job {job.job_id}]"
            )

    # ------------------------------------------------------------------
    # scheduler

    def _next_job_id(self) -> str:
        self._job_seq += 1
        return f"job-{self._job_seq:04d}"

    async def _scheduler(self) -> None:
        """Run admitted jobs one at a time (supervised_map is not
        reentrant; the pool parallelism lives inside each job)."""
        assert self._queue is not None
        while not (self._draining and not self._backlog
                   and self._queue.empty()):
            job = await self._next_job()
            if job is None:
                continue
            if job.terminal:  # cancelled while queued
                continue
            self._current = job
            try:
                await self._run_job(job)
            finally:
                self._current = None
            if self._draining:
                break

    async def _next_job(self) -> Optional[Job]:
        if self._backlog:
            return self._backlog.popleft()
        assert self._queue is not None
        try:
            return await asyncio.wait_for(self._queue.get(), timeout=0.2)
        except asyncio.TimeoutError:
            return None

    async def _run_job(self, job: Job) -> None:
        self._set_status(job, "running")
        job.started_at = time.time()
        self._emit(job, "running", {"kind": job.kind, "run_id": job.run_id})
        watchdog: Optional[asyncio.Task] = None
        if job.deadline_s is not None:
            watchdog = asyncio.create_task(self._deadline(job))
        assert self._loop is not None
        loop = self._loop

        def emit_from_thread(kind: str, **fields: Any) -> None:
            loop.call_soon_threadsafe(self._emit, job, kind, fields)

        try:
            result = await asyncio.to_thread(
                execute_job, job, self.cache_root, emit_from_thread
            )
        except DispatchCancelled as exc:
            reason = job.cancel_reason or "cancel"
            status = {
                "deadline": "expired",
                "drain": "cancelled",
            }.get(reason, "cancelled")
            self._set_status(job, status)
            self._emit(
                job, status, {"reason": reason, "detail": str(exc)}
            )
            self._log(
                f"[serve: job {job.job_id} {status} ({reason}) — "
                f"run {job.run_id} left resumable]"
            )
        except BaseException as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            self._set_status(job, "failed")
            self._emit(job, "failed", {"error": job.error})
            self._log(f"[serve: job {job.job_id} failed: {job.error}]")
        else:
            job.digest = result.get("digest")
            job.counters = dict(result.get("journal") or {})
            self.metrics.absorb_result(result)
            self._set_status(job, "done")
            self._emit(
                job, "done",
                {"digest": job.digest, "counters": job.counters},
            )
            self._log(
                f"[serve: job {job.job_id} done — run {job.run_id} "
                f"sealed {job.digest}]"
            )
        finally:
            job.finished_at = time.time()
            if watchdog is not None:
                watchdog.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watchdog

    async def _deadline(self, job: Job) -> None:
        assert job.deadline_s is not None
        await asyncio.sleep(job.deadline_s)
        if not job.terminal:
            self._log(
                f"[serve: job {job.job_id} exceeded "
                f"{job.deadline_s:.1f}s deadline — cancelling]"
            )
            job.request_cancel("deadline")

    def _set_status(self, job: Job, status: str) -> None:
        job.status = status

    # ------------------------------------------------------------------
    # events

    def _emit(self, job: Job, kind: str, fields: Dict[str, Any]) -> None:
        seq = self._event_seq.get(job.job_id, 0) + 1
        self._event_seq[job.job_id] = seq
        message = protocol.event(job.job_id, seq, kind, fields)
        backlog = self._events.setdefault(
            job.job_id, deque(maxlen=EVENT_BACKLOG)
        )
        backlog.append(message)
        self.metrics.events_emitted += 1
        for subscriber in self._subscribers.get(job.job_id, []):
            if subscriber.offer(message):
                self.metrics.events_dropped += 1

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError, ValueError
                ):  # oversized line
                    await self._reply(
                        writer,
                        protocol.error(
                            f"request line exceeds "
                            f"{protocol.MAX_LINE} bytes"
                        ),
                    )
                    return
                if not line:
                    return
                if line.strip() == b"":
                    continue
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await self._reply(writer, protocol.error(str(exc)))
                    continue
                done = await self._dispatch(message, writer)
                if done:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _reply(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    async def _dispatch(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; True ends the connection (watch/drain)."""
        verb = message.get("verb")
        if verb == "ping":
            await self._reply(writer, protocol.ok(
                server="repro-serve",
                protocol=protocol.PROTOCOL_VERSION,
                pid=os.getpid(),
                cache_root=self.cache_root,
                accepting=self._accepting,
            ))
            return False
        if verb == "submit":
            await self._reply(writer, self._handle_submit(message))
            return False
        if verb == "status":
            await self._reply(writer, self._handle_status(message))
            return False
        if verb == "metrics":
            assert self._queue is not None
            snap = self.metrics.snapshot(
                self.jobs.values(),
                queue_depth=self._queue.qsize() + len(self._backlog),
                queue_limit=self.queue_limit,
                accepting=self._accepting,
                draining=self._draining,
            )
            if message.get("format") == "prometheus":
                from repro.obs.export import render_prometheus

                await self._reply(writer, protocol.ok(
                    format="prometheus",
                    text=render_prometheus(snap),
                ))
            else:
                await self._reply(writer, protocol.ok(metrics=snap))
            return False
        if verb == "cancel":
            await self._reply(writer, self._handle_cancel(message))
            return False
        if verb == "watch":
            await self._handle_watch(message, writer)
            return True
        if verb == "drain":
            await self._reply(writer, protocol.ok(draining=True))
            self._log("[serve: drain requested — shutting down]")
            self._begin_drain(exit_code=0, grace_s=float("inf"))
            return True
        return await self._reply_unknown(writer, verb)

    async def _reply_unknown(
        self, writer: asyncio.StreamWriter, verb: Any
    ) -> bool:
        await self._reply(writer, protocol.error(
            f"unknown verb {verb!r} (expected one of "
            f"{', '.join(protocol.VERBS)})"
        ))
        return False

    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if not self._accepting:
            return protocol.error("server is draining", draining=True)
        assert self._queue is not None
        try:
            job = job_from_submission(self._next_job_id(), message)
        except ValueError as exc:
            self.metrics.invalid += 1
            return protocol.error(f"invalid submission: {exc}")
        for existing in self.jobs.values():
            if existing.run_id == job.run_id and not existing.terminal:
                self.metrics.deduplicated += 1
                return protocol.ok(
                    job_id=existing.job_id,
                    run_id=existing.run_id,
                    status=existing.status,
                    deduplicated=True,
                )
        depth = self._queue.qsize() + len(self._backlog)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics.rejected += 1
            return protocol.backpressure(
                retry_after_s=max(1.0, 0.5 * depth),
                depth=depth,
                limit=self.queue_limit,
            )
        self.jobs[job.job_id] = job
        self.metrics.submitted += 1
        self._emit(job, "queued", {
            "kind": job.kind,
            "run_id": job.run_id,
            "position": depth,
        })
        return protocol.ok(
            job_id=job.job_id,
            run_id=job.run_id,
            status=job.status,
            queue_depth=depth + 1,
        )

    def _handle_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job_id")
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                return protocol.error(f"unknown job {job_id!r}")
            return protocol.ok(job=job.view())
        return protocol.ok(
            jobs=[
                job.view()
                for job in sorted(
                    self.jobs.values(), key=lambda j: j.job_id
                )
            ]
        )

    def _handle_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job_id")
        job = self.jobs.get(job_id) if job_id is not None else None
        if job is None:
            return protocol.error(f"unknown job {job_id!r}")
        if job.terminal:
            return protocol.error(
                f"job {job_id} already {job.status}", status=job.status
            )
        if job.status == "queued":
            job.request_cancel("client")
            self._set_status(job, "cancelled")
            self._emit(job, "cancelled", {"reason": "client"})
            return protocol.ok(job_id=job_id, status="cancelled")
        job.request_cancel("client")
        return protocol.ok(job_id=job_id, status="cancelling")

    async def _handle_watch(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job_id = message.get("job_id")
        job = self.jobs.get(job_id) if job_id is not None else None
        if job is None:
            await self._reply(writer, protocol.error(
                f"unknown job {job_id!r}"
            ))
            return
        since = int(message.get("since") or 0)
        await self._reply(writer, protocol.ok(
            job_id=job_id, watching=True, since=since
        ))
        subscriber = _Subscriber()
        listeners = self._subscribers.setdefault(job_id, [])
        listeners.append(subscriber)
        try:
            for past in list(self._events.get(job_id, ())):
                if past["seq"] > since:
                    await self._reply(writer, past)
                    since = past["seq"]
            while not (job.terminal and subscriber.queue.empty()):
                try:
                    message_out = await asyncio.wait_for(
                        subscriber.queue.get(), timeout=0.2
                    )
                except asyncio.TimeoutError:
                    continue
                if message_out["seq"] <= since:
                    continue
                await self._reply(writer, message_out)
                since = message_out["seq"]
        finally:
            listeners.remove(subscriber)
