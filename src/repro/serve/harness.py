"""``repro chaos serve``: the kill-server crash-consistency proof.

Extends the PR 8 ``--kill-parent`` argument to the control plane: if
the *server* is the orchestrator, then SIGKILLing it mid-job and
restarting must lose nothing.  The harness:

1. computes the job's uninterrupted digest in-process (no journal, no
   cache — ground truth);
2. starts a real ``repro serve start`` subprocess with
   ``REPRO_JOURNAL_KILL_AFTER=N`` armed, submits the job over the
   socket, and waits for the server to SIGKILL itself after its Nth
   durable journal record;
3. verifies the interrupted run is on disk (journaled progress, not
   sealed), then starts a *second* server on the same cache root: it
   must adopt the run via the lease dead-pid steal, re-execute **zero**
   journaled units, and seal with a digest bit-identical to step 1;
4. drains the second server (exit 0) and requires every journal lease
   to be released;
5. separately proves the admission surface: a ``--queue-limit 1``
   server must answer the third concurrent submission with an explicit
   backpressure rejection, and SIGTERM must drain it — cancelling the
   in-flight job, releasing its lease — with exit 143.

Any deviation is a loud ``CHAOS FAILURE`` and a nonzero exit.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["run_kill_server_harness"]

SERVER_DEATH_TIMEOUT_S = 600.0
JOB_TIMEOUT_S = 600.0


def _job_config(args: argparse.Namespace) -> Dict[str, Any]:
    """The submission config payload for the harness job."""
    from repro.journal.pipelines import (
        fleet_payload,
        reproduce_payload,
        sweep_payload,
    )

    if args.job == "fleet":
        from repro.fleet.config import FleetConfig

        return fleet_payload(FleetConfig(
            n_nodes=args.nodes, agent=args.agent, seed=args.seed,
            duration_s=args.seconds,
        ))
    if args.job == "reproduce":
        from repro.experiments.driver import ARTIFACTS

        names = list(args.only) if args.only else list(ARTIFACTS)
        return reproduce_payload(names, args.scale)
    from repro.sweep import load_spec

    return sweep_payload(load_spec(args.spec))


def _baseline_digest(args: argparse.Namespace) -> str:
    """The uninterrupted digest, computed in this process."""
    if args.job == "fleet":
        from repro.experiments.driver import FleetDriver
        from repro.fleet.config import FleetConfig

        config = FleetConfig(
            n_nodes=args.nodes, agent=args.agent, seed=args.seed,
            duration_s=args.seconds,
        )
        return FleetDriver(config, workers=args.workers).run().digest()
    if args.job == "reproduce":
        from repro.experiments.driver import reproduce_all, runs_digest

        runs = reproduce_all(
            scale=args.scale, only=args.only, granularity="series"
        )
        return runs_digest(runs)
    from repro.sweep import SweepRunner, load_spec

    return SweepRunner(load_spec(args.spec)).run().digest()


def _server_command(
    root: str, socket_path: str, extra: Tuple[str, ...] = ()
) -> List[str]:
    return [
        sys.executable, "-m", "repro", "serve", "start",
        "--cache-dir", root, "--socket", socket_path, *extra,
    ]


def _server_env(root: str, kill_after: Optional[int] = None) -> Dict[str, str]:
    from repro.journal.log import KILL_AFTER_ENV

    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = root
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    env.pop(KILL_AFTER_ENV, None)
    if kill_after is not None:
        env[KILL_AFTER_ENV] = str(kill_after)
    return env


def _start_server(
    root: str,
    socket_path: str,
    log_stem: str,
    kill_after: Optional[int] = None,
    extra: Tuple[str, ...] = (),
) -> subprocess.Popen:
    # Output to files, not pipes: pool workers inherit the server's
    # stdio and a captured pipe would block on the orphans.
    out = open(os.path.join(root, f"{log_stem}.out"), "wb")
    err = open(os.path.join(root, f"{log_stem}.err"), "wb")
    try:
        return subprocess.Popen(
            _server_command(root, socket_path, extra),
            env=_server_env(root, kill_after),
            stdout=out, stderr=err,
        )
    finally:
        out.close()
        err.close()


def _leases(root: str) -> List[str]:
    from repro.journal.run import runs_root

    try:
        return sorted(
            name for name in os.listdir(runs_root(root))
            if name.endswith(".lease")
        )
    except OSError:
        return []


def _tail(root: str, log_stem: str) -> str:
    try:
        with open(
            os.path.join(root, f"{log_stem}.err"), "r", encoding="utf-8"
        ) as handle:
            lines = handle.read().strip().splitlines()
        return " | ".join(lines[-5:]) or "(empty stderr)"
    except OSError:
        return "(no stderr)"


def _verdict(failures: List[str]) -> int:
    if failures:
        for failure in failures:
            print(f"CHAOS FAILURE: {failure}", file=sys.stderr)
        return 1
    print("[chaos: OK — server death survived; the successor adopted "
          "the run, re-executed nothing, and reproduced the digest]")
    return 0


def _phase_kill_resume(
    args: argparse.Namespace, root: str, failures: List[str]
) -> None:
    """Steps 1–4: SIGKILL the serving orchestrator, adopt, verify."""
    from repro.journal.registry import inspect_run
    from repro.serve.client import ServeClient, wait_for_server

    config = _job_config(args)
    baseline = _baseline_digest(args)
    print(f"[baseline: digest {baseline}]")

    socket_path = os.path.join(root, "serve.sock")
    server = _start_server(
        root, socket_path, "server1", kill_after=args.kill_server
    )
    try:
        wait_for_server(socket_path, timeout=30.0)
        client = ServeClient(socket_path, timeout=10.0)
        reply = client.submit(args.job, config, workers=args.workers)
        if not reply.get("ok"):
            failures.append(f"submission rejected: {reply.get('error')}")
            return
        run_id = reply["run_id"]
        print(f"[submitted: job {reply['job_id']} run {run_id} "
              f"to pid {server.pid}]")
        try:
            server.wait(timeout=SERVER_DEATH_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            failures.append(
                f"server outlived the kill budget; is "
                f"--kill-server {args.kill_server} larger than the "
                f"job's record count?"
            )
            return
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    if server.returncode != -signal.SIGKILL:
        failures.append(
            f"server exited {server.returncode}, expected SIGKILL: "
            f"{_tail(root, 'server1')}"
        )
        return
    info = inspect_run(root, run_id)
    if info is None:
        failures.append(
            f"no journaled run {run_id} survived the kill"
        )
        return
    print(f"[killed: run {info.run_id} — {info.done_units}/"
          f"{info.total_units} units journaled, {info.status}]")
    if info.status == "sealed":
        failures.append(
            "run sealed before the kill landed; lower --kill-server"
        )
        return
    pre_kill_done = info.done_units

    # The successor: same cache root, no kill switch.  Startup adoption
    # must pick the run up without any client involvement.
    server2 = _start_server(root, socket_path, "server2")
    try:
        wait_for_server(socket_path, timeout=30.0)
        client = ServeClient(socket_path, timeout=10.0)
        deadline = time.monotonic() + JOB_TIMEOUT_S
        job: Optional[Dict[str, Any]] = None
        while time.monotonic() < deadline:
            job = client.find_by_run(run_id)
            if job is not None and job["status"] in (
                "done", "failed", "cancelled", "expired", "drained"
            ):
                break
            time.sleep(0.2)
        if job is None:
            failures.append(
                f"successor never adopted run {run_id}"
            )
            return
        if not job.get("adopted"):
            failures.append(
                f"successor knows run {run_id} but did not mark it "
                f"adopted"
            )
        if job["status"] != "done":
            failures.append(
                f"adopted job ended {job['status']!r} "
                f"(error: {job.get('error')})"
            )
            return
        counters = job.get("counters") or {}
        replayed = int(counters.get("replayed", 0))
        re_executed = pre_kill_done - replayed
        print(
            f"[adopted: units={counters.get('total')} "
            f"journaled={pre_kill_done} replayed={replayed} "
            f"executed={counters.get('executed')} "
            f"cached={counters.get('cached')} "
            f"re-executed={max(re_executed, 0)}]"
        )
        if re_executed > 0:
            failures.append(
                f"adoption re-executed {re_executed} journaled unit(s)"
            )
        if job.get("digest") != baseline:
            failures.append(
                f"adopted digest {job.get('digest')} != uninterrupted "
                f"digest {baseline}"
            )
        else:
            print(f"[adopted: digest {job['digest']} matches "
                  f"uninterrupted run]")
        reply = client.drain()
        if not reply.get("ok"):
            failures.append(f"drain rejected: {reply.get('error')}")
        server2.wait(timeout=60.0)
        if server2.returncode != 0:
            failures.append(
                f"drained server exited {server2.returncode}, "
                f"expected 0: {_tail(root, 'server2')}"
            )
    except subprocess.TimeoutExpired:
        failures.append("successor did not exit after drain")
    finally:
        if server2.poll() is None:
            server2.kill()
            server2.wait()
    leftover = _leases(root)
    if leftover:
        failures.append(
            f"leases left behind after drain: {', '.join(leftover)}"
        )


def _phase_backpressure_drain(
    args: argparse.Namespace, root: str, failures: List[str]
) -> None:
    """Step 5: bounded admission + SIGTERM drain on a fresh root."""
    from repro.fleet.config import FleetConfig
    from repro.journal.pipelines import fleet_payload
    from repro.serve.client import ServeClient, wait_for_server

    os.makedirs(root, exist_ok=True)
    socket_path = os.path.join(root, "serve.sock")
    server = _start_server(
        root, socket_path, "server3",
        extra=("--queue-limit", "1", "--drain-grace", "0.5"),
    )
    try:
        wait_for_server(socket_path, timeout=30.0)
        client = ServeClient(socket_path, timeout=10.0)

        def long_fleet(seed: int) -> Dict[str, Any]:
            return fleet_payload(FleetConfig(
                n_nodes=max(args.nodes, 16), agent=args.agent,
                seed=seed, duration_s=3600,
            ))

        # Job 1 occupies the scheduler, job 2 fills the depth-1 queue,
        # job 3 must be rejected with the explicit backpressure shape.
        got_backpressure = False
        for attempt in range(3):
            replies = [
                client.submit("fleet", long_fleet(1000 + attempt * 10 + i),
                              workers=2)
                for i in range(3)
            ]
            rejected = [r for r in replies if r.get("backpressure")]
            if rejected:
                reply = rejected[0]
                got_backpressure = True
                if reply.get("retry_after_s", 0) <= 0:
                    failures.append(
                        "backpressure reply missing a positive "
                        "retry_after_s"
                    )
                if reply.get("queue_limit") != 1:
                    failures.append(
                        f"backpressure reply reports queue_limit="
                        f"{reply.get('queue_limit')}, expected 1"
                    )
                print(
                    f"[backpressure: {reply['error']} "
                    f"(retry in {reply['retry_after_s']:.1f}s)]"
                )
                break
            time.sleep(0.2)  # scheduler drained the queue too fast
        if not got_backpressure:
            failures.append(
                "a queue-limit-1 server accepted 9 concurrent "
                "submissions without a backpressure rejection"
            )
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=60.0)
        if server.returncode != 143:
            failures.append(
                f"SIGTERM drain exited {server.returncode}, expected "
                f"143: {_tail(root, 'server3')}"
            )
        else:
            print("[drain: SIGTERM → exit 143]")
    except subprocess.TimeoutExpired:
        failures.append("server did not exit within 60s of SIGTERM")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    leftover = _leases(root)
    if leftover:
        failures.append(
            f"leases left behind after SIGTERM drain: "
            f"{', '.join(leftover)}"
        )
    else:
        print("[drain: all journal leases released]")


def run_kill_server_harness(args: argparse.Namespace) -> int:
    """``repro chaos serve --kill-server N --job KIND`` entry point."""
    import shutil

    print(f"== chaos serve: kill-server after record "
          f"#{args.kill_server} ({args.job} job) ==")
    root = tempfile.mkdtemp(prefix="repro-kill-server-")
    failures: List[str] = []
    try:
        _phase_kill_resume(args, root, failures)
        if not failures:
            _phase_backpressure_drain(
                args, os.path.join(root, "phase-b"), failures
            )
        return _verdict(failures)
    finally:
        shutil.rmtree(root, ignore_errors=True)
