"""Serve jobs: admission-time validation and journaled execution.

A job is one fleet / reproduce / sweep invocation expressed as the
journal's own canonical config payload (DESIGN.md §12) — which makes
three properties fall out for free:

* **deterministic identity**: the job's ``run_id`` is
  :func:`~repro.journal.run.derive_run_id` over the same payload the
  journal hashes, so resubmitting the same work maps to the same run
  journal (and an active duplicate can be deduplicated at admission);
* **crash-equivalence**: the server executes every job with
  ``resume=True``, i.e. "adopt this run's journal if it exists, else
  start it" — a job is indistinguishable from a resume of itself, so a
  SIGKILLed server's restart re-adopts interrupted jobs with zero
  re-execution of journaled units;
* **reconstruction**: an adopted run's manifest alone rebuilds the job
  (:func:`job_from_run_info`), no memory of the original submission
  needed.

Execution happens in a worker thread (``asyncio.to_thread``); the
server's event loop stays responsive.  Progress streams out through a
:class:`JournalTap` — a delegating wrapper around the run journal whose
record hooks double as event emitters, so "what the client sees" is
exactly "what became durable", in order.  Cancellation is cooperative
and two-pronged: the thread's ambient
:func:`~repro.resilience.supervisor.cancel_token` stops pooled
dispatch between poll iterations (in-flight workers killed, pool kept
warm), and the tap's ``record_dispatched`` hook stops inline
(``workers=1``) execution between units.  Either way the journal is
left unsealed — resumable — and the lease is released.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.journal.registry import RunInfo
from repro.journal.run import RunJournal, derive_run_id
from repro.obs import run_tracing
from repro.resilience.supervisor import (
    DispatchCancelled,
    set_cancel_token,
)

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobCancelled",
    "JournalTap",
    "execute_job",
    "job_from_run_info",
    "job_from_submission",
]

JOB_KINDS = ("fleet", "reproduce", "sweep")

#: Statuses a job can end in (no further events after these).
TERMINAL_STATUSES = (
    "done", "failed", "cancelled", "expired", "drained",
)

Emit = Callable[..., None]


class JobCancelled(DispatchCancelled):
    """Inline-path cancellation, raised between units by the tap."""


@dataclass
class Job:
    """One admitted (or adopted) unit of control-plane work."""

    job_id: str
    kind: str
    payload: Dict[str, Any]
    run_id: str
    workers: int = 2
    deadline_s: Optional[float] = None
    adopted: bool = False
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    digest: Optional[str] = None
    error: Optional[str] = None
    counters: Dict[str, int] = field(default_factory=dict)
    cancel: threading.Event = field(default_factory=threading.Event)
    cancel_reason: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def request_cancel(self, reason: str) -> None:
        """Arm cooperative cancellation (first reason wins)."""
        if self.cancel_reason is None:
            self.cancel_reason = reason
        self.cancel.set()

    def view(self) -> Dict[str, Any]:
        """The wire-serializable status snapshot of this job."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "run_id": self.run_id,
            "status": self.status,
            "workers": self.workers,
            "deadline_s": self.deadline_s,
            "adopted": self.adopted,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "digest": self.digest,
            "error": self.error,
            "counters": dict(self.counters),
        }


def _normalized_payload(kind: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Validate + canonicalize a submission config for ``kind``.

    Round-trips through the same payload constructors the journal
    openers hash, so the admission-time ``run_id`` matches the journal
    the execution will open bit-for-bit.

    Raises:
        ValueError: malformed config for this kind.
    """
    from repro.journal.pipelines import (
        fleet_config_from_payload,
        fleet_payload,
        reproduce_payload,
        reproduce_selection_from_payload,
        spec_from_payload,
        sweep_payload,
    )

    try:
        if kind == "fleet":
            return fleet_payload(fleet_config_from_payload(config))
        if kind == "reproduce":
            from repro.experiments.driver import ARTIFACTS

            names, scale = reproduce_selection_from_payload(config)
            unknown = set(names) - set(ARTIFACTS)
            if unknown:
                raise ValueError(
                    f"unknown artifacts: {sorted(unknown)}"
                )
            ordered = [n for n in ARTIFACTS if n in names]
            return reproduce_payload(ordered, scale)
        if kind == "sweep":
            return sweep_payload(spec_from_payload(config))
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"malformed {kind} config: {type(exc).__name__}: {exc}"
        ) from exc
    raise ValueError(
        f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
    )


def job_from_submission(
    job_id: str, message: Dict[str, Any]
) -> Job:
    """Build a validated job from a ``submit`` message.

    Raises:
        ValueError: unknown kind, malformed config, or bad knobs.
    """
    kind = message.get("kind")
    config = message.get("config")
    if not isinstance(kind, str):
        raise ValueError("submit needs a 'kind' string")
    if not isinstance(config, dict):
        raise ValueError("submit needs a 'config' object")
    payload = _normalized_payload(kind, config)
    raw_workers = message.get("workers")
    workers = 2 if raw_workers is None else int(raw_workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    deadline_s = message.get("deadline_s")
    if deadline_s is not None:
        deadline_s = float(deadline_s)
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
    return Job(
        job_id=job_id,
        kind=kind,
        payload=payload,
        run_id=derive_run_id(kind, payload),
        workers=workers,
        deadline_s=deadline_s,
    )


def job_from_run_info(job_id: str, info: RunInfo) -> Job:
    """Rebuild an adoptable job from an interrupted run's manifest."""
    payload = dict(info.manifest.get("config", {}))
    workers = int(info.manifest.get("plan", {}).get("workers", 2) or 2)
    return Job(
        job_id=job_id,
        kind=info.kind,
        payload=payload,
        run_id=info.run_id,
        workers=max(workers, 1),
        adopted=True,
    )


class JournalTap:
    """Delegating journal wrapper: durable records double as events.

    Every attribute not overridden here reaches through to the wrapped
    :class:`RunJournal`, so the pipelines use the tap exactly like the
    journal.  The overridden record hooks (a) forward to the journal
    first — an event is only ever emitted for a record that is already
    durable — and (b) check the job's cancel flag on dispatch intent,
    which is the between-units cancellation point for inline
    (pool-free) execution paths.
    """

    def __init__(self, journal: RunJournal, job: Job, emit: Emit) -> None:
        self._journal = journal
        self._job = job
        self._emit = emit

    def __getattr__(self, name: str) -> Any:
        return getattr(self._journal, name)

    def _progress(self) -> Dict[str, int]:
        stats = self._journal.stats
        return {
            "total": len(self._journal.units),
            "done": stats.replayed + stats.executed + stats.cached,
            "replayed": stats.replayed,
            "executed": stats.executed,
            "cached": stats.cached,
            "quarantined": stats.quarantined,
        }

    def record_dispatched(self, unit_id: str, attempt: int) -> None:
        if self._job.cancel.is_set():
            raise JobCancelled(
                f"job {self._job.job_id} cancelled before dispatching "
                f"{unit_id}"
            )
        self._journal.record_dispatched(unit_id, attempt)

    def record_done(
        self,
        unit_id: str,
        payload: Any,
        wall_s: float,
        executed: bool = True,
    ) -> None:
        self._journal.record_done(
            unit_id, payload, wall_s, executed=executed
        )
        self._emit(
            "unit",
            unit=unit_id,
            executed=bool(executed),
            progress=self._progress(),
        )

    def record_quarantined(self, unit_id: str, fault_kind: str) -> None:
        self._journal.record_quarantined(unit_id, fault_kind)
        self._emit(
            "quarantined",
            unit=unit_id,
            fault=fault_kind,
            progress=self._progress(),
        )

    def seal(self, digest: str) -> None:
        self._journal.seal(digest)
        self._emit("sealed", digest=digest, progress=self._progress())


def execute_job(
    job: Job, cache_root: str, emit: Emit
) -> Dict[str, Any]:
    """Run one job to completion in the calling (worker) thread.

    Opens the job's journal in resume mode (adopt-or-create), installs
    the thread's cancel token, runs the pipeline, and always closes the
    journal — releasing the lease — on the way out, success or not.

    Returns:
        ``{"digest", "journal": {...counts...}, "cache": {...stats...}}``.

    Raises:
        DispatchCancelled: the job was cancelled (journal resumable).
        Exception: whatever the pipeline raised (job failed).
    """
    from functools import partial

    from repro.cache import ResultCache
    from repro.journal.pipelines import (
        fleet_config_from_payload,
        open_fleet_journal,
        open_reproduce_journal,
        open_sweep_journal,
        reproduce_selection_from_payload,
        spec_from_payload,
    )

    set_cancel_token(job.cancel)
    journal: Optional[RunJournal] = None
    cache: Optional[ResultCache] = None
    try:
        if job.kind == "fleet":
            from repro.experiments.driver import FleetDriver

            config = fleet_config_from_payload(job.payload)
            journal = open_fleet_journal(
                cache_root, config, job.workers,
                resume=True, run_id=job.run_id,
            )
            tap = JournalTap(journal, job, emit)
            run_pipeline = FleetDriver(
                config, workers=job.workers, journal=tap
            ).run
        elif job.kind == "reproduce":
            from repro.experiments.driver import reproduce_all

            names, scale = reproduce_selection_from_payload(job.payload)
            journal = open_reproduce_journal(
                cache_root, names, scale,
                resume=True, run_id=job.run_id,
            )
            cache = ResultCache(cache_root)
            tap = JournalTap(journal, job, emit)
            run_pipeline = partial(
                reproduce_all,
                parallel=job.workers > 1,
                workers=job.workers,
                scale=scale,
                only=names,
                cache=cache,
                journal=tap,
            )
        elif job.kind == "sweep":
            from repro.sweep import SweepRunner

            spec = spec_from_payload(job.payload)
            journal = open_sweep_journal(
                cache_root, spec, resume=True, run_id=job.run_id
            )
            cache = ResultCache(cache_root)
            tap = JournalTap(journal, job, emit)
            run_pipeline = SweepRunner(
                spec, workers=job.workers, cache=cache, journal=tap
            ).run
        else:  # pragma: no cover — admission validates kinds
            raise ValueError(f"unknown job kind {job.kind!r}")
        emit(
            "started",
            run_id=journal.run_id,
            units=len(journal.units),
            replayed=journal.stats.replayed,
        )
        # The admission→execution span: the job's whole pipeline runs
        # under a traced root whose sidecar lands next to the journal
        # (DESIGN.md §14); queue wait is admission-to-start.
        queue_wait_s = max(
            0.0, (job.started_at or time.time()) - job.submitted_at
        )
        with run_tracing(
            journal,
            job_id=job.job_id,
            kind=job.kind,
            adopted=job.adopted,
            queue_wait_s=round(queue_wait_s, 6),
        ):
            run_pipeline()
        stats = journal.stats
        return {
            "digest": journal.sealed_digest,
            "journal": {
                "replayed": stats.replayed,
                "executed": stats.executed,
                "cached": stats.cached,
                "quarantined": stats.quarantined,
                "total": len(journal.units),
            },
            "cache": (
                cache.stats.snapshot() if cache is not None else {}
            ),
        }
    finally:
        set_cancel_token(None)
        if journal is not None:
            journal.close()
