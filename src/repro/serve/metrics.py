"""Serve observability: one structured snapshot for the ``metrics`` verb.

Aggregates the four layers a control-plane operator cares about —
admission (queue depth/limit, accepted/rejected/deduplicated/adopted
counters), jobs (per-status population), the shared worker pool
(:func:`~repro.experiments.driver.shared_pool_counters`), and the
durable substrate (journal unit counters and cache stats accumulated
across finished jobs).  Everything is plain JSON-serializable ints and
strings so the snapshot travels the wire protocol unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable

from repro.serve.jobs import Job

__all__ = ["ServeMetrics"]


@dataclass
class ServeMetrics:
    """Monotonic server-lifetime counters + live gauges on demand."""

    submitted: int = 0
    rejected: int = 0
    deduplicated: int = 0
    adopted: int = 0
    invalid: int = 0
    events_emitted: int = 0
    events_dropped: int = 0
    journal_totals: Dict[str, int] = field(default_factory=dict)
    cache_totals: Dict[str, int] = field(default_factory=dict)

    def absorb_result(self, result: Dict[str, Any]) -> None:
        """Fold one finished job's journal/cache counters into totals."""
        for key, value in (result.get("journal") or {}).items():
            if isinstance(value, int):
                self.journal_totals[key] = (
                    self.journal_totals.get(key, 0) + value
                )
        for key, value in (result.get("cache") or {}).items():
            if isinstance(value, int):
                self.cache_totals[key] = (
                    self.cache_totals.get(key, 0) + value
                )

    def snapshot(
        self,
        jobs: Iterable[Job],
        queue_depth: int,
        queue_limit: int,
        accepting: bool,
        draining: bool,
    ) -> Dict[str, Any]:
        """The full ``metrics`` reply body."""
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        from repro.experiments.driver import shared_pool_counters

        return {
            "queue": {
                "depth": int(queue_depth),
                "limit": int(queue_limit),
                "accepting": bool(accepting),
                "draining": bool(draining),
            },
            "jobs": {
                "by_status": by_status,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "deduplicated": self.deduplicated,
                "adopted": self.adopted,
                "invalid": self.invalid,
            },
            "events": {
                "emitted": self.events_emitted,
                "dropped": self.events_dropped,
            },
            "pool": shared_pool_counters(),
            "journal": dict(self.journal_totals),
            "cache": dict(self.cache_totals),
        }
