"""Serve observability: one structured snapshot for the ``metrics`` verb.

Aggregates the four layers a control-plane operator cares about —
admission (queue depth/limit, accepted/rejected/deduplicated/adopted
counters), jobs (per-status population), the shared worker pool
(:func:`~repro.experiments.driver.shared_pool_counters`), and the
durable substrate (journal unit counters and cache stats accumulated
across finished jobs).  Everything is plain JSON-serializable ints and
strings so the snapshot travels the wire protocol unchanged.

Storage lives in a :class:`~repro.obs.metrics.MetricsRegistry`
(DESIGN.md §14): the int fields below are registry-backed properties,
so the server's ``metrics.submitted += 1`` call sites are unchanged
while the same counters feed the Prometheus exposition
(``repro serve metrics --prometheus``) and the telemetry sidecars.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.obs.metrics import MetricsRegistry, counter_property
from repro.serve.jobs import Job

__all__ = ["ServeMetrics"]

_JOURNAL_PREFIX = "serve.journal."
_CACHE_PREFIX = "serve.cache."


class ServeMetrics:
    """Monotonic server-lifetime counters + live gauges on demand."""

    FIELDS = (
        "submitted",
        "rejected",
        "deduplicated",
        "adopted",
        "invalid",
        "events_emitted",
        "events_dropped",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        # Track which journal/cache total keys exist so snapshots can
        # rebuild the nested dicts without scanning the whole registry.
        self._journal_keys: Dict[str, bool] = {}
        self._cache_keys: Dict[str, bool] = {}

    submitted = counter_property("serve.submitted")
    rejected = counter_property("serve.rejected")
    deduplicated = counter_property("serve.deduplicated")
    adopted = counter_property("serve.adopted")
    invalid = counter_property("serve.invalid")
    events_emitted = counter_property("serve.events_emitted")
    events_dropped = counter_property("serve.events_dropped")

    @property
    def journal_totals(self) -> Dict[str, int]:
        return {
            key: self.registry.counter(_JOURNAL_PREFIX + key).value
            for key in self._journal_keys
        }

    @property
    def cache_totals(self) -> Dict[str, int]:
        return {
            key: self.registry.counter(_CACHE_PREFIX + key).value
            for key in self._cache_keys
        }

    def absorb_result(self, result: Dict[str, Any]) -> None:
        """Fold one finished job's journal/cache counters into totals."""
        for key, value in (result.get("journal") or {}).items():
            if isinstance(value, int):
                self._journal_keys[key] = True
                self.registry.counter(_JOURNAL_PREFIX + key).inc(value)
        for key, value in (result.get("cache") or {}).items():
            if isinstance(value, int):
                self._cache_keys[key] = True
                self.registry.counter(_CACHE_PREFIX + key).inc(value)

    def snapshot(
        self,
        jobs: Iterable[Job],
        queue_depth: int,
        queue_limit: int,
        accepting: bool,
        draining: bool,
    ) -> Dict[str, Any]:
        """The full ``metrics`` reply body."""
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        from repro.experiments.driver import shared_pool_counters

        return {
            "queue": {
                "depth": int(queue_depth),
                "limit": int(queue_limit),
                "accepting": bool(accepting),
                "draining": bool(draining),
            },
            "jobs": {
                "by_status": by_status,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "deduplicated": self.deduplicated,
                "adopted": self.adopted,
                "invalid": self.invalid,
            },
            "events": {
                "emitted": self.events_emitted,
                "dropped": self.events_dropped,
            },
            "pool": shared_pool_counters(),
            "journal": dict(self.journal_totals),
            "cache": dict(self.cache_totals),
        }
