"""The serve wire protocol: JSON-lines over a local stream socket.

One message per line, UTF-8 JSON objects, newline-terminated — trivially
inspectable with ``nc -U`` and composable with any language's stdlib.
Requests carry a ``verb``; replies carry ``ok`` (bool) plus
verb-specific fields; streamed job events carry ``event`` + a per-job
``seq``.  A line longer than :data:`MAX_LINE` is a protocol error on
both sides: the server must never buffer an unbounded request line, and
a client must never be asked to parse one.

Verbs (DESIGN.md §13):

``ping``
    liveness + server identity.
``submit``
    admit one job: ``kind`` (fleet | reproduce | sweep), ``config``
    (the journal's canonical config payload for that kind), optional
    ``workers`` / ``deadline_s``.  Replies ``ok`` with ``job_id`` and
    ``run_id``, or an explicit backpressure rejection when the
    admission queue is full.
``status``
    one job (``job_id``) or every known job.
``metrics``
    queue, pool, cache, journal, and per-status job counters.
``cancel``
    cooperative cancel of a queued or running job; the journal stays
    resumable.
``watch``
    subscribe to a job's event stream from ``since`` (exclusive seq);
    the server streams events until the job reaches a terminal status.
``drain``
    stop admitting, finish or checkpoint in-flight work, release
    leases, exit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

__all__ = [
    "MAX_LINE",
    "PROTOCOL_VERSION",
    "VERBS",
    "ProtocolError",
    "backpressure",
    "decode",
    "encode",
    "error",
    "event",
    "ok",
]

#: Hard bound on one encoded message line (newline included) — the
#: explicit never-unbounded-memory contract of the admission surface.
MAX_LINE = 1 << 20

PROTOCOL_VERSION = 1

VERBS = (
    "ping",
    "submit",
    "status",
    "metrics",
    "cancel",
    "watch",
    "drain",
)


class ProtocolError(ValueError):
    """A malformed, oversized, or non-object message."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line.

    Raises:
        ProtocolError: the encoded line would exceed :data:`MAX_LINE`
            or the message is not JSON-serializable.
    """
    try:
        line = json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc
    if len(line) > MAX_LINE:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE}-byte "
            "line limit"
        )
    return line


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one received line back into a message object.

    Raises:
        ProtocolError: oversized, non-JSON, or non-object line.
    """
    if len(line) > MAX_LINE:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the {MAX_LINE}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def ok(**fields: Any) -> Dict[str, Any]:
    """A success reply."""
    return {"ok": True, **fields}


def error(message: str, **fields: Any) -> Dict[str, Any]:
    """A failure reply (connection stays usable)."""
    return {"ok": False, "error": message, **fields}


def backpressure(retry_after_s: float, depth: int, limit: int) -> Dict[str, Any]:
    """The explicit admission rejection: queue full, come back later.

    Distinct from a generic error so clients can branch on
    ``backpressure`` rather than parsing prose; ``retry_after_s`` is
    the server's load-based hint.
    """
    return {
        "ok": False,
        "error": f"admission queue full ({depth}/{limit})",
        "backpressure": True,
        "retry_after_s": float(retry_after_s),
        "queue_depth": int(depth),
        "queue_limit": int(limit),
    }


def event(
    job_id: str, seq: int, kind: str, fields: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One streamed job event (``seq`` is per-job, monotonically 1..N)."""
    return {
        "event": kind,
        "job_id": job_id,
        "seq": int(seq),
        **(fields or {}),
    }
