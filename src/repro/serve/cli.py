"""``repro serve``: CLI surface of the control plane.

Subcommands::

    repro serve start   [--socket PATH] [--queue-limit N]
                        [--drain-grace S] [--no-adopt] [--cache-dir PATH]
    repro serve submit  (fleet|reproduce|sweep) [kind flags]
                        [--workers N] [--deadline S] [--watch]
    repro serve status  [JOB_ID]
    repro serve watch   JOB_ID [--since SEQ]
    repro serve cancel  JOB_ID
    repro serve metrics
    repro serve drain
    repro serve ping

``start`` runs the server in the foreground (it *is* the orchestrator
process — kill it to exercise the crash path); everything else is a
client verb against the server's socket.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Any, Dict, Optional

from repro.cache import default_cache_dir

__all__ = ["add_serve_parser", "cmd_serve"]


def _add_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", metavar="PATH", default=None,
        help="server socket (default: <cache>/serve.sock)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="client I/O timeout in seconds (default: %(default)s)",
    )


def add_serve_parser(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve",
        help="crash-tolerant control plane: a local job server with "
             "admission control, live drain, and journal-backed resume",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    start = serve_sub.add_parser(
        "start", help="run the server in the foreground"
    )
    _add_client_flags(start)
    start.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="bounded admission queue size; beyond it submissions get "
             "an explicit backpressure rejection (default: %(default)s)",
    )
    start.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="S",
        help="SIGTERM grace before in-flight jobs are cancelled "
             "(default: %(default)ss)",
    )
    start.add_argument(
        "--no-adopt", dest="adopt", action="store_false", default=True,
        help="do not re-adopt interrupted runs found at startup",
    )
    start.add_argument(
        "--workers", type=int, default=2,
        help="pool size for adopted jobs with no recorded worker count",
    )

    submit = serve_sub.add_parser(
        "submit", help="submit one job and (by default) watch it"
    )
    kind_sub = submit.add_subparsers(dest="submit_kind", required=True)
    fleet = kind_sub.add_parser("fleet")
    fleet.add_argument("--nodes", type=int, default=16)
    fleet.add_argument("--agent", default="overclock")
    fleet.add_argument("--seconds", type=int, default=120)
    fleet.add_argument("--seed", type=int, default=0)
    reproduce = kind_sub.add_parser("reproduce")
    reproduce.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="restrict to these artifacts (repeatable)",
    )
    reproduce.add_argument("--scale", type=float, default=1.0)
    sweep = kind_sub.add_parser("sweep")
    sweep.add_argument("--spec", required=True, metavar="PATH")
    for kind_parser in (fleet, reproduce, sweep):
        _add_client_flags(kind_parser)
        kind_parser.add_argument(
            "--workers", type=int, default=2,
            help="pool size the server runs this job with",
        )
        kind_parser.add_argument(
            "--deadline", type=float, default=None, metavar="S",
            help="cancel the job if it runs longer than S seconds",
        )
        kind_parser.add_argument(
            "--no-watch", dest="watch", action="store_false",
            default=True,
            help="print the job id and return instead of streaming "
                 "events",
        )

    status = serve_sub.add_parser("status", help="job status")
    status.add_argument("job_id", nargs="?", default=None)
    _add_client_flags(status)

    watch = serve_sub.add_parser("watch", help="stream a job's events")
    watch.add_argument("job_id")
    watch.add_argument("--since", type=int, default=0, metavar="SEQ")
    _add_client_flags(watch)

    cancel = serve_sub.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job_id")
    _add_client_flags(cancel)

    metrics = serve_sub.add_parser(
        "metrics", help="queue / pool / cache / journal counters"
    )
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="print Prometheus text exposition instead of JSON",
    )
    _add_client_flags(metrics)

    drain = serve_sub.add_parser(
        "drain", help="graceful server shutdown (finish in-flight work)"
    )
    _add_client_flags(drain)

    ping = serve_sub.add_parser("ping", help="server liveness")
    _add_client_flags(ping)


def _socket_path(args: argparse.Namespace) -> str:
    from repro.serve.server import default_socket_path

    if args.socket:
        return args.socket
    return default_socket_path(args.cache_dir or default_cache_dir())


def _client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    return ServeClient(_socket_path(args), timeout=args.timeout)


def _print_reply(reply: Dict[str, Any]) -> int:
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0 if reply.get("ok") else 1


def _render_event(message: Dict[str, Any]) -> str:
    kind = message.get("event", "?")
    parts = [f"[{message.get('job_id')}#{message.get('seq')}] {kind}"]
    progress = message.get("progress")
    if progress:
        parts.append(
            f"{progress.get('done', 0)}/{progress.get('total', 0)} done"
        )
    for key in ("unit", "digest", "error", "reason", "run_id"):
        if message.get(key) is not None:
            parts.append(f"{key}={message[key]}")
    return "  ".join(parts)


def _cmd_start(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeServer

    server = ServeServer(
        cache_root=args.cache_dir or default_cache_dir(),
        socket_path=args.socket,
        queue_limit=args.queue_limit,
        drain_grace_s=args.drain_grace,
        adopt=args.adopt,
        default_workers=args.workers,
    )
    return asyncio.run(server.run())


def _submission_config(args: argparse.Namespace) -> Dict[str, Any]:
    from repro.journal.pipelines import (
        fleet_payload,
        reproduce_payload,
        sweep_payload,
    )

    if args.submit_kind == "fleet":
        from repro.fleet.config import FleetConfig

        return fleet_payload(FleetConfig(
            n_nodes=args.nodes,
            agent=args.agent,
            seed=args.seed,
            duration_s=args.seconds,
        ))
    if args.submit_kind == "reproduce":
        from repro.experiments.driver import ARTIFACTS

        names = args.only or list(ARTIFACTS)
        return reproduce_payload(names, args.scale)
    assert args.submit_kind == "sweep"
    from repro.sweep import load_spec

    try:
        spec = load_spec(args.spec)
    except OSError as error:
        raise SystemExit(
            f"repro: error: cannot read {args.spec}: {error}"
        )
    return sweep_payload(spec)


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    reply = client.submit(
        args.submit_kind,
        _submission_config(args),
        workers=args.workers,
        deadline_s=args.deadline,
    )
    if not reply.get("ok"):
        if reply.get("backpressure"):
            print(
                f"repro: serve: {reply['error']} — retry in "
                f"{reply['retry_after_s']:.1f}s"
            )
            return 75  # EX_TEMPFAIL: explicit, retryable rejection
        print(f"repro: serve: {reply.get('error', 'submit failed')}")
        return 1
    job_id = reply["job_id"]
    note = " (deduplicated)" if reply.get("deduplicated") else ""
    print(f"[serve: job {job_id} run {reply['run_id']}{note}]")
    if not args.watch:
        return 0
    for message in client.watch(job_id):
        print(_render_event(message))
        if message.get("event") == "done":
            return 0
        if message.get("event") in ("failed", "cancelled", "expired"):
            return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _client(args)
    last: Optional[str] = None
    for message in client.watch(args.job_id, since=args.since):
        print(_render_event(message))
        last = message.get("event")
    return 0 if last == "done" else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeUnavailable

    if args.serve_command == "start":
        return _cmd_start(args)
    try:
        if args.serve_command == "submit":
            return _cmd_submit(args)
        if args.serve_command == "status":
            return _print_reply(_client(args).status(args.job_id))
        if args.serve_command == "watch":
            return _cmd_watch(args)
        if args.serve_command == "cancel":
            return _print_reply(_client(args).cancel(args.job_id))
        if args.serve_command == "metrics":
            if args.prometheus:
                reply = _client(args).metrics(fmt="prometheus")
                if not reply.get("ok"):
                    return _print_reply(reply)
                print(reply.get("text", ""), end="")
                return 0
            return _print_reply(_client(args).metrics())
        if args.serve_command == "drain":
            return _print_reply(_client(args).drain())
        assert args.serve_command == "ping"
        return _print_reply(_client(args).ping())
    except ServeUnavailable as error:
        print(f"repro: serve: {error}")
        return 69  # EX_UNAVAILABLE
