"""The campaign engine: cache-aware, longest-first parallel dispatch.

:class:`SweepRunner` executes a :class:`~repro.sweep.spec.CampaignSpec`
the same way ``reproduce_all`` executes the paper's artifacts
(DESIGN.md §8): every cell is first probed in the content-addressed
result cache under its ``sweep::`` key; only misses are dispatched, and
they go longest-first (estimated node-seconds) through the process-wide
warm worker pool (:func:`repro.experiments.driver.shared_pool`).  A
warm re-run therefore executes zero cells, and editing one axis of a
campaign re-executes only the changed cells — everything else loads.

Cell results are pure functions of cell coordinates, so completion
order and worker count cannot change a record bit; the
:class:`~repro.sweep.safety.CampaignReport` digest pins this.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.cache import ResultCache, sweep_unit_key
from repro.journal.run import RunJournal
from repro.obs import spans as obs
from repro.resilience.chaos import ChaosPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.quarantine import QuarantineLog
from repro.resilience.supervisor import supervised_map
from repro.sweep.safety import CampaignReport, SafetyRecord
from repro.sweep.spec import CampaignSpec
from repro.sweep.units import SweepUnit, run_unit

__all__ = ["SweepRunner"]

_CACHE_MISS = object()


class SweepRunner:
    """Run one campaign, incrementally and (optionally) in parallel.

    Args:
        spec: the campaign grid.
        workers: worker processes; 1 runs cells inline, >1 dispatches
            cache misses onto the shared warm pool through the
            supervised dispatcher (DESIGN.md §11) — cells whose workers
            die or stall retry, poison cells become explicit report
            holes.
        cache: consult (and fill) this result cache per cell; ``None``
            recomputes everything.
        resilience: retry/backoff/deadline policy for pooled dispatch.
        quarantine: where poisoned cells are persisted (optional).
        chaos: fault-injection plan override (tests/harness only).
        journal: crash-consistent run ledger (DESIGN.md §12): journaled
            cells replay instead of probing the cache or executing,
            completions (cache hits included) are recorded durably, and
            the campaign seals with the report digest.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        resilience: Optional[RetryPolicy] = None,
        quarantine: Optional[QuarantineLog] = None,
        chaos: Optional[ChaosPlan] = None,
        journal: Optional[RunJournal] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workers = workers
        self.cache = cache
        self.resilience = resilience
        self.quarantine = quarantine
        self.chaos = chaos
        self.journal = journal

    def run(self) -> CampaignReport:
        """Execute the grid and aggregate the safety scoreboard."""
        with obs.span(
            "pipeline", cat="sweep",
            campaign=self.spec.name, workers=self.workers,
        ):
            return self._run()

    def _run(self) -> CampaignReport:
        started = time.perf_counter()
        units = self.spec.expand()
        records: Dict[str, SafetyRecord] = {}
        misses: List[SweepUnit] = []
        replayed_holes: List[str] = []
        for unit in units:
            unit_id = unit.unit_id()
            if self.journal is not None and self.journal.is_done(unit_id):
                records[unit_id] = self.journal.replayed[unit_id]
                continue
            if (
                self.journal is not None
                and unit_id in self.journal.replayed_quarantined
            ):
                replayed_holes.append(unit_id)
                continue
            payload = (
                _CACHE_MISS
                if self.cache is None
                else self.cache.get(
                    sweep_unit_key(unit.cache_payload()), _CACHE_MISS
                )
            )
            if payload is _CACHE_MISS:
                misses.append(unit)
            else:
                records[unit_id] = payload
                if self.journal is not None:
                    self.journal.record_done(
                        unit_id, payload, 0.0, executed=False
                    )
        # Longest-first dispatch (estimated node-seconds, then canonical
        # order): the biggest fleets land first so they never trail the
        # makespan.  Purely a wall-clock concern — results cannot move.
        misses.sort(key=lambda u: (-u.estimated_cost(), u.sort_key()))
        executed_holes = self._execute(misses, records)
        holes = sorted(executed_holes + replayed_holes)
        report = CampaignReport.build(
            self.spec.name,
            records.values(),
            executed=len(misses) - len(executed_holes),
            from_cache=len(units) - len(misses) - len(replayed_holes),
            wall_seconds=time.perf_counter() - started,
            holes=holes,
        )
        if self.journal is not None:
            self.journal.seal(report.digest())
        return report

    def _execute(
        self,
        misses: List[SweepUnit],
        records: Dict[str, SafetyRecord],
    ) -> List[str]:
        """Run every miss into ``records``; returns quarantined cell ids."""
        if not misses:
            return []
        journal = self.journal
        workers = min(self.workers, len(misses))
        if workers == 1 or len(misses) == 1:
            for unit in misses:
                unit_id = unit.unit_id()
                started = time.perf_counter()
                if journal is not None:
                    journal.record_dispatched(unit_id, 0)
                with obs.span(unit_id, cat="unit", context="sweep"):
                    record = run_unit(unit)
                if self.cache is not None:
                    self.cache.put(
                        sweep_unit_key(unit.cache_payload()), record
                    )
                if journal is not None:
                    journal.record_done(
                        unit_id, record, time.perf_counter() - started
                    )
                records[unit_id] = record
            return []
        # Imported lazily so a serial sweep never touches the pool
        # machinery; the pool itself is the process-wide warm pool the
        # fleet driver and reproduce_all already share.
        from repro.experiments.driver import shared_pool, shutdown_shared_pool

        by_id = {unit.unit_id(): unit for unit in misses}

        def handle_result(unit_id: str, record: SafetyRecord) -> None:
            if self.cache is not None:
                self.cache.put(
                    sweep_unit_key(by_id[unit_id].cache_payload()), record
                )
            if journal is not None:
                # After the cache write: a kill between the two leaves
                # a cached-but-unjournaled cell a resume loads from the
                # cache instead of re-executing.
                journal.record_done(unit_id, record, 0.0)
            records[unit_id] = record

        outcome = supervised_map(
            run_unit,
            [(unit.unit_id(), unit) for unit in misses],
            workers=workers,
            pool_factory=shared_pool,
            pool_shutdown=shutdown_shared_pool,
            policy=self.resilience,
            quarantine=self.quarantine,
            chaos=self.chaos,
            on_dispatch=(
                journal.record_dispatched if journal is not None else None
            ),
            on_result=handle_result,
            on_quarantine=(
                (
                    lambda record: journal.record_quarantined(
                        record.unit_id, record.kind
                    )
                )
                if journal is not None else None
            ),
            context="sweep",
        )
        return outcome.holes
