"""The campaign engine: cache-aware, longest-first parallel dispatch.

:class:`SweepRunner` executes a :class:`~repro.sweep.spec.CampaignSpec`
the same way ``reproduce_all`` executes the paper's artifacts
(DESIGN.md §8): every cell is first probed in the content-addressed
result cache under its ``sweep::`` key; only misses are dispatched, and
they go longest-first (estimated node-seconds) through the process-wide
warm worker pool (:func:`repro.experiments.driver.shared_pool`).  A
warm re-run therefore executes zero cells, and editing one axis of a
campaign re-executes only the changed cells — everything else loads.

Cell results are pure functions of cell coordinates, so completion
order and worker count cannot change a record bit; the
:class:`~repro.sweep.safety.CampaignReport` digest pins this.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.cache import ResultCache, sweep_unit_key
from repro.resilience.chaos import ChaosPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.quarantine import QuarantineLog
from repro.resilience.supervisor import supervised_map
from repro.sweep.safety import CampaignReport, SafetyRecord
from repro.sweep.spec import CampaignSpec
from repro.sweep.units import SweepUnit, run_unit

__all__ = ["SweepRunner"]

_CACHE_MISS = object()


class SweepRunner:
    """Run one campaign, incrementally and (optionally) in parallel.

    Args:
        spec: the campaign grid.
        workers: worker processes; 1 runs cells inline, >1 dispatches
            cache misses onto the shared warm pool through the
            supervised dispatcher (DESIGN.md §11) — cells whose workers
            die or stall retry, poison cells become explicit report
            holes.
        cache: consult (and fill) this result cache per cell; ``None``
            recomputes everything.
        resilience: retry/backoff/deadline policy for pooled dispatch.
        quarantine: where poisoned cells are persisted (optional).
        chaos: fault-injection plan override (tests/harness only).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        resilience: Optional[RetryPolicy] = None,
        quarantine: Optional[QuarantineLog] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.workers = workers
        self.cache = cache
        self.resilience = resilience
        self.quarantine = quarantine
        self.chaos = chaos

    def run(self) -> CampaignReport:
        """Execute the grid and aggregate the safety scoreboard."""
        started = time.perf_counter()
        units = self.spec.expand()
        records: Dict[str, SafetyRecord] = {}
        misses: List[SweepUnit] = []
        for unit in units:
            payload = (
                _CACHE_MISS
                if self.cache is None
                else self.cache.get(
                    sweep_unit_key(unit.cache_payload()), _CACHE_MISS
                )
            )
            if payload is _CACHE_MISS:
                misses.append(unit)
            else:
                records[unit.unit_id()] = payload
        # Longest-first dispatch (estimated node-seconds, then canonical
        # order): the biggest fleets land first so they never trail the
        # makespan.  Purely a wall-clock concern — results cannot move.
        misses.sort(key=lambda u: (-u.estimated_cost(), u.sort_key()))
        holes = self._execute(misses, records)
        return CampaignReport.build(
            self.spec.name,
            records.values(),
            executed=len(misses) - len(holes),
            from_cache=len(units) - len(misses),
            wall_seconds=time.perf_counter() - started,
            holes=holes,
        )

    def _execute(
        self,
        misses: List[SweepUnit],
        records: Dict[str, SafetyRecord],
    ) -> List[str]:
        """Run every miss into ``records``; returns quarantined cell ids."""
        if not misses:
            return []
        workers = min(self.workers, len(misses))
        if workers == 1 or len(misses) == 1:
            for unit in misses:
                record = run_unit(unit)
                if self.cache is not None:
                    self.cache.put(
                        sweep_unit_key(unit.cache_payload()), record
                    )
                records[unit.unit_id()] = record
            return []
        # Imported lazily so a serial sweep never touches the pool
        # machinery; the pool itself is the process-wide warm pool the
        # fleet driver and reproduce_all already share.
        from repro.experiments.driver import shared_pool, shutdown_shared_pool

        by_id = {unit.unit_id(): unit for unit in misses}

        def handle_result(unit_id: str, record: SafetyRecord) -> None:
            if self.cache is not None:
                self.cache.put(
                    sweep_unit_key(by_id[unit_id].cache_payload()), record
                )
            records[unit_id] = record

        outcome = supervised_map(
            run_unit,
            [(unit.unit_id(), unit) for unit in misses],
            workers=workers,
            pool_factory=shared_pool,
            pool_shutdown=shutdown_shared_pool,
            policy=self.resilience,
            quarantine=self.quarantine,
            chaos=self.chaos,
            on_result=handle_result,
            context="sweep",
        )
        return outcome.holes
