"""Declarative robustness campaigns: fault grids with a safety scoreboard.

The paper's evaluation (§6.1) is fundamentally a *campaign*: inject bad
inputs, broken models, and scheduling failures across agents and
scales, then measure how the safeguards hold QoS.  This package
composes the existing primitives — :mod:`repro.node.faults`,
:mod:`repro.fleet.faults`, :class:`~repro.fleet.scenario.FleetScenario`,
the content-addressed result cache, the warm worker pool — into
declarative grids:

* :class:`CampaignSpec` (plain dataclasses + a TOML/dict loader)
  describes a grid over agent kinds × fleet scales × fault plans
  (kind, intensity, window, rack correlation) × seeds;
* :meth:`CampaignSpec.expand` materialises deterministic
  :class:`SweepUnit` cells (plus one no-fault baseline cell per
  ``(agent, scale, seed)`` combination);
* :class:`SweepRunner` dispatches cells longest-first through the
  process-wide warm pool and consults the result cache under the
  ``sweep::`` key namespace, so re-running a campaign after editing one
  axis only executes the changed cells;
* each cell yields a :class:`SafetyRecord` (safeguard engagements,
  time-to-fallback, QoS-violation rate, action-histogram deltas vs the
  baseline cell), aggregated into an order-independent
  :class:`CampaignReport` with a content digest and per-axis frontier
  tables (DESIGN.md §9).

Entry point: ``python -m repro sweep run examples/campaigns/<spec>.toml``.
"""

from repro.sweep.runner import SweepRunner
from repro.sweep.safety import CampaignReport, SafetyRecord
from repro.sweep.spec import CampaignSpec, FaultAxis, load_spec, loads_toml
from repro.sweep.units import SweepUnit, run_unit

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "FaultAxis",
    "SafetyRecord",
    "SweepRunner",
    "SweepUnit",
    "load_spec",
    "loads_toml",
    "run_unit",
]
