"""The safety scoreboard: per-cell records and the campaign report.

A :class:`SafetyRecord` reduces one cell's fleet simulation to the
quantities the robustness question cares about: did the safeguards
engage, how fast did the fleet fall back to safe behavior, and what did
QoS pay?  Records are plain picklable data, pure in the cell's
coordinates.

:class:`CampaignReport` aggregates records order-independently (cells
are sorted by identity before any reduction), computes per-cell deltas
against the matching no-fault baseline cell, renders per-axis
*frontier* tables (safety vs. fault intensity), and exposes a content
digest over the canonical record list — runs with any worker count
agree on the digest iff they agree on every record bit (DESIGN.md §9).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.fleet.aggregate import FleetAggregate
from repro.sim.units import SEC
from repro.sweep.units import SweepUnit

__all__ = ["CampaignReport", "SafetyRecord"]


@dataclass(frozen=True)
class SafetyRecord:
    """Safety outcome of one campaign cell.

    Attributes:
        unit_id: canonical cell identity (:meth:`SweepUnit.unit_id`).
        agent / n_nodes / seed / fault_kind / intensity: cell
            coordinates (``fault_kind`` is ``"none"`` on baselines).
        fault_start_s / fault_duration_s / racks: the fault axis's
            window and blast radius (zeros/empty on baselines) — kept
            structurally so frontiers never merge same-kind axes with
            different windows or rack correlation.
        sim_seconds: simulated seconds per node.
        slo_windows / slo_violations: fleet QoS verdict counts.
        safeguard_trips: fleet-wide trigger counts by safeguard.
        action_histogram: actuations by prediction provenance.
        agent_kills / agent_restarts: crash-restart fault bookkeeping.
        affected_nodes: nodes inside the fault blast radius.
        engaged_nodes: affected nodes that fell back (safeguard trigger
            or default/none actuation) after fault onset.
        time_to_fallback_s: seconds from fault onset to the fleet's
            first fallback; ``None`` on baselines or when nothing
            engaged.
        fleet_digest: the underlying fleet aggregate's content digest —
            the strongest per-cell determinism anchor.
    """

    unit_id: str
    agent: str
    n_nodes: int
    seed: int
    fault_kind: str
    intensity: float
    fault_start_s: int
    fault_duration_s: int
    racks: Tuple[int, ...]
    sim_seconds: int
    slo_windows: int
    slo_violations: int
    safeguard_trips: Dict[str, int]
    action_histogram: Dict[str, int]
    agent_kills: int
    agent_restarts: int
    affected_nodes: int
    engaged_nodes: int
    time_to_fallback_s: Optional[float]
    fleet_digest: str

    @property
    def qos_violation_rate(self) -> float:
        if self.slo_windows == 0:
            return 0.0
        return self.slo_violations / self.slo_windows

    @property
    def total_trips(self) -> int:
        return sum(self.safeguard_trips.values())

    @property
    def axis_label(self) -> str:
        """The full fault axis this cell swept: kind, window, racks.

        Frontier tables group by this label (plus agent), so two axes
        of the same *kind* but different windows or rack correlation —
        whose cells are not comparable — never share a table.
        """
        racks = ",".join(str(r) for r in self.racks)
        return (
            f"{self.fault_kind}"
            f"[{self.fault_start_s}+{self.fault_duration_s}]r{racks}"
        )

    @property
    def fallback_share(self) -> float:
        """Fraction of actuations not driven by a live model prediction."""
        total = sum(self.action_histogram.values())
        if total == 0:
            return 0.0
        return (
            self.action_histogram.get("default", 0)
            + self.action_histogram.get("none", 0)
        ) / total

    @classmethod
    def from_fleet(
        cls, unit: SweepUnit, aggregate: FleetAggregate
    ) -> "SafetyRecord":
        """Reduce one cell's fleet aggregate to its safety record."""
        affected = 0
        engagements: List[int] = []
        if not unit.is_baseline:
            onset_us = unit.fault_start_s * SEC
            racks = set(unit.racks)
            for result in aggregate.results:
                if result.rack not in racks:
                    continue
                affected += 1
                stats = result.stats
                # Since-onset anchors (FleetNode exports them whenever a
                # fault window is attached): the first safeguard trigger
                # or fallback actuation *at or after* the burst onset —
                # a node whose warmup already fell back before the fault
                # still counts as engaged when the fault re-engages it.
                candidates = [
                    t
                    for t in (
                        stats.get(
                            "model_safeguard_first_trigger_since_fault_us"
                        ),
                        stats.get(
                            "actuator_safeguard_first_trigger_since_fault_us"
                        ),
                        stats.get("first_fallback_since_fault_us"),
                    )
                    if t is not None
                ]
                if candidates:
                    engagements.append(min(candidates))
            time_to_fallback = (
                (min(engagements) - onset_us) / SEC if engagements else None
            )
        else:
            time_to_fallback = None
        return cls(
            unit_id=unit.unit_id(),
            agent=unit.agent,
            n_nodes=unit.n_nodes,
            seed=unit.seed,
            fault_kind=unit.fault_kind or "none",
            intensity=unit.intensity,
            fault_start_s=unit.fault_start_s,
            fault_duration_s=unit.fault_duration_s,
            racks=tuple(unit.racks),
            sim_seconds=unit.duration_s,
            slo_windows=aggregate.slo_windows,
            slo_violations=aggregate.slo_violations,
            safeguard_trips=dict(sorted(aggregate.safeguard_trips.items())),
            action_histogram=dict(
                sorted(aggregate.action_histogram.items())
            ),
            agent_kills=sum(
                r.stats.get("agent_kills", 0) for r in aggregate.results
            ),
            agent_restarts=sum(
                r.stats.get("agent_restarts", 0) for r in aggregate.results
            ),
            affected_nodes=affected,
            engaged_nodes=len(engagements),
            time_to_fallback_s=time_to_fallback,
            fleet_digest=aggregate.digest(),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe canonical form (floats exact via ``repr``)."""
        return {
            "unit_id": self.unit_id,
            "agent": self.agent,
            "n_nodes": self.n_nodes,
            "seed": self.seed,
            "fault_kind": self.fault_kind,
            "intensity": repr(self.intensity),
            "fault_start_s": self.fault_start_s,
            "fault_duration_s": self.fault_duration_s,
            "racks": list(self.racks),
            "sim_seconds": self.sim_seconds,
            "slo_windows": self.slo_windows,
            "slo_violations": self.slo_violations,
            "safeguard_trips": dict(sorted(self.safeguard_trips.items())),
            "action_histogram": dict(sorted(self.action_histogram.items())),
            "agent_kills": self.agent_kills,
            "agent_restarts": self.agent_restarts,
            "affected_nodes": self.affected_nodes,
            "engaged_nodes": self.engaged_nodes,
            "time_to_fallback_s": (
                None
                if self.time_to_fallback_s is None
                else repr(self.time_to_fallback_s)
            ),
            "fleet_digest": self.fleet_digest,
        }


@dataclass
class CampaignReport:
    """Order-independent rollup of a campaign's safety records.

    Attributes:
        name: campaign name (reporting only; not digested).
        records: every cell's record in canonical (unit-id) order.
        executed / from_cache: how many cells ran vs. loaded (warm runs
            have ``executed == 0``; excluded from the digest).
        wall_seconds: elapsed campaign wall time (excluded from digest).
        holes: cell ids quarantined by the supervised dispatcher
            (DESIGN.md §11) — their records are missing, explicitly.
            The digest covers only the records present, so a partial
            report never masquerades as a complete one with different
            bits; callers check :attr:`partial`/:attr:`holes` to tell
            them apart.
    """

    name: str
    records: List[SafetyRecord]
    executed: int = 0
    from_cache: int = 0
    wall_seconds: float = 0.0
    holes: Tuple[str, ...] = ()
    _baselines: Dict[Tuple[str, int, int], SafetyRecord] = field(
        init=False, repr=False, default_factory=dict
    )

    @classmethod
    def build(
        cls,
        name: str,
        records: Iterable[SafetyRecord],
        executed: int = 0,
        from_cache: int = 0,
        wall_seconds: float = 0.0,
        holes: Iterable[str] = (),
    ) -> "CampaignReport":
        ordered = sorted(records, key=lambda r: r.unit_id)
        ids = [r.unit_id for r in ordered]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate cell records in campaign")
        return cls(
            name=name,
            records=ordered,
            executed=executed,
            from_cache=from_cache,
            wall_seconds=wall_seconds,
            holes=tuple(sorted(holes)),
        )

    @property
    def partial(self) -> bool:
        """Whether any cell is missing from this report."""
        return bool(self.holes)

    def __post_init__(self) -> None:
        for record in self.records:
            if record.fault_kind == "none":
                self._baselines[
                    (record.agent, record.n_nodes, record.seed)
                ] = record

    # -- canonical form ------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over the canonical record list.

        Depends only on the cell results (sorted by identity) — not on
        the campaign name, worker count, completion order, or cache
        state — so ``--workers 1`` and ``--workers 8``, cold and warm,
        agree bit-for-bit iff every cell agrees.
        """
        payload = json.dumps(
            [record.as_dict() for record in self.records], sort_keys=True
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- baseline deltas -----------------------------------------------------

    def baseline_for(self, record: SafetyRecord) -> Optional[SafetyRecord]:
        """The no-fault cell this record compares against, if present."""
        return self._baselines.get(
            (record.agent, record.n_nodes, record.seed)
        )

    def deltas(self, record: SafetyRecord) -> Optional[Dict[str, Any]]:
        """Safety deltas of one faulted cell vs. its baseline cell."""
        baseline = self.baseline_for(record)
        if baseline is None or record.fault_kind == "none":
            return None
        action_delta = {
            key: record.action_histogram.get(key, 0)
            - baseline.action_histogram.get(key, 0)
            for key in sorted(
                set(record.action_histogram) | set(baseline.action_histogram)
            )
        }
        return {
            "qos_violation_delta": (
                record.qos_violation_rate - baseline.qos_violation_rate
            ),
            "safeguard_trips_delta": (
                record.total_trips - baseline.total_trips
            ),
            "fallback_share_delta": (
                record.fallback_share - baseline.fallback_share
            ),
            "action_histogram_delta": action_delta,
        }

    # -- frontier ------------------------------------------------------------

    def frontier(self) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
        """Per-axis robustness frontier: safety vs. fault intensity.

        Keyed by ``(axis_label, agent)`` — the label carries the fault
        kind *and* its window/racks, so two same-kind axes with
        different windows or blast radii never average together.  Each
        value lists one row per intensity (ascending), aggregated
        across scales and seeds: mean QoS-violation rate, mean QoS
        delta vs. baseline, total safeguard trips, mean
        time-to-fallback over engaged cells, and engagement coverage.
        """
        groups: Dict[
            Tuple[str, str], Dict[float, List[SafetyRecord]]
        ] = {}
        for record in self.records:
            if record.fault_kind == "none":
                continue
            axis = groups.setdefault((record.axis_label, record.agent), {})
            axis.setdefault(record.intensity, []).append(record)
        frontier: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        for key in sorted(groups):
            rows = []
            for intensity in sorted(groups[key]):
                cells = groups[key][intensity]
                deltas = [
                    d for d in (self.deltas(record) for record in cells)
                    if d is not None
                ]
                fallbacks = [
                    record.time_to_fallback_s
                    for record in cells
                    if record.time_to_fallback_s is not None
                ]
                rows.append(
                    {
                        "intensity": intensity,
                        "cells": len(cells),
                        "qos_violation_rate": _mean(
                            [r.qos_violation_rate for r in cells]
                        ),
                        "qos_violation_delta": _mean(
                            [d["qos_violation_delta"] for d in deltas]
                        )
                        if deltas
                        else None,
                        "safeguard_trips": sum(
                            r.total_trips for r in cells
                        ),
                        "fallback_share_delta": _mean(
                            [d["fallback_share_delta"] for d in deltas]
                        )
                        if deltas
                        else None,
                        "time_to_fallback_s": (
                            _mean(fallbacks) if fallbacks else None
                        ),
                        "engaged_nodes": sum(
                            r.engaged_nodes for r in cells
                        ),
                        "affected_nodes": sum(
                            r.affected_nodes for r in cells
                        ),
                        "agent_kills": sum(r.agent_kills for r in cells),
                    }
                )
            frontier[key] = rows
        return frontier

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Plain-text campaign report: cells, frontiers, digest."""
        lines = [
            f"== campaign: {self.name} — {len(self.records)} cells "
            f"({self.executed} executed, {self.from_cache} cached) ==",
        ]
        if self.holes:
            lines.append(
                f"PARTIAL: {len(self.holes)} cell(s) quarantined — "
                + ", ".join(self.holes)
            )
        lines.append(
            f"  {'cell':52s} {'qos':>7s} {'Δqos':>7s} {'trips':>5s} "
            f"{'fallback%':>9s} {'ttf_s':>7s}"
        )
        for record in self.records:
            deltas = self.deltas(record)
            delta_qos = (
                f"{deltas['qos_violation_delta']:+7.4f}" if deltas else "      –"
            )
            ttf = (
                f"{record.time_to_fallback_s:7.2f}"
                if record.time_to_fallback_s is not None
                else "      –"
            )
            lines.append(
                f"  {record.unit_id:52s} {record.qos_violation_rate:7.4f} "
                f"{delta_qos} {record.total_trips:5d} "
                f"{record.fallback_share:9.3f} {ttf}"
            )
        for (axis, agent), rows in self.frontier().items():
            lines.append(f"  frontier: fault={axis} agent={agent}")
            lines.append(
                f"    {'intensity':>9s} {'cells':>5s} {'qos':>7s} "
                f"{'Δqos':>7s} {'trips':>5s} {'ttf_s':>7s} "
                f"{'engaged':>9s}"
            )
            for row in rows:
                delta = row["qos_violation_delta"]
                ttf = row["time_to_fallback_s"]
                lines.append(
                    f"    {row['intensity']:9.2f} {row['cells']:5d} "
                    f"{row['qos_violation_rate']:7.4f} "
                    + (f"{delta:+7.4f} " if delta is not None else "      – ")
                    + f"{row['safeguard_trips']:5d} "
                    + (f"{ttf:7.2f} " if ttf is not None else "      – ")
                    + f"{row['engaged_nodes']:4d}/{row['affected_nodes']:<4d}"
                )
        lines.append(f"campaign digest: {self.digest()}")
        return "\n".join(lines)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)
