"""Sweep cells: one deterministic fleet simulation per grid point.

A :class:`SweepUnit` is a fully-resolved campaign cell — agent kind,
fleet scale, seed, and fault coordinates.  Its identity
(:meth:`SweepUnit.unit_id`) and its cache address
(:func:`repro.cache.keys.sweep_unit_key` over
:meth:`SweepUnit.cache_payload`) depend only on those coordinates,
*never* on the campaign name or the position in the grid — so cells are
shared between campaigns and re-running a campaign after editing one
axis only executes the changed cells.

:func:`run_unit` is the worker entry point: build the cell's
:class:`~repro.fleet.config.FleetConfig`, simulate it serially inside
the worker (parallelism lives *across* cells), and reduce the fleet
results to a :class:`~repro.sweep.safety.SafetyRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.fleet.aggregate import FleetAggregate
from repro.fleet.config import FaultPlan, FleetConfig
from repro.fleet.scenario import FleetScenario

__all__ = ["SweepUnit", "run_unit"]


@dataclass(frozen=True)
class SweepUnit:
    """One cell of a campaign grid (baseline when ``fault_kind`` is None).

    Attributes:
        agent: agent kind (or ``"mixed"``).
        n_nodes: fleet scale.
        seed: fleet master seed.
        duration_s: simulated seconds per node.
        rack_size: nodes per rack (fault blast radius).
        fault_kind: :data:`repro.fleet.config.FAULT_KINDS` member, or
            ``None`` for the no-fault baseline cell.
        intensity: fault intensity (0.0 on baseline cells).
        fault_start_s / fault_duration_s: burst window, seconds.
        racks: rack indices hit by the burst.
    """

    agent: str
    n_nodes: int
    seed: int
    duration_s: int
    rack_size: int
    fault_kind: Optional[str] = None
    intensity: float = 0.0
    fault_start_s: int = 0
    fault_duration_s: int = 0
    racks: Tuple[int, ...] = ()

    @property
    def is_baseline(self) -> bool:
        return self.fault_kind is None

    def unit_id(self) -> str:
        """Canonical human-readable cell identity."""
        if self.fault_kind is None:
            fault = "baseline"
        else:
            racks = ",".join(str(r) for r in self.racks)
            fault = (
                f"{self.fault_kind}@{self.intensity!r}"
                f"[{self.fault_start_s}+{self.fault_duration_s}]r{racks}"
            )
        return (
            f"{self.agent}/n{self.n_nodes}/x{self.duration_s}s"
            f"/seed{self.seed}/{fault}"
        )

    def sort_key(self) -> Tuple:
        """Deterministic canonical grid order."""
        return (
            self.agent,
            self.n_nodes,
            self.seed,
            self.fault_kind or "",
            self.intensity,
            self.fault_start_s,
            self.fault_duration_s,
            self.racks,
        )

    def baseline_key(self) -> Tuple[str, int, int]:
        """Coordinates of the baseline cell this cell compares against."""
        return (self.agent, self.n_nodes, self.seed)

    def cache_payload(self) -> Dict[str, Any]:
        """Everything the cell's result can depend on (for the cache key).

        Campaign-independent by design: the campaign name and grid
        position are absent, so equal cells hit across campaigns.
        """
        return {
            "agent": self.agent,
            "n_nodes": self.n_nodes,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "rack_size": self.rack_size,
            "fault_kind": self.fault_kind,
            "intensity": self.intensity,
            "fault_start_s": self.fault_start_s,
            "fault_duration_s": self.fault_duration_s,
            "racks": list(self.racks),
        }

    def fleet_config(self) -> FleetConfig:
        """The cell's fully-resolved fleet configuration."""
        fault = None
        if self.fault_kind is not None:
            fault = FaultPlan(
                racks=self.racks,
                start_s=self.fault_start_s,
                duration_s=self.fault_duration_s,
                probability=self.intensity,
                kind=self.fault_kind,
            )
        return FleetConfig(
            n_nodes=self.n_nodes,
            agent=self.agent,
            seed=self.seed,
            duration_s=self.duration_s,
            rack_size=self.rack_size,
            fault=fault,
        )

    def estimated_cost(self) -> float:
        """Dispatch-cost heuristic: total simulated node-seconds."""
        return float(self.n_nodes * self.duration_s)


def run_unit(unit: SweepUnit) -> "SafetyRecord":
    """Simulate one cell and reduce it to its safety record.

    Pure in the unit's coordinates: the fleet derives every per-node
    decision from ``(seed, node_id)``, so any worker, in any order,
    produces a bit-identical record (the campaign digest pins this).
    """
    from repro.sweep.safety import SafetyRecord

    aggregate = FleetAggregate.from_results(
        FleetScenario(unit.fleet_config()).run()
    )
    return SafetyRecord.from_fleet(unit, aggregate)
