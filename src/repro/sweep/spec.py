"""Campaign specifications: the declarative grid and its loaders.

A :class:`CampaignSpec` is plain data — frozen dataclasses validated at
construction, loadable from a dict (:meth:`CampaignSpec.from_dict`) or
a TOML file (:func:`load_spec`).  :meth:`CampaignSpec.expand`
materialises the grid into deterministic
:class:`~repro.sweep.units.SweepUnit` cells in canonical order: the
cell list is a pure function of the spec, so two processes expanding
the same spec agree cell-for-cell (the campaign digest depends on it).

TOML campaigns use a deliberately small subset of the format — scalar
keys, single-line arrays, and ``[[fault]]`` table arrays::

    name = "invalid-data-frontier"
    agents = ["overclock", "harvest"]
    scales = [4, 8]
    seeds = [0, 1]
    duration_s = 60
    rack_size = 4

    [[fault]]
    kind = "bad_data"
    intensities = [0.3, 0.9]
    start_s = 10
    duration_s = 30
    racks = [0]

Python ≥ 3.11 parses with :mod:`tomllib`; older interpreters fall back
to a built-in parser for exactly this subset (no dependency added).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.fleet.config import AGENT_KINDS, FAULT_KINDS
from repro.sweep.units import SweepUnit

__all__ = ["CampaignSpec", "FaultAxis", "load_spec", "loads_toml"]


@dataclass(frozen=True)
class FaultAxis:
    """One fault plan swept over intensities.

    Attributes:
        kind: one of :data:`repro.fleet.config.FAULT_KINDS`.
        intensities: fault intensities to sweep (each becomes one cell
            per agent × scale × seed); in ``(0, 1]`` — the intensity-0
            point is the shared baseline cell, emitted automatically.
        start_s / duration_s: burst window in simulated seconds.
        racks: rack indices hit by the burst (rack correlation).
    """

    kind: str
    intensities: Tuple[float, ...]
    start_s: int = 10
    duration_s: int = 30
    racks: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not self.intensities:
            raise ValueError(f"fault {self.kind!r} needs intensities")
        for intensity in self.intensities:
            if not 0.0 < float(intensity) <= 1.0:
                raise ValueError(
                    f"fault {self.kind!r} intensity {intensity!r} outside "
                    "(0, 1] (intensity 0 is the implicit baseline cell)"
                )
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError(
                f"fault {self.kind!r} window must have positive extent"
            )
        if not self.racks:
            raise ValueError(f"fault {self.kind!r} needs at least one rack")


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative robustness-campaign grid.

    Attributes:
        name: campaign name (reporting only — cells and the campaign
            digest are independent of it, so renaming a campaign never
            invalidates cached cells).
        agents: agent kinds to sweep (``"mixed"`` allowed).
        scales: fleet sizes (``n_nodes``) to sweep.
        seeds: fleet master seeds to sweep.
        duration_s: simulated seconds per node, every cell.
        rack_size: nodes per rack (fault blast radius), every cell.
        faults: the fault axes; each ``(kind, intensity)`` pair becomes
            one cell per ``(agent, scale, seed)`` combination, plus one
            shared no-fault baseline cell per combination.
    """

    name: str
    agents: Tuple[str, ...]
    scales: Tuple[int, ...]
    seeds: Tuple[int, ...] = (0,)
    duration_s: int = 60
    rack_size: int = 8
    faults: Tuple[FaultAxis, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.agents:
            raise ValueError("campaign needs at least one agent kind")
        allowed = AGENT_KINDS + ("mixed",)
        for agent in self.agents:
            if agent not in allowed:
                raise ValueError(
                    f"agent must be one of {allowed}, got {agent!r}"
                )
        if not self.scales:
            raise ValueError("campaign needs at least one fleet scale")
        for scale in self.scales:
            if scale <= 0:
                raise ValueError(f"fleet scale must be positive, got {scale}")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rack_size <= 0:
            raise ValueError("rack_size must be positive")
        min_racks = -(-min(self.scales) // self.rack_size)
        for axis in self.faults:
            if axis.start_s >= self.duration_s:
                raise ValueError(
                    f"fault {axis.kind!r} starts at {axis.start_s}s but "
                    f"cells only run {self.duration_s}s"
                )
            bad = [r for r in axis.racks if not 0 <= r < min_racks]
            if bad:
                raise ValueError(
                    f"fault {axis.kind!r} racks {bad} outside the smallest "
                    f"fleet scale (scale {min(self.scales)} has racks "
                    f"0..{min_racks - 1})"
                )

    # -- grid expansion ------------------------------------------------------

    def expand(self) -> List[SweepUnit]:
        """Materialise the grid into canonical-order cells.

        One baseline (no-fault) cell per ``(agent, scale, seed)``
        combination, plus one cell per fault axis × intensity.  The
        order is a deterministic sort over cell coordinates — never
        dict/iteration order — so every expansion of an equal spec
        yields an identical list.
        """
        units: List[SweepUnit] = []
        for agent in self.agents:
            for n_nodes in self.scales:
                for seed in self.seeds:
                    units.append(
                        SweepUnit(
                            agent=agent,
                            n_nodes=n_nodes,
                            seed=seed,
                            duration_s=self.duration_s,
                            rack_size=self.rack_size,
                        )
                    )
                    for axis in self.faults:
                        for intensity in axis.intensities:
                            units.append(
                                SweepUnit(
                                    agent=agent,
                                    n_nodes=n_nodes,
                                    seed=seed,
                                    duration_s=self.duration_s,
                                    rack_size=self.rack_size,
                                    fault_kind=axis.kind,
                                    intensity=float(intensity),
                                    fault_start_s=axis.start_s,
                                    fault_duration_s=axis.duration_s,
                                    racks=tuple(axis.racks),
                                )
                            )
        units.sort(key=lambda u: u.sort_key())
        ids = [u.unit_id() for u in units]
        if len(set(ids)) != len(ids):
            duplicates = sorted(
                {i for i in ids if ids.count(i) > 1}
            )
            raise ValueError(f"campaign grid has duplicate cells: {duplicates}")
        return units

    # -- loaders -------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a plain mapping (the parsed TOML shape)."""
        known = {
            "name", "agents", "scales", "seeds", "duration_s",
            "rack_size", "fault",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown campaign keys: {unknown}")
        try:
            name = str(data["name"])
            agents = tuple(str(a) for a in _as_list(data["agents"], "agents"))
            scales = tuple(int(s) for s in _as_list(data["scales"], "scales"))
        except KeyError as missing:
            raise ValueError(f"campaign spec is missing key {missing}")
        axes = []
        for i, entry in enumerate(_as_list(data.get("fault", []), "fault")):
            if not isinstance(entry, Mapping):
                raise ValueError("each [[fault]] entry must be a table")
            fault_known = {"kind", "intensities", "start_s", "duration_s",
                           "racks"}
            fault_unknown = sorted(set(entry) - fault_known)
            if fault_unknown:
                raise ValueError(
                    f"unknown fault keys in [[fault]] #{i + 1}: "
                    f"{fault_unknown}"
                )
            if "kind" not in entry or "intensities" not in entry:
                raise ValueError(
                    f"[[fault]] #{i + 1} needs 'kind' and 'intensities'"
                )
            axes.append(
                FaultAxis(
                    kind=str(entry["kind"]),
                    intensities=tuple(
                        float(x)
                        for x in _as_list(entry["intensities"], "intensities")
                    ),
                    start_s=int(entry.get("start_s", 10)),
                    duration_s=int(entry.get("duration_s", 30)),
                    racks=tuple(
                        int(r)
                        for r in _as_list(entry.get("racks", [0]), "racks")
                    ),
                )
            )
        return cls(
            name=name,
            agents=agents,
            scales=scales,
            seeds=tuple(
                int(s) for s in _as_list(data.get("seeds", [0]), "seeds")
            ),
            duration_s=int(data.get("duration_s", 60)),
            rack_size=int(data.get("rack_size", 8)),
            faults=tuple(axes),
        )


def _as_list(value: Any, key: str) -> Sequence[Any]:
    if isinstance(value, (list, tuple)):
        return value
    raise ValueError(f"{key!r} must be an array, got {type(value).__name__}")


def loads_toml(text: str) -> CampaignSpec:
    """Parse a campaign spec from TOML text."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: the built-in subset parser
        data = _parse_minimal_toml(text)
    else:
        data = tomllib.loads(text)
    return CampaignSpec.from_dict(data)


def load_spec(path: str) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_toml(handle.read())


# -- minimal TOML subset parser (Python 3.10 fallback) -----------------------


def _parse_minimal_toml(text: str) -> Dict[str, Any]:
    """Parse the campaign-spec TOML subset without :mod:`tomllib`.

    Supports comments, ``key = value`` with string/int/float/bool and
    single-line arrays of those, and ``[[table]]`` array-of-table
    headers — exactly what campaign specs use.  Anything fancier raises.
    """
    root: Dict[str, Any] = {}
    target = root
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            key = line[2:-2].strip()
            entry: Dict[str, Any] = {}
            root.setdefault(key, []).append(entry)
            target = entry
            continue
        if line.startswith("["):
            raise ValueError(
                f"TOML line {line_no}: plain [tables] are outside the "
                "campaign-spec subset (use [[fault]] arrays)"
            )
        if "=" not in line:
            raise ValueError(f"TOML line {line_no}: expected 'key = value'")
        key, _, value = line.partition("=")
        target[key.strip()] = _parse_value(value.strip(), line_no)
    return root


def _strip_comment(line: str) -> str:
    """Drop a trailing comment, respecting quoted strings."""
    in_string: str = ""
    for index, char in enumerate(line):
        if in_string:
            if char == in_string:
                in_string = ""
        elif char in "\"'":
            in_string = char
        elif char == "#":
            return line[:index]
    return line


def _parse_value(token: str, line_no: int) -> Any:
    if not token:
        raise ValueError(f"TOML line {line_no}: missing value")
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_value(item.strip(), line_no)
            for item in _split_array(inner)
        ]
    if (token.startswith('"') and token.endswith('"')) or (
        token.startswith("'") and token.endswith("'")
    ):
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"TOML line {line_no}: cannot parse value {token!r}")


def _split_array(inner: str) -> List[str]:
    """Split a single-line array body on top-level commas."""
    items: List[str] = []
    depth = 0
    in_string = ""
    current = []
    for char in inner:
        if in_string:
            current.append(char)
            if char == in_string:
                in_string = ""
        elif char in "\"'":
            in_string = char
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        items.append("".join(current))
    return items
