"""The three ML-based agents of §5, implemented in SOL."""

from repro.agents.harvest import SmartHarvestAgent
from repro.agents.memory import SmartMemoryAgent
from repro.agents.overclock import SmartOverclockAgent

__all__ = [
    "SmartHarvestAgent",
    "SmartMemoryAgent",
    "SmartOverclockAgent",
]
