"""SmartOverclock configuration (§5.1, §6.2 parameter values)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.schedule import Schedule
from repro.sim.units import MS, SEC

__all__ = ["OverclockConfig"]


@dataclass(frozen=True)
class OverclockConfig:
    """Parameters of the SmartOverclock agent.

    Paper values: nominal 1.5 GHz with overclock steps 1.9 and 2.3 GHz,
    1-second learning epochs, 10% exploration, Δr averaged over the last
    10 epochs, a 5-second maximum actuation wait, and an α safeguard on
    the P90 over the past 100 seconds.

    Attributes:
        frequencies_ghz: the action set (index 0 must be nominal).
        epsilon: exploration probability.
        q_learning_rate / q_discount: Q-learning hyperparameters.
        power_weight: reward penalty per normalized ``(f/f_nom)³`` of
            power draw; balances IPS benefit against overclocking cost.
        reward_window_epochs: horizon for the Δr model assessment.
        delta_r_threshold: assessment fails when mean Δr of overclocked
            epochs drops below this.
        alpha_threshold: actuator safeguard fires when P90(α) over
            ``alpha_window_us`` is below this.
        ips_buckets: number of activity levels in the RL state.
    """

    frequencies_ghz: Tuple[float, ...] = (1.5, 1.9, 2.3)
    epsilon: float = 0.1
    q_learning_rate: float = 0.25
    q_discount: float = 0.3
    power_weight: float = 0.12
    reward_window_epochs: int = 10
    delta_r_threshold: float = -0.05
    delta_r_min_observations: int = 5
    delta_r_horizon_us: int = 60 * SEC
    alpha_threshold: float = 0.1
    alpha_window_us: int = 100 * SEC
    alpha_quantile: float = 0.90
    ips_buckets: int = 5
    schedule: Schedule = field(
        default_factory=lambda: Schedule(
            data_collect_interval_us=100 * MS,   # "reads CPU counters every 100ms"
            min_data_per_epoch=10,               # 1-second learning epoch
            max_data_per_epoch=40,
            max_epoch_time_us=1500 * MS,         # slack for discarded samples
            assess_model_interval_epochs=1,
            max_actuation_delay_us=5 * SEC,      # "wait for up to 5 seconds"
            assess_actuator_interval_us=1 * SEC,
            prediction_ttl_us=2500 * MS,
        )
    )

    @property
    def nominal_freq_ghz(self) -> float:
        """The safe frequency every safeguard falls back to."""
        return self.frequencies_ghz[0]

    def __post_init__(self) -> None:
        if len(self.frequencies_ghz) < 2:
            raise ValueError("need nominal plus at least one overclock step")
        if any(
            b <= a
            for a, b in zip(self.frequencies_ghz, self.frequencies_ghz[1:])
        ):
            raise ValueError("frequencies must be strictly increasing")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if self.reward_window_epochs < 1:
            raise ValueError("reward_window_epochs must be >= 1")
