"""SmartOverclock: RL-based CPU overclocking agent (§5.1)."""

from repro.agents.overclock.actuator import OverclockActuator
from repro.agents.overclock.agent import SmartOverclockAgent
from repro.agents.overclock.config import OverclockConfig
from repro.agents.overclock.model import OverclockModel

__all__ = [
    "OverclockActuator",
    "OverclockConfig",
    "OverclockModel",
    "SmartOverclockAgent",
]
