"""SmartOverclock's Actuator half: DVFS control plus the α safeguard (§5.1).

Actions are trivially cheap (set the frequency domain); all the care is
in the safe defaults and the end-to-end safeguard:

* ``take_action(None)`` → nominal frequency ("If it has not received an
  un-expired prediction at the end of this period, it takes the safe
  default action of setting the CPUs to the nominal frequency to avoid
  wasting power").
* ``assess_performance`` monitors α = (unhalted − stalled) / total
  cycles: "The Actuator monitors the 90th-percentile (P90) of α values
  over the past 100 seconds and triggers the safeguard if this value is
  below a threshold."  P90 smooths transient dips but exits quickly when
  activity returns (Figure 5).
* ``mitigate`` / ``clean_up`` restore all cores to nominal.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.overclock.config import OverclockConfig
from repro.core.interfaces import Actuator
from repro.core.prediction import Prediction
from repro.node.counters import CounterReader
from repro.node.cpu import CpuModel
from repro.node.signals import SlidingWindowQuantile
from repro.sim.kernel import Kernel

__all__ = ["OverclockActuator"]


class OverclockActuator(Actuator):
    """Frequency actuation with the α-based power-waste watchdog.

    Args:
        kernel: simulation kernel.
        cpu: the VM's frequency domain.
        config: agent parameters.

    The actuator keeps its *own* counter reader: the paper's watchdog is
    independent of the model's internal state, so sharing a reader (and
    therefore interval boundaries) with the Model would couple the two
    halves the framework works to decouple.
    """

    def __init__(
        self, kernel: Kernel, cpu: CpuModel, config: OverclockConfig
    ) -> None:
        self.kernel = kernel
        self.cpu = cpu
        self.config = config
        self._reader = CounterReader(cpu)
        self._alpha_window = SlidingWindowQuantile(
            kernel, window_us=config.alpha_window_us
        )
        self.actions_taken = 0
        self.safe_actions = 0

    def take_action(self, prediction: Optional[Prediction[float]]) -> None:
        self.actions_taken += 1
        if prediction is None:
            self.safe_actions += 1
            self.cpu.set_frequency(self.config.nominal_freq_ghz)
            return
        self.cpu.set_frequency(float(prediction.value))

    def assess_performance(self) -> bool:
        """P90 of α over the trailing window must clear the threshold."""
        metrics = self._reader.read()
        if metrics is not None:
            self._alpha_window.observe(metrics.alpha)
        p90 = self._alpha_window.quantile(self.config.alpha_quantile)
        if p90 is None:
            return True  # no evidence yet
        return p90 >= self.config.alpha_threshold

    def mitigate(self) -> None:
        """Stop wasting power: all cores back to nominal."""
        self.cpu.set_frequency(self.config.nominal_freq_ghz)

    def clean_up(self) -> None:
        """SRE path: restore nominal frequency (idempotent, stateless)."""
        self.cpu.set_frequency(self.config.nominal_freq_ghz)
