"""SmartOverclock assembly: wire Model, Actuator, and runtime together.

This is the agent-developer experience the paper's Listing 3 shows: pick
parameters, instantiate the two halves, hand them to ``RunAgent``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.overclock.actuator import OverclockActuator
from repro.agents.overclock.config import OverclockConfig
from repro.agents.overclock.model import OverclockModel
from repro.core.runtime import SolRuntime
from repro.core.safeguards import SafeguardPolicy
from repro.node.counters import CounterReader
from repro.node.cpu import CpuModel
from repro.node.faults import DelayInjector, ModelBreaker
from repro.sim.kernel import Kernel

__all__ = ["SmartOverclockAgent"]


class SmartOverclockAgent:
    """The complete CPU-overclocking agent of §5.1.

    Args:
        kernel: simulation kernel.
        cpu: the managed VM's frequency domain.
        rng: exploration random stream.
        config: agent parameters (paper defaults).
        policy: safeguard ablation switches (experiments only).
        breaker: optional broken-model injector.
        model_delays / actuator_delays: optional throttling injectors.
        log_mode: runtime event-log mode (``"full"`` or ``"counts"``).

    Attributes:
        model / actuator / runtime: the assembled pieces.
        reader: the Model's counter reader — experiments attach
            bad-data injectors here (Figure 2).
    """

    def __init__(
        self,
        kernel: Kernel,
        cpu: CpuModel,
        rng: np.random.Generator,
        config: Optional[OverclockConfig] = None,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        breaker: Optional[ModelBreaker] = None,
        model_delays: Optional[DelayInjector] = None,
        actuator_delays: Optional[DelayInjector] = None,
        log_mode: str = "full",
    ) -> None:
        self.config = config or OverclockConfig()
        self.reader = CounterReader(cpu)
        self.model = OverclockModel(
            kernel, self.reader, self.config, rng, breaker=breaker
        )
        self.actuator = OverclockActuator(kernel, cpu, self.config)
        self.runtime = SolRuntime(
            kernel,
            self.model,
            self.actuator,
            self.config.schedule,
            name="smart-overclock",
            policy=policy,
            model_delays=model_delays,
            actuator_delays=actuator_delays,
            log_mode=log_mode,
        )

    def start(self) -> "SmartOverclockAgent":
        """Start both control loops; returns self."""
        self.runtime.start()
        return self

    def terminate(self) -> None:
        """SRE CleanUp: stop loops, restore nominal frequency."""
        self.runtime.terminate()
