"""SmartOverclock's Model half: Q-learning over CPU frequencies (§5.1).

"At the end of every 1-second learning epoch, the agent uses the
observed IPS and current core frequency to calculate the current RL
state and reward.  It then updates the RL policy and uses it to pick the
frequency for the next learning epoch."

State:   the workload's activity level — IPS normalized by the maximum
         achievable at the *current* frequency, bucketed.  High activity
         that scales with frequency is what makes overclocking pay.
Action:  the frequency for the next epoch.
Reward:  normalized IPS minus a cubic power penalty, so overclocking is
         only rewarded when the workload's IPS actually responds.

Safeguards implemented here:

* ``validate_data`` — counter range checks ("the IPS value should be
  between 0 and max_freq · max_IPC"); out-of-range readings are
  discarded before they can poison the policy (Figure 2).
* ``assess_model`` — the Δr check: mean gap between the observed reward
  when overclocked and the estimated reward at nominal over the last 10
  epochs; below threshold → predictions intercepted (Figure 3).
* ``default_predict`` — nominal frequency, with ε-exploration preserved
  so the policy can keep learning its way out of a bad patch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.agents.overclock.config import OverclockConfig
from repro.core.interfaces import Model
from repro.core.prediction import Prediction
from repro.ml.metrics import Ewma
from repro.ml.qlearning import QLearner
from repro.node.counters import CounterReader, IntervalMetrics
from repro.node.faults import ModelBreaker
from repro.sim.kernel import Kernel

__all__ = ["OverclockModel"]


class OverclockModel(Model):
    """Q-learning frequency selection from hardware-counter telemetry.

    Args:
        kernel: simulation kernel (timestamps for predictions).
        reader: interval counter reader (the fault-injection boundary).
        config: agent parameters.
        rng: random stream for exploration.
        breaker: optional broken-model injector (Figure 3 harness).
    """

    def __init__(
        self,
        kernel: Kernel,
        reader: CounterReader,
        config: OverclockConfig,
        rng: np.random.Generator,
        breaker: Optional[ModelBreaker] = None,
    ) -> None:
        self.kernel = kernel
        self.reader = reader
        self.config = config
        self.rng = rng
        self.breaker = breaker

        self.learner = QLearner(
            n_actions=len(config.frequencies_ghz),
            rng=rng,
            learning_rate=config.q_learning_rate,
            discount=config.q_discount,
            epsilon=config.epsilon,
        )
        # max achievable giga-IPS at nominal frequency, the reward scale
        cpu = reader.cpu
        self._ips_scale = cpu.n_cores * cpu.max_ipc * cpu.nominal_freq_ghz
        self._max_valid_ips = cpu.n_cores * cpu.max_ipc * cpu.max_freq_ghz

        self._epoch_buffer: List[IntervalMetrics] = []
        self._previous_state: Optional[Tuple[int]] = None
        self._current_state: Optional[Tuple[int]] = None
        # per-state EWMA of the reward observed at the nominal frequency,
        # used as the Δr baseline
        self._nominal_reward: dict = {}
        # (time_us, Δr) entries from policy-driven overclocked epochs
        self._delta_r: Deque[Tuple[int, float]] = deque(
            maxlen=config.reward_window_epochs
        )
        # what the model last asked for: (action, policy_driven)
        self._last_choice: Optional[Tuple[int, bool]] = None
        # action-table staging for _nearest_action, built once instead
        # of re-converting the config tuple on every epoch and default
        # prediction
        self._frequencies = np.asarray(config.frequencies_ghz)

    # -- Model interface ------------------------------------------------------

    def collect_data(self) -> IntervalMetrics:
        metrics = self.reader.read()
        if metrics is None:
            raise IOError("empty counter interval")
        return metrics

    def validate_data(self, data: IntervalMetrics) -> bool:
        """Range checks on every counter reading (§5.1).

        Tolerances absorb floating-point accumulation in real counter
        pipelines (utilization of 1.0000000000001 is measurement noise,
        not corruption).
        """
        tolerance = 1e-6
        if not 0.0 <= data.ips <= self._max_valid_ips * 1.05:
            return False
        if not -tolerance <= data.alpha <= 1.0 + tolerance:
            return False
        if not -tolerance <= data.utilization <= 1.0 + tolerance:
            return False
        return data.duration_us > 0

    def commit_data(self, time_us: int, data: IntervalMetrics) -> None:
        self._epoch_buffer.append(data)

    def update_model(self) -> None:
        """One RL step from the epoch's aggregate telemetry."""
        buffer, self._epoch_buffer = self._epoch_buffer, []
        if not buffer:
            return
        mean_ips = float(np.mean([m.ips for m in buffer]))
        freq = buffer[-1].freq_ghz
        action = self._nearest_action(freq)
        reward = self._reward(mean_ips, freq)
        new_state = self._state(mean_ips, freq)
        decision_state = (
            self._current_state if self._current_state is not None
            else new_state
        )
        if self._current_state is not None:
            self.learner.update(
                self._current_state, action, reward, next_state=new_state
            )
        self._previous_state = self._current_state
        self._current_state = new_state
        self._track_delta_r(decision_state, action, reward)

    def model_predict(self) -> Optional[Prediction[float]]:
        if self._current_state is None:
            return None
        action, explored = self.learner.select_action(self._current_state)
        freq = self.config.frequencies_ghz[action]
        if self.breaker is not None:
            freq = self.breaker.apply(freq)
        # Broken-model overrides still count as policy-driven: the Δr
        # check exists precisely to judge what "the model" asked for.
        self._last_choice = (self._nearest_action(freq), not explored)
        return Prediction.fresh(
            self.kernel, freq, ttl_us=self.config.schedule.prediction_ttl_us
        )

    def default_predict(self) -> Optional[Prediction[float]]:
        """Nominal frequency, with exploration preserved (§5.1).

        "the agent continues to randomly explore, but overrides the
        RL-selected actions by always picking the nominal frequency as
        the default prediction."
        """
        if self.rng.random() < self.config.epsilon:
            freq = float(self.rng.choice(self.config.frequencies_ghz))
        else:
            freq = self.config.nominal_freq_ghz
        self._last_choice = (self._nearest_action(freq), False)
        return Prediction.fresh(
            self.kernel,
            freq,
            ttl_us=self.config.schedule.prediction_ttl_us,
            is_default=True,
        )

    def assess_model(self) -> bool:
        """The Δr check: is policy-driven overclocking actually paying off?

        Only epochs where the *policy* chose to overclock contribute —
        exploration is supposed to lose a little sometimes, and judging
        the policy by its forced exploration would trip the safeguard on
        perfectly healthy idle phases.  Entries also expire after a
        horizon so a long-intercepted model gets periodically re-probed
        (and can recover, per §4.2).
        """
        horizon = self.config.delta_r_horizon_us
        now = self.kernel.now
        while self._delta_r and now - self._delta_r[0][0] > horizon:
            self._delta_r.popleft()
        if len(self._delta_r) < self.config.delta_r_min_observations:
            return True
        mean_gap = float(np.mean([gap for _t, gap in self._delta_r]))
        return mean_gap >= self.config.delta_r_threshold

    # -- internals ----------------------------------------------------------------

    def _nearest_action(self, freq_ghz: float) -> int:
        return int(np.argmin(np.abs(self._frequencies - freq_ghz)))

    def _reward(self, ips: float, freq_ghz: float) -> float:
        """Normalized throughput minus the cubic power cost of the clock."""
        ratio = freq_ghz / self.config.nominal_freq_ghz
        return ips / self._ips_scale - self.config.power_weight * ratio**3

    def _state(self, ips: float, freq_ghz: float) -> Tuple[int]:
        """Bucketed activity level, frequency-normalized.

        ``ips / (scale · f/f_nom)`` estimates how busy the workload is
        independent of the current clock, so the state does not churn
        when the agent changes frequency.
        """
        ratio = freq_ghz / self.config.nominal_freq_ghz
        activity = ips / (self._ips_scale * ratio)
        bucket = min(
            self.config.ips_buckets - 1,
            int(activity * self.config.ips_buckets),
        )
        return (bucket,)

    def _track_delta_r(self, state, action: int, reward: float) -> None:
        """Maintain the Δr statistic behind ``assess_model``.

        Nominal-frequency epochs (whatever their origin) refresh the
        per-state baseline; overclocked epochs contribute a Δr entry
        only when the policy (not exploration, not a default) asked for
        the overclock.
        """
        if action == 0:
            baseline = self._nominal_reward.setdefault(state, Ewma(0.3))
            baseline.observe(reward)
            return
        if self._last_choice is None:
            return
        chosen_action, policy_driven = self._last_choice
        if not policy_driven or chosen_action != action:
            return
        baseline = self._nominal_reward.get(state)
        if baseline is None or baseline.value is None:
            return
        self._delta_r.append((self.kernel.now, reward - baseline.value))
