"""SmartHarvest's Model half: cost-sensitive core-demand prediction (§5.2).

"The agent uses a cost-sensitive classifier ... to predict the maximum
number of CPU cores needed by the primary VMs in the next 25 ms.  It
collects VM CPU usage data from the hypervisor every 50 µs and computes
distributional features over this data as input to the model."

Safeguards implemented here:

* ``validate_data`` — range checks, plus the crucial full-utilization
  discard: "if the primary VMs use all their allocated cores during a
  learning epoch, it is impossible to distinguish whether they needed
  exactly that many cores, or whether they were under-provisioned ...
  Learning from this CPU telemetry can skew the model and cause it to
  systematically underpredict primary core usage."  (Figure 6 left shows
  exactly that spiral without this check.)
* ``assess_model`` — "measures the percentage of time that predictions
  from the model lead to primary VMs running out of idle cores"; a high
  recent rate fails the assessment (Figure 6 middle).
* ``default_predict`` — a conservative heuristic: cover the maximum
  demand seen over the recent window, plus the safety buffer.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.agents.harvest.config import HarvestConfig
from repro.core.interfaces import Model
from repro.core.prediction import Prediction
from repro.ml.costsensitive import CostSensitiveClassifier, asymmetric_core_costs
from repro.ml.features import FEATURE_NAMES, FeatureExtractor
from repro.ml.metrics import RollingRate
from repro.node.faults import ModelBreaker
from repro.node.hypervisor import Hypervisor
from repro.sim.kernel import Kernel

__all__ = ["UsageWindow", "HarvestModel"]


@dataclass(frozen=True)
class UsageWindow:
    """One collected datapoint: a 25 ms window of 50 µs usage samples.

    Attributes:
        samples: usage in cores at each sample instant.
        allocated: cores the primary group had available during the
            window (the ceiling usage can be observed at).
        deficit_cus: vCPU wait accrued during the window (core-µs).
    """

    samples: np.ndarray
    allocated: float
    deficit_cus: float


class HarvestModel(Model):
    """Max-core-demand prediction over hypervisor usage telemetry.

    Args:
        kernel: simulation kernel.
        hypervisor: telemetry source (usage sampling + wait accounting).
        config: agent parameters.
        rng: random stream for telemetry measurement noise.
        breaker: optional broken-model injector (forces underprediction).
    """

    def __init__(
        self,
        kernel: Kernel,
        hypervisor: Hypervisor,
        config: HarvestConfig,
        rng: np.random.Generator,
        breaker: Optional[ModelBreaker] = None,
    ) -> None:
        self.kernel = kernel
        self.hypervisor = hypervisor
        self.config = config
        self.rng = rng
        self.breaker = breaker

        self.n_classes = hypervisor.n_cores + 1
        self.classifier = CostSensitiveClassifier(
            n_classes=self.n_classes,
            n_features=len(FEATURE_NAMES),
            learning_rate=config.learning_rate,
        )
        self._previous_features: Optional[np.ndarray] = None
        self._latest_features: Optional[np.ndarray] = None
        self._latest_window: Optional[UsageWindow] = None
        # Per-agent extraction scratch: the extractor reuses its sort/
        # deviation buffers across epochs, and the normalized-samples
        # staging buffer below is only read within one extraction call.
        self._extract_features = FeatureExtractor()
        self._scaled_samples = np.empty(0)
        self._recent_maxima: Deque[float] = deque(
            maxlen=config.recent_max_epochs
        )
        self._starvation = RollingRate(
            window=config.starvation_window_epochs,
            min_count=config.starvation_min_epochs,
        )
        self._last_snapshot = hypervisor.snapshot()
        #: fault injectors applied to every raw sample window (the
        #: counter-read boundary, same as CounterReader.add_injector)
        self.injectors: list = []

    # -- Model interface ------------------------------------------------------

    def collect_data(self) -> UsageWindow:
        """Sample the trailing 25 ms usage window from the hypervisor."""
        samples = self.hypervisor.sample_usage(
            window_us=self.config.epoch_us,
            period_us=self.config.sample_period_us,
            rng=self.rng,
            noise_cores=self.config.telemetry_noise_cores,
        )
        for injector in self.injectors:
            samples = injector(samples)
        current = self.hypervisor.snapshot()
        deficit = current.deficit_cus - self._last_snapshot.deficit_cus
        self._last_snapshot = current
        # The starvation statistic behind assess_model is observed on
        # *every* window, including ones validation later discards —
        # the windows where the primary ran out of cores are precisely
        # the capped ones, and the safeguard must see them.
        self._starvation.observe(deficit > 0)
        return UsageWindow(
            samples=samples,
            allocated=self.hypervisor.allocated,
            deficit_cus=deficit,
        )

    def validate_data(self, data: UsageWindow) -> bool:
        """Range checks plus the full-utilization discard (§5.2)."""
        samples = data.samples
        if samples.size == 0:
            return False
        if samples.min() < -0.5 or samples.max() > self.hypervisor.n_cores + 0.5:
            return False
        # Full utilization: usage pinned at the allocation ceiling means
        # true demand is right-censored — learning from it biases the
        # model low.  Discard, as in [37].  A window merely *touching*
        # the ceiling (a burst ramp crossing it) still carries usable
        # trend signal, so only windows spending a meaningful fraction
        # of their samples at the ceiling are censored.
        tolerance = 2.5 * self.config.telemetry_noise_cores
        capped = samples >= data.allocated - tolerance
        if capped.mean() > self.config.capped_fraction:
            return False
        return True

    def commit_data(self, time_us: int, data: UsageWindow) -> None:
        self._latest_window = data

    def update_model(self) -> None:
        """Label the previous window with this window's observed peak."""
        window = self._latest_window
        if window is None:
            return
        peak = max(0.0, float(window.samples.max()))
        label = min(self.n_classes - 1, math.ceil(peak))
        self._recent_maxima.append(peak)
        samples = window.samples
        if self._scaled_samples.size < samples.size:
            self._scaled_samples = np.empty(samples.size)
        scaled = self._scaled_samples[:samples.size]
        np.divide(samples, self.hypervisor.n_cores, out=scaled)
        features = self._extract_features(scaled)
        if self._previous_features is not None:
            costs = asymmetric_core_costs(
                label,
                self.n_classes,
                under_cost=self.config.under_cost,
                over_cost=self.config.over_cost,
            )
            self.classifier.update(self._previous_features, costs)
        self._previous_features = features
        self._latest_features = features

    def model_predict(self) -> Optional[Prediction[int]]:
        if self._latest_features is None:
            return None
        cores_needed = self.classifier.predict(self._latest_features)
        if self.breaker is not None:
            cores_needed = self.breaker.apply(cores_needed)
        return Prediction.fresh(
            self.kernel,
            int(cores_needed),
            ttl_us=self.config.schedule.prediction_ttl_us,
        )

    def default_predict(self) -> Optional[Prediction[int]]:
        """Cover the worst demand recently seen (conservative fallback)."""
        if not self._recent_maxima:
            # No telemetry at all: safest is to assume the primary needs
            # everything, i.e. harvest nothing.
            value = self.n_classes - 1
        else:
            value = min(
                self.n_classes - 1,
                max(0, math.ceil(max(self._recent_maxima))),
            )
        return Prediction.fresh(
            self.kernel,
            int(value),
            ttl_us=self.config.schedule.prediction_ttl_us,
            is_default=True,
        )

    def assess_model(self) -> bool:
        """Recent rate of 'primary ran out of idle cores' must stay low."""
        rate = self._starvation.rate
        if rate is None:
            return True
        return rate <= self.config.starvation_threshold
