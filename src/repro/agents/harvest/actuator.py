"""SmartHarvest's Actuator half: core loaning with the wait-time watchdog.

"A poorly performing SmartHarvest agent can starve customer workloads
that need CPU resources.  Hence, its AssessPerformance function monitors
vCPU wait time for these customer workloads and triggers the safeguard
when the wait time exceeds a certain threshold ...  The Mitigate
function for SmartHarvest stops borrowing cores" (§4.1, §5.2).
"""

from __future__ import annotations

from typing import Optional

from repro.agents.harvest.config import HarvestConfig
from repro.core.interfaces import Actuator
from repro.core.prediction import Prediction
from repro.node.hypervisor import Hypervisor
from repro.node.signals import SlidingWindowQuantile
from repro.sim.kernel import Kernel

__all__ = ["HarvestActuator"]


class HarvestActuator(Actuator):
    """Harvest/return cores based on predicted primary demand.

    Args:
        kernel: simulation kernel.
        hypervisor: the core-scheduling substrate.
        config: agent parameters.
    """

    def __init__(
        self, kernel: Kernel, hypervisor: Hypervisor, config: HarvestConfig
    ) -> None:
        self.kernel = kernel
        self.hypervisor = hypervisor
        self.config = config
        self._wait_window = SlidingWindowQuantile(
            kernel, window_us=config.wait_window_us
        )
        self._last_snapshot = hypervisor.snapshot()
        self.actions_taken = 0
        self.safe_actions = 0

    def take_action(self, prediction: Optional[Prediction[int]]) -> None:
        """Loan out everything beyond predicted need + buffer.

        Harvesting is asymmetric: cores are *returned* to the primary
        instantly but *taken* at most one per action.  Borrowing slowly
        bounds the damage of one optimistic prediction to a single core
        for 25 ms, while a pessimistic one loses only a little elastic
        capacity — the same QoS-first asymmetry as the cost function.

        ``None`` (timeout/expiry/no data) → return every core: during
        uncertainty the primary's QoS takes absolute priority.
        """
        self.actions_taken += 1
        if prediction is None:
            self.safe_actions += 1
            self.hypervisor.return_all_cores()
            return
        needed = int(prediction.value) + self.config.buffer_cores
        target = max(0, self.hypervisor.n_cores - needed)
        current = int(self.hypervisor.harvested)
        if target > current:
            target = current + 1  # borrow slowly
        self.hypervisor.set_harvested(target)  # ...but return instantly

    def assess_performance(self) -> bool:
        """P99 of the starved-core ratio per interval must stay low.

        The per-interval statistic is ``deficit core-time / interval`` —
        the average number of cores the primary wanted but waited for,
        the paper's hypervisor wait-time counter normalized per interval.
        """
        current = self.hypervisor.snapshot()
        elapsed = current.time_us - self._last_snapshot.time_us
        if elapsed > 0:
            starved_cores = (
                current.deficit_cus - self._last_snapshot.deficit_cus
            ) / elapsed
            self._wait_window.observe(starved_cores)
            self._last_snapshot = current
        p99 = self._wait_window.quantile(self.config.wait_quantile)
        if p99 is None:
            return True
        return p99 <= self.config.wait_threshold_cores

    def mitigate(self) -> None:
        """Stop borrowing: all cores back to the primary VMs."""
        self.hypervisor.return_all_cores()

    def clean_up(self) -> None:
        """SRE path: return all harvested cores (idempotent, stateless)."""
        self.hypervisor.return_all_cores()
