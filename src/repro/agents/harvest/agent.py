"""SmartHarvest assembly (§5.2): the agent from [37], hardened in SOL."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.harvest.actuator import HarvestActuator
from repro.agents.harvest.config import HarvestConfig
from repro.agents.harvest.model import HarvestModel
from repro.core.runtime import SolRuntime
from repro.core.safeguards import SafeguardPolicy
from repro.node.faults import DelayInjector, ModelBreaker
from repro.node.hypervisor import Hypervisor
from repro.sim.kernel import Kernel

__all__ = ["SmartHarvestAgent"]


class SmartHarvestAgent:
    """The complete CPU-harvesting agent of §5.2.

    Args:
        kernel: simulation kernel.
        hypervisor: core-scheduling substrate shared with the primary VM.
        rng: random stream for telemetry noise.
        config: agent parameters (paper defaults).
        policy: safeguard ablation switches (experiments only).
        breaker: optional broken-model injector (e.g. always predict 0
            cores needed, the Figure 6-middle failure).
        model_delays / actuator_delays: optional throttling injectors.
        log_mode: runtime event-log mode (``"full"`` or ``"counts"``).
    """

    def __init__(
        self,
        kernel: Kernel,
        hypervisor: Hypervisor,
        rng: np.random.Generator,
        config: Optional[HarvestConfig] = None,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        breaker: Optional[ModelBreaker] = None,
        model_delays: Optional[DelayInjector] = None,
        actuator_delays: Optional[DelayInjector] = None,
        log_mode: str = "full",
    ) -> None:
        self.config = config or HarvestConfig()
        self.model = HarvestModel(
            kernel, hypervisor, self.config, rng, breaker=breaker
        )
        self.actuator = HarvestActuator(kernel, hypervisor, self.config)
        self.runtime = SolRuntime(
            kernel,
            self.model,
            self.actuator,
            self.config.schedule,
            name="smart-harvest",
            policy=policy,
            model_delays=model_delays,
            actuator_delays=actuator_delays,
            log_mode=log_mode,
        )

    def start(self) -> "SmartHarvestAgent":
        """Start both control loops; returns self."""
        self.runtime.start()
        return self

    def terminate(self) -> None:
        """SRE CleanUp: stop loops, return all harvested cores."""
        self.runtime.terminate()
