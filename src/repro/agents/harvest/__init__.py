"""SmartHarvest: safe CPU-core harvesting agent (§5.2)."""

from repro.agents.harvest.actuator import HarvestActuator
from repro.agents.harvest.agent import SmartHarvestAgent
from repro.agents.harvest.config import HarvestConfig
from repro.agents.harvest.model import HarvestModel, UsageWindow

__all__ = [
    "HarvestActuator",
    "HarvestConfig",
    "HarvestModel",
    "SmartHarvestAgent",
    "UsageWindow",
]
