"""SmartHarvest configuration (§5.2, parameters from [37] where stated)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import Schedule
from repro.sim.units import MS, SEC, US

__all__ = ["HarvestConfig"]


@dataclass(frozen=True)
class HarvestConfig:
    """Parameters of the SmartHarvest agent.

    Paper values: 25 ms prediction epochs over 50 µs usage telemetry, a
    cost-sensitive classifier predicting the primary VMs' maximum core
    need, a 100 ms (4-epoch) maximum actuation wait, and a P99
    wait-time actuator safeguard.

    Attributes:
        sample_period_us: usage telemetry granularity (50 µs).
        epoch_us: prediction horizon / window length (25 ms).
        buffer_cores: safety margin added on top of the predicted need.
        under_cost / over_cost: cost-sensitive asymmetry (starving the
            primary is far worse than harvesting less).
        learning_rate: classifier SGD step.
        starvation_window_epochs / starvation_threshold: model safeguard —
            fraction of recent epochs where the primary ran out of idle
            cores while harvesting.
        recent_max_epochs: horizon of the conservative default
            prediction (max cores recently seen).
        wait_quantile / wait_threshold_cores / wait_window_us: actuator
            safeguard — P99 of per-interval starved-core ratio.
        telemetry_noise_cores: measurement noise on usage samples.
    """

    sample_period_us: int = 50 * US
    epoch_us: int = 25 * MS
    buffer_cores: int = 1
    under_cost: float = 10.0
    over_cost: float = 1.0
    learning_rate: float = 0.08
    starvation_window_epochs: int = 40
    starvation_min_epochs: int = 20
    starvation_threshold: float = 0.10
    recent_max_epochs: int = 10
    wait_quantile: float = 0.99
    wait_threshold_cores: float = 0.5
    wait_window_us: int = 10 * SEC
    telemetry_noise_cores: float = 0.05
    capped_fraction: float = 0.05
    schedule: Schedule = field(
        default_factory=lambda: Schedule(
            data_collect_interval_us=25 * MS,   # one window per epoch
            min_data_per_epoch=1,
            max_data_per_epoch=2,
            max_epoch_time_us=50 * MS,
            assess_model_interval_epochs=10,
            max_actuation_delay_us=100 * MS,    # "a maximum of 100 ms (4 epochs)"
            assess_actuator_interval_us=100 * MS,
            prediction_ttl_us=50 * MS,
        )
    )

    def __post_init__(self) -> None:
        if self.sample_period_us <= 0 or self.epoch_us <= 0:
            raise ValueError("periods must be positive")
        if self.epoch_us % self.sample_period_us != 0:
            raise ValueError("epoch must be a multiple of the sample period")
        if self.buffer_cores < 0:
            raise ValueError("buffer_cores must be non-negative")
        if not 0.0 < self.starvation_threshold < 1.0:
            raise ValueError("starvation_threshold must be in (0, 1)")

    @property
    def samples_per_epoch(self) -> int:
        """Telemetry samples in one collection window (500 in the paper)."""
        return self.epoch_us // self.sample_period_us
