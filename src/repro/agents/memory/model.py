"""SmartMemory's Model half: per-region Thompson sampling (§5.3).

"The agent learns the best scanning frequency for each 2 MB region of
memory ...  In every epoch, the agent uses the Thompson Sampling models
to decide how often to scan each batch, ranging from 300 ms to 9.6 s.
At the end of each 38.4-second epoch (4× the maximum sampling period),
the agent observes whether each batch was oversampled, undersampled (as
approximated by number of consecutive access bits set), or well sampled,
and updates the models accordingly."

Safeguards implemented here:

* ``validate_data`` — the scanning driver "will return an error code if
  it fails to scan or reset any access bits"; errored scans are dropped.
* ``assess_model`` — 10% of batches are ground-truth sampled at the
  maximum frequency each epoch; the inferred fraction of accesses missed
  by the model-recommended rates failing 25% marks undersampling.
* ``default_predict`` — hit counts downsampled to the slowest frequency
  for comparability, then only the coldest 5% of batches offloaded.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.agents.memory.classify import (
    MemoryPlan,
    captured_rate_at_period,
    classify_by_coverage,
    infer_access_rate,
    observable_rate,
)
from repro.agents.memory.config import MemoryConfig
from repro.core.interfaces import Model
from repro.core.prediction import Prediction
from repro.ml.bandits import BetaThompsonSampler
from repro.node.memory import ScanResult, TieredMemory
from repro.sim.kernel import Kernel
from repro.sim.units import SEC

__all__ = ["RateEstimates", "MemoryModel"]


class RateEstimates:
    """Shared per-region access-rate estimates.

    The Model writes fresh estimates each epoch; the Actuator's
    mitigation reads them to pick the "hottest" remote regions.  Sharing
    an explicit board keeps the two halves decoupled (no reach-through
    into model internals).
    """

    def __init__(self, n_regions: int) -> None:
        self.rates = np.zeros(n_regions)
        self.updated_at_us = 0

    def update(self, rates: np.ndarray, now_us: int) -> None:
        self.rates = rates.copy()
        self.updated_at_us = now_us

    def hottest_remote(
        self, remote_regions: np.ndarray, limit: int
    ) -> np.ndarray:
        """The up-to-``limit`` highest-estimated-rate remote regions."""
        if remote_regions.size == 0:
            return remote_regions
        order = np.argsort(self.rates[remote_regions])[::-1]
        return remote_regions[order[:limit]]


class MemoryModel(Model):
    """Scan-rate learning and hot/warm/cold classification.

    Args:
        kernel: simulation kernel.
        memory: the two-tier memory substrate (scan interface).
        config: agent parameters.
        rng: random stream (arm sampling, ground-truth selection).
        estimates: shared rate board (also given to the actuator).
    """

    def __init__(
        self,
        kernel: Kernel,
        memory: TieredMemory,
        config: MemoryConfig,
        rng: np.random.Generator,
        estimates: RateEstimates,
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.config = config
        self.rng = rng
        self.estimates = estimates

        n = memory.n_regions
        self.samplers = [
            BetaThompsonSampler(config.n_arms, rng) for _ in range(n)
        ]
        self._arm = np.zeros(n, dtype=int)  # current arm per region
        self._truth_mask = np.zeros(n, dtype=bool)
        self._next_due = np.zeros(n, dtype=np.int64)
        self._last_seen_us = np.full(n, kernel.now, dtype=np.int64)
        self._cold = np.zeros(n, dtype=bool)
        # per-epoch scan statistics
        self._scan_count = np.zeros(n, dtype=int)
        self._bits_total = np.zeros(n)
        self._saturated = np.zeros(n, dtype=int)
        self._zero = np.zeros(n, dtype=int)
        self._epoch_start_us = kernel.now
        self._missed_fraction: Optional[float] = None
        #: fault injectors applied to every collected scan batch (the
        #: telemetry-transport boundary, mirroring
        #: ``CounterReader.add_injector`` / ``HarvestModel.injectors``)
        self.injectors: List = []
        self._assign_arms()

    # -- Model interface ------------------------------------------------------

    def collect_data(self) -> List[ScanResult]:
        """Scan every non-cold region whose period has elapsed."""
        now = self.kernel.now
        due = np.flatnonzero((self._next_due <= now) & ~self._cold)
        results: List[ScanResult] = []
        for region in due:
            results.append(self.memory.scan(int(region)))
            period = self.config.scan_periods_us[self._arm[region]]
            if self._truth_mask[region]:
                period = self.config.scan_periods_us[0]
            self._next_due[region] = now + period
        for injector in self.injectors:
            results = injector(results)
        return results

    def validate_data(self, batch: List[ScanResult]) -> bool:
        """A batch is unusable only if every scan in it errored."""
        if not batch:
            return True  # nothing due this tick: a valid (empty) sample
        return any(not result.error for result in batch)

    def commit_data(self, time_us: int, batch: List[ScanResult]) -> None:
        """Fold non-errored scans into the epoch statistics."""
        pages = self.memory.pages_per_region
        for result in batch:
            if result.error:
                continue
            region = result.region
            self._scan_count[region] += 1
            self._bits_total[region] += result.set_bits
            if result.saturated:
                self._saturated[region] += 1
            if result.set_bits == 0:
                self._zero[region] += 1
            else:
                self._last_seen_us[region] = time_us

    def update_model(self) -> None:
        """End of epoch: reward arms, refresh estimates, reassign arms."""
        now = self.kernel.now
        elapsed_s = max(1e-9, (now - self._epoch_start_us) / SEC)
        self._reward_arms()
        self._missed_fraction = self._estimate_missed_fraction(elapsed_s)
        self.estimates.update(self._corrected_rates(), now)
        self._update_cold(now)
        self._assign_arms()

    def model_predict(self) -> Optional[Prediction[MemoryPlan]]:
        counts = self.estimates.rates
        candidates = np.flatnonzero(~self._cold)
        hot, warm = classify_by_coverage(
            counts, candidates, self.config.hot_coverage
        )
        plan = MemoryPlan(
            hot=hot, warm=warm, cold=np.flatnonzero(self._cold)
        )
        return Prediction.fresh(
            self.kernel, plan,
            ttl_us=self.config.schedule.prediction_ttl_us,
        )

    def default_predict(self) -> Optional[Prediction[MemoryPlan]]:
        """Conservative plan: offload only the coldest 5% of batches.

        Hit counts are first downsampled to the slowest scan frequency so
        regions scanned at different rates are comparable (§5.3).
        """
        pages = self.memory.pages_per_region
        slowest = self.config.scan_periods_us[-1]
        downsampled = np.array(
            [
                observable_rate(rate, slowest, pages)
                for rate in self.estimates.rates
            ]
        )
        candidates = np.flatnonzero(~self._cold)
        if candidates.size == 0:
            plan = MemoryPlan(
                hot=np.zeros(0, dtype=int),
                warm=np.zeros(0, dtype=int),
                cold=np.flatnonzero(self._cold),
            )
        else:
            n_warm = int(
                round((1.0 - self.config.default_local_fraction)
                      * candidates.size)
            )
            order = np.argsort(downsampled[candidates])
            warm = np.sort(candidates[order[:n_warm]])
            hot = np.sort(candidates[order[n_warm:]])
            plan = MemoryPlan(
                hot=hot, warm=warm, cold=np.flatnonzero(self._cold)
            )
        return Prediction.fresh(
            self.kernel,
            plan,
            ttl_us=self.config.schedule.prediction_ttl_us,
            is_default=True,
        )

    def assess_model(self) -> bool:
        """Undersampling check against the max-frequency ground truth."""
        if self._missed_fraction is None:
            return True
        return self._missed_fraction <= self.config.missed_threshold

    # -- introspection (experiments) -----------------------------------------

    @property
    def missed_fraction(self) -> Optional[float]:
        """Last epoch's estimated fraction of missed accesses."""
        return self._missed_fraction

    @property
    def cold_regions(self) -> np.ndarray:
        return np.flatnonzero(self._cold)

    def chosen_periods_us(self) -> np.ndarray:
        """Current scan period per region (experiments report the mix)."""
        periods = np.asarray(self.config.scan_periods_us)[self._arm]
        return periods

    # -- internals ----------------------------------------------------------------

    def _assign_arms(self) -> None:
        """Thompson-sample an arm per region; pick the ground-truth set."""
        now = self.kernel.now
        self._epoch_start_us = now
        self._scan_count[:] = 0
        self._bits_total[:] = 0.0
        self._saturated[:] = 0
        self._zero[:] = 0
        active = np.flatnonzero(~self._cold)
        self._truth_mask[:] = False
        if active.size > 0:
            n_truth = max(1, int(round(self.config.truth_fraction
                                       * active.size)))
            chosen = self.rng.choice(active, size=n_truth, replace=False)
            self._truth_mask[chosen] = True
        for region in active:
            self._arm[region] = self.samplers[region].select_arm()
        self._next_due[active] = now  # first scan on the next tick

    def _reward_arms(self) -> None:
        """Score each region's epoch: well-sampled = success."""
        for region in range(self.memory.n_regions):
            n_scans = self._scan_count[region]
            if n_scans == 0 or self._cold[region]:
                continue
            arm = (
                0 if self._truth_mask[region] else int(self._arm[region])
            )
            saturation_rate = self._saturated[region] / n_scans
            occupancy = (
                self._bits_total[region]
                / n_scans
                / self.memory.pages_per_region
            )
            if saturation_rate >= self.config.saturation_undersampled:
                # Undersampled (bits clipped) — unless already at the
                # maximum frequency, where no arm can do better: a region
                # hot enough to saturate 300 ms scans is simply "hot".
                success = arm == 0
            elif (
                occupancy < self.config.well_sampled_low
                and arm < self.config.n_arms - 1
            ):
                # Oversampled: bits are sparse, so a slower arm would
                # observe the same accesses with fewer flushes.  "The
                # optimal scanning frequency is the lowest frequency that
                # yields the same number of accesses as the maximum
                # frequency" (§5.3).
                success = False
            else:
                success = True
            self.samplers[region].update(arm, success)

    def _estimate_missed_fraction(self, elapsed_s: float) -> Optional[float]:
        """Weighted miss estimate over the ground-truth sample (§5.3).

        For each ground-truth region (scanned at maximum frequency this
        epoch, giving a trustworthy access-rate estimate), ask: *if this
        region were scanned at the arm the model currently recommends,
        how much of its access rate would be unrecoverable?*  A scan
        period is information-preserving while its bit occupancy stays
        below saturation — the occupancy inversion then recovers the
        rate exactly.  Once the recommended period would saturate the
        bits, everything above the saturation bound is missed.  The
        aggregate, weighted by region hotness, is the paper's "fraction
        of access bits missed by the model-recommended scanning rates".
        """
        truth_regions = np.flatnonzero(self._truth_mask)
        pages = self.memory.pages_per_region
        max_period = self.config.scan_periods_us[0]
        saturation_bits = self.memory.saturation_fraction * pages
        total_truth_rate = 0.0
        total_missed = 0.0
        for region in truth_regions:
            n_scans = self._scan_count[region]
            if n_scans == 0:
                continue
            bits_per_scan = self._bits_total[region] / n_scans
            access_rate = infer_access_rate(bits_per_scan, max_period, pages)
            if access_rate <= 0:
                continue
            recommended = int(
                np.argmax(self.samplers[region].mean_estimates())
            )
            period = self.config.scan_periods_us[recommended]
            expected_bits = (
                captured_rate_at_period(access_rate, period, pages)
                * period
                / 1e6
            )
            if expected_bits < saturation_bits:
                recoverable = access_rate  # inversion is exact: no loss
            else:
                recoverable = infer_access_rate(
                    saturation_bits, period, pages
                )
            missed = max(0.0, 1.0 - recoverable / access_rate)
            total_truth_rate += access_rate
            total_missed += missed * access_rate
        if total_truth_rate <= 0:
            return None
        return total_missed / total_truth_rate

    def _corrected_rates(self) -> np.ndarray:
        """Per-region access-rate estimates, saturation-corrected.

        Raw set-bit counts undercount fast regions scanned slowly; the
        Poisson-occupancy inversion recovers the underlying rate from
        bits-per-scan at the region's scan period (up to the saturation
        bound, where only a lower bound survives — exactly the residual
        ambiguity the ground-truth safeguard monitors).
        """
        pages = self.memory.pages_per_region
        rates = np.zeros(self.memory.n_regions)
        for region in range(self.memory.n_regions):
            n_scans = self._scan_count[region]
            if n_scans == 0:
                continue
            period = self.config.scan_periods_us[
                0 if self._truth_mask[region] else int(self._arm[region])
            ]
            bits_per_scan = self._bits_total[region] / n_scans
            rates[region] = infer_access_rate(bits_per_scan, period, pages)
        return rates

    def _update_cold(self, now: int) -> None:
        """Mark regions untouched for longer than the cold timeout."""
        stale = (now - self._last_seen_us) > self.config.cold_timeout_us
        self._cold = stale
