"""SmartMemory: adaptive page-scan-rate agent for tiered memory (§5.3)."""

from repro.agents.memory.actuator import MemoryActuator
from repro.agents.memory.agent import SmartMemoryAgent
from repro.agents.memory.classify import (
    MemoryPlan,
    classify_by_coverage,
    infer_access_rate,
    observable_rate,
)
from repro.agents.memory.config import MemoryConfig
from repro.agents.memory.model import MemoryModel, RateEstimates
from repro.agents.memory.static import StaticScanController

__all__ = [
    "MemoryActuator",
    "MemoryConfig",
    "MemoryModel",
    "MemoryPlan",
    "RateEstimates",
    "SmartMemoryAgent",
    "StaticScanController",
    "classify_by_coverage",
    "infer_access_rate",
    "observable_rate",
]
