"""Static scan-frequency baselines for Figure 7.

"We compare the SmartMemory agent to two baselines without any
safeguards: always scanning at the maximum frequency (300 ms) and always
scanning at the minimum frequency (9.6 s)."

The baseline shares SmartMemory's classification rule (minimal hot set
covering 80% of observed accesses) — only the scan schedule differs, so
the comparison isolates the value of *learned, per-region* scan rates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.memory.classify import classify_by_coverage, infer_access_rate
from repro.agents.memory.config import MemoryConfig
from repro.node.memory import Tier, TieredMemory
from repro.sim.kernel import Kernel, Process

__all__ = ["StaticScanController"]


class StaticScanController:
    """Scan every region at one fixed period; reclassify every epoch.

    Args:
        kernel: simulation kernel.
        memory: two-tier memory substrate.
        period_us: the fixed scan period for all regions.
        config: reused for the classification rule and epoch length.
    """

    def __init__(
        self,
        kernel: Kernel,
        memory: TieredMemory,
        period_us: int,
        config: Optional[MemoryConfig] = None,
        scans_per_reclassify: int = 4,
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.period_us = period_us
        self.config = config or MemoryConfig()
        # Reclassification needs a few scans of evidence, so its cadence
        # is proportional to the scan period: a 300 ms scanner adapts in
        # ~1.2 s, a 9.6 s scanner only every ~38 s.  This cadence gap is
        # the mechanism behind the paper's min-frequency SLO collapse —
        # slow scanning both blurs hotness *and* reacts late to shifts.
        self.scans_per_reclassify = scans_per_reclassify
        self._bits = np.zeros(memory.n_regions)
        self._scans_since_reclassify = 0
        self._process: Optional[Process] = None
        self.reclassifications = 0

    def start(self) -> "StaticScanController":
        if self._process is not None:
            raise RuntimeError("controller already started")
        self._process = self.kernel.spawn(self._run(), name="static-scan")
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()

    def _run(self):
        while True:
            yield self.period_us
            for region in range(self.memory.n_regions):
                result = self.memory.scan(region)
                if not result.error:
                    self._bits[region] += result.set_bits
            self._scans_since_reclassify += 1
            if self._scans_since_reclassify >= self.scans_per_reclassify:
                self._reclassify()

    def _reclassify(self) -> None:
        """Re-rank by inferred access rate and re-place the tiers.

        Uses the same Poisson-occupancy inversion as SmartMemory.  At
        slow scan periods most regions read back saturated, and the
        inversion amplifies the residual binomial noise into an
        essentially random ranking — "sampling at the minimum frequency
        does not provide enough resolution to identify the hottest
        batches" (§6.4), which is what collapses the min-frequency
        baseline's SLO attainment in Figure 7.
        """
        pages = self.memory.pages_per_region
        bits_per_scan = self._bits / max(1, self._scans_since_reclassify)
        rates = np.array(
            [
                infer_access_rate(bits, self.period_us, pages)
                for bits in bits_per_scan
            ]
        )
        candidates = np.arange(self.memory.n_regions)
        hot, warm = classify_by_coverage(
            rates, candidates, self.config.hot_coverage
        )
        self.memory.migrate_many(hot.tolist(), Tier.LOCAL)
        self.memory.migrate_many(warm.tolist(), Tier.REMOTE)
        self._bits[:] = 0.0
        self._scans_since_reclassify = 0
        self.reclassifications += 1
