"""SmartMemory assembly (§5.3)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.memory.actuator import MemoryActuator
from repro.agents.memory.config import MemoryConfig
from repro.agents.memory.model import MemoryModel, RateEstimates
from repro.core.runtime import SolRuntime
from repro.core.safeguards import SafeguardPolicy
from repro.node.faults import DelayInjector
from repro.node.memory import TieredMemory
from repro.sim.kernel import Kernel

__all__ = ["SmartMemoryAgent"]


class SmartMemoryAgent:
    """The complete page-classification agent of §5.3.

    Args:
        kernel: simulation kernel.
        memory: the VM's two-tier memory.
        rng: random stream (arm sampling, ground-truth selection).
        config: agent parameters (paper defaults).
        policy: safeguard ablation switches (experiments only).
        model_delays / actuator_delays: optional throttling injectors.
        log_mode: runtime event-log mode (``"full"`` or ``"counts"``).
    """

    def __init__(
        self,
        kernel: Kernel,
        memory: TieredMemory,
        rng: np.random.Generator,
        config: Optional[MemoryConfig] = None,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        model_delays: Optional[DelayInjector] = None,
        actuator_delays: Optional[DelayInjector] = None,
        log_mode: str = "full",
    ) -> None:
        self.config = config or MemoryConfig()
        self.estimates = RateEstimates(memory.n_regions)
        self.model = MemoryModel(
            kernel, memory, self.config, rng, self.estimates
        )
        self.actuator = MemoryActuator(
            kernel, memory, self.config, self.estimates
        )
        self.runtime = SolRuntime(
            kernel,
            self.model,
            self.actuator,
            self.config.schedule,
            name="smart-memory",
            policy=policy,
            model_delays=model_delays,
            actuator_delays=actuator_delays,
            log_mode=log_mode,
        )

    def start(self) -> "SmartMemoryAgent":
        """Start both control loops; returns self."""
        self.runtime.start()
        return self

    def terminate(self) -> None:
        """SRE CleanUp: stop loops, restore all batches to tier one."""
        self.runtime.terminate()
