"""Hot/warm classification and occupancy math shared by SmartMemory.

The static-scanning baselines of Figure 7 use exactly the same
classification rule as the learned agent (only the scan schedule
differs), so the rule lives here rather than inside the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = [
    "MemoryPlan",
    "classify_by_coverage",
    "observable_rate",
    "infer_access_rate",
    "captured_rate_at_period",
]


@dataclass(frozen=True)
class MemoryPlan:
    """A tier-placement decision: which regions go where.

    This is SmartMemory's prediction value: the Actuator applies it by
    migrating regions between tiers.
    """

    hot: np.ndarray
    warm: np.ndarray
    cold: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    def __post_init__(self) -> None:
        sets = [set(self.hot.tolist()), set(self.warm.tolist()),
                set(self.cold.tolist())]
        total = sum(len(s) for s in sets)
        if len(set().union(*sets)) != total:
            raise ValueError("hot/warm/cold sets must be disjoint")

    @property
    def n_regions(self) -> int:
        return self.hot.size + self.warm.size + self.cold.size


def classify_by_coverage(
    counts: np.ndarray,
    candidates: np.ndarray,
    coverage: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``candidates`` into (hot, warm) by access-count coverage.

    Hot is the minimal set of highest-count regions whose counts sum to
    at least ``coverage`` of the candidates' total ("the minimal set of
    batches that contributed 80% of total memory accesses", §5.3).

    Args:
        counts: per-region access-count estimates (full-length array).
        candidates: region indices eligible for classification.
        coverage: target fraction in (0, 1].

    Returns:
        (hot_indices, warm_indices); all-zero counts yield everything
        hot (no information = do not offload anything).
    """
    if candidates.size == 0:
        return candidates.copy(), candidates.copy()
    candidate_counts = counts[candidates]
    total = candidate_counts.sum()
    if total <= 0:
        return candidates.copy(), np.zeros(0, dtype=candidates.dtype)
    order = np.argsort(candidate_counts)[::-1]
    cumulative = np.cumsum(candidate_counts[order])
    n_hot = int(np.searchsorted(cumulative, coverage * total) + 1)
    n_hot = min(n_hot, candidates.size)
    hot = candidates[order[:n_hot]]
    warm = candidates[order[n_hot:]]
    return np.sort(hot), np.sort(warm)


def observable_rate(
    access_rate: float, period_us: int, pages: int
) -> float:
    """Set bits per second a scanner at ``period_us`` would observe.

    Poisson occupancy: each scan of a region with true access rate ``λ``
    sees ``pages·(1 − exp(−λ·p/pages))`` set bits, and there are ``1/p``
    scans per second.  Saturation makes this *sublinear* in the period:
    slow scanning misses accesses — the quantity SmartMemory's ground-
    truth check estimates.
    """
    if access_rate <= 0 or period_us <= 0:
        return 0.0
    period_s = period_us / 1e6
    touched = pages * (1.0 - np.exp(-access_rate * period_s / pages))
    return float(touched / period_s)


def infer_access_rate(
    bits_per_scan: float, period_us: int, pages: int
) -> float:
    """Invert the occupancy model: true access rate from observed bits.

    Saturated readings (all bits set) carry only a lower bound; they are
    clamped just below saturation so the inversion stays finite.
    """
    if bits_per_scan <= 0 or period_us <= 0:
        return 0.0
    period_s = period_us / 1e6
    fraction = min(bits_per_scan / pages, 1.0 - 1e-6)
    return float(-pages * np.log(1.0 - fraction) / period_s)


def captured_rate_at_period(
    access_rate: float, period_us: int, pages: int
) -> float:
    """Alias of :func:`observable_rate` for call-site readability."""
    return observable_rate(access_rate, period_us, pages)
