"""SmartMemory's Actuator half: tier placement plus the SLO watchdog.

"The agent can directly observe the number of memory accesses to each
tier using existing hardware counters.  If the fraction of remote
accesses over the last epoch is above the 20% target service level
objective (SLO), the Actuator safeguard is triggered.  In this case, the
Actuator immediately migrates the 100 hottest batches in the second-tier
memory back to the first tier" (§5.3).

Delayed predictions need no special action: "It simply leaves the hot
and warm pages where they are" — so ``take_action(None)`` is a no-op and
staleness is handled by the watchdog instead.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.memory.classify import MemoryPlan
from repro.agents.memory.config import MemoryConfig
from repro.agents.memory.model import RateEstimates
from repro.core.interfaces import Actuator
from repro.core.prediction import Prediction
from repro.node.memory import Tier, TieredMemory
from repro.sim.kernel import Kernel

__all__ = ["MemoryActuator"]


class MemoryActuator(Actuator):
    """Apply tier-placement plans; keep remote accesses under the SLO.

    Args:
        kernel: simulation kernel.
        memory: two-tier memory substrate.
        config: agent parameters.
        estimates: rate board shared with the Model (mitigation needs
            "hottest" rankings without reaching into model internals).
    """

    def __init__(
        self,
        kernel: Kernel,
        memory: TieredMemory,
        config: MemoryConfig,
        estimates: RateEstimates,
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.config = config
        self.estimates = estimates
        self._last_snapshot = memory.snapshot()
        self.plans_applied = 0
        self.noop_actions = 0

    def take_action(
        self, prediction: Optional[Prediction[MemoryPlan]]
    ) -> None:
        if prediction is None:
            self.noop_actions += 1  # leave placement as is (§5.3)
            return
        plan = prediction.value
        self.memory.migrate_many(plan.hot.tolist(), Tier.LOCAL)
        self.memory.migrate_many(plan.warm.tolist(), Tier.REMOTE)
        self.memory.migrate_many(plan.cold.tolist(), Tier.REMOTE)
        self.plans_applied += 1

    def assess_performance(self) -> bool:
        """Remote-access fraction since the last check must meet the SLO."""
        current = self.memory.snapshot()
        previous, self._last_snapshot = self._last_snapshot, current
        local = current.local_accesses - previous.local_accesses
        remote = current.remote_accesses - previous.remote_accesses
        total = local + remote
        if total <= 0:
            return True  # idle memory cannot violate the SLO
        return remote / total <= self.config.slo_remote_fraction

    def mitigate(self) -> None:
        """Migrate the hottest remote batches back to the first tier."""
        hottest = self.estimates.hottest_remote(
            self.memory.remote_regions, self.config.mitigation_batch
        )
        self.memory.migrate_many(hottest.tolist(), Tier.LOCAL)

    def clean_up(self) -> None:
        """SRE path: restore every batch to the first tier (§5.3)."""
        self.memory.migrate_many(
            list(range(self.memory.n_regions)), Tier.LOCAL
        )
