"""SmartMemory configuration (§5.3 parameter values)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.schedule import Schedule
from repro.sim.units import MINUTE, MS, SEC

__all__ = ["MemoryConfig"]


@dataclass(frozen=True)
class MemoryConfig:
    """Parameters of the SmartMemory agent.

    Paper values: per-region Thompson sampling over scan periods 300 ms
    to 9.6 s, 38.4-second epochs (4× the maximum period), hot batches =
    minimal set covering 80% of accesses, >3-minutes-untouched = cold,
    10% ground-truth sampling at maximum frequency with a 25% missed-
    access threshold, a 20% remote-access SLO, and a 100-batch
    migrate-back mitigation.

    Attributes:
        scan_periods_us: the bandit's arms (geometric ladder).
        hot_coverage: fraction of estimated accesses the hot set covers.
        default_local_fraction: under default predictions, the fraction
            of batches kept in first-tier DRAM (0.95: only the coldest
            5% become offload candidates).
        cold_timeout_us: untouched-for-longer ⇒ cold, excluded from
            scanning and analysis.
        truth_fraction: batches ground-truth-sampled at max frequency.
        missed_threshold: model assessment fails above this estimated
            fraction of missed accesses.
        saturation_undersampled: fraction of saturated scans in an epoch
            above which the arm is judged too slow.
        well_sampled_low: mean bit occupancy below which a non-slowest
            arm is judged too fast (a slower arm would capture the same
            accesses with fewer flushes).
        slo_remote_fraction: actuator safeguard threshold (20% SLO).
        mitigation_batch: hottest remote regions migrated back per
            mitigation.
    """

    scan_periods_us: Tuple[int, ...] = (
        300 * MS,
        600 * MS,
        1200 * MS,
        2400 * MS,
        4800 * MS,
        9600 * MS,
    )
    hot_coverage: float = 0.80
    default_local_fraction: float = 0.95
    cold_timeout_us: int = 3 * MINUTE
    truth_fraction: float = 0.10
    missed_threshold: float = 0.25
    saturation_undersampled: float = 0.5
    well_sampled_low: float = 0.45
    slo_remote_fraction: float = 0.20
    mitigation_batch: int = 100
    schedule: Schedule = field(
        default_factory=lambda: Schedule(
            data_collect_interval_us=300 * MS,   # minimum scan period
            min_data_per_epoch=128,              # 128 × 300 ms = 38.4 s epoch
            max_data_per_epoch=140,
            max_epoch_time_us=42 * SEC,
            assess_model_interval_epochs=1,
            max_actuation_delay_us=39 * SEC,     # one epoch; None-action is a no-op
            assess_actuator_interval_us=5 * SEC,
            prediction_ttl_us=80 * SEC,          # ~two epochs
        )
    )

    def __post_init__(self) -> None:
        if len(self.scan_periods_us) < 2:
            raise ValueError("need at least two scan periods")
        if any(
            b <= a
            for a, b in zip(self.scan_periods_us, self.scan_periods_us[1:])
        ):
            raise ValueError("scan periods must be strictly increasing")
        if not 0.0 < self.hot_coverage <= 1.0:
            raise ValueError("hot_coverage must be in (0, 1]")
        if not 0.0 < self.truth_fraction < 1.0:
            raise ValueError("truth_fraction must be in (0, 1)")

    @property
    def epoch_us(self) -> int:
        """Learning-epoch length: 4× the maximum sampling period (§5.3)."""
        return 4 * self.scan_periods_us[-1]

    @property
    def n_arms(self) -> int:
        return len(self.scan_periods_us)
