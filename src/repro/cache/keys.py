"""Cache key derivation: content addresses for reproduction work units.

A unit's key digests everything its payload can depend on:

* the artifact name and series key (``None`` for whole-artifact units);
* the resolved experiment kwargs (durations after scaling, seeds,
  region counts — whatever the registry's kwargs builder produced) plus
  the scale itself;
* a **code-version salt**: a hash over the source bytes of every
  ``repro`` module that can influence results, plus the environment
  the bits depend on (Python version, numpy version, machine
  architecture — RNG internals and reduction kernels can change across
  any of them).  Editing the kernel, a workload, an agent, or an
  experiment invalidates every cached row; editing the CLI, the perf
  harness (frozen copies included), the resilience layer, or this
  cache package does not.

Keys are hex SHA-256, so the store is content-addressed in the usual
two-level fan-out layout (``objects/ab/abcdef....pkl``).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["code_salt", "sweep_unit_key", "unit_key"]

#: Package subtrees/files whose source cannot affect experiment rows.
#: ``perf`` holds the frozen measurement baselines, ``cache`` is this
#: subsystem, ``resilience`` only supervises dispatch (units are pure
#: in their payloads, so retries and pool mechanics cannot move a
#: result bit), ``journal`` only records dispatch durably (same
#: argument — replayed payloads were produced by the salted code),
#: ``obs`` only observes (spans and metrics are strictly out-of-band;
#: DESIGN.md §14 — an instrumentation edit must not invalidate every
#: cached row), and the CLI only orchestrates.
_SALT_EXCLUDED_DIRS = frozenset(
    {"cache", "journal", "obs", "perf", "resilience", "__pycache__"}
)
_SALT_EXCLUDED_FILES = frozenset({"cli.py"})

_code_salt_cache: Optional[str] = None


def code_salt() -> str:
    """Hash of every result-affecting ``repro`` source file plus the
    numeric environment (Python/numpy versions, machine architecture).

    Deterministic in file *contents* (sorted relative paths, raw
    bytes), independent of mtimes and install location.  Computed once
    per process.
    """
    global _code_salt_cache
    if _code_salt_cache is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        # Environment: a cache written under one numpy/Python/arch must
        # not be served under another — bit streams and reduction
        # kernels are only pinned within one environment.
        digest.update(
            f"python={sys.version_info[:3]};numpy={np.__version__};"
            f"machine={platform.machine()}\0".encode("utf-8")
        )
        entries = []
        for dirpath, dirnames, filenames in os.walk(package_root):
            relative_dir = os.path.relpath(dirpath, package_root)
            parts = [] if relative_dir == "." else relative_dir.split(os.sep)
            if parts and parts[0] in _SALT_EXCLUDED_DIRS:
                continue
            dirnames[:] = [
                name for name in dirnames
                if not (not parts and name in _SALT_EXCLUDED_DIRS)
                and name != "__pycache__"
            ]
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                if not parts and filename in _SALT_EXCLUDED_FILES:
                    continue
                entries.append(
                    ("/".join(parts + [filename]),
                     os.path.join(dirpath, filename))
                )
        for relative_path, path in sorted(entries):
            digest.update(relative_path.encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
        _code_salt_cache = digest.hexdigest()
    return _code_salt_cache


def _canonical(value: Any) -> Any:
    """JSON-safe canonical form; floats stay exact via ``repr``."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def unit_key(
    artifact: str,
    series: Optional[str],
    scale: float,
    kwargs: Dict[str, Any],
    salt: Optional[str] = None,
) -> str:
    """Content address of one ``(artifact, series)`` work unit."""
    payload = json.dumps(
        {
            "artifact": artifact,
            "series": series,
            "scale": repr(float(scale)),
            "kwargs": _canonical(kwargs),
            "salt": code_salt() if salt is None else salt,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def sweep_unit_key(
    unit: Dict[str, Any],
    salt: Optional[str] = None,
) -> str:
    """Content address of one robustness-campaign cell.

    ``unit`` is the cell's resolved coordinate payload
    (:meth:`repro.sweep.units.SweepUnit.cache_payload`): agent, scale,
    seed, durations, and the full fault plan — campaign-independent, so
    equal cells hit across campaigns.  The same code-version salt as
    :func:`unit_key` applies, so any result-affecting source edit
    invalidates cached cells structurally.

    Keys carry a literal ``sweep::`` prefix — a distinct namespace from
    the reproduce-all unit keys that also groups every campaign object
    under ``objects/sw/`` on disk.
    """
    payload = json.dumps(
        {
            "ns": "sweep",
            "unit": _canonical(unit),
            "salt": code_salt() if salt is None else salt,
        },
        sort_keys=True,
    )
    return "sweep::" + hashlib.sha256(payload.encode("utf-8")).hexdigest()
