"""On-disk content-addressed payload store.

Payloads are whatever a work unit returns — already required to be
picklable for the multiprocessing driver, and pickle round-trips floats
and nested containers bit-exactly, which the warm-run digest guarantee
depends on.  Writes are atomic (temp file + ``os.replace``), so a
killed run never leaves a truncated object where a key should be.

A present-but-unreadable object is *quarantined*, not silently
re-treated as a miss: the bad file is moved aside to
``<cache>/quarantine/`` (evidence for the operator — something wrote
garbage where a content-addressed object should be), counted in
:attr:`CacheStats.corrupt`, and surfaced on the ``[cache:]`` CLI line;
the unit then reruns and stores a fresh object (DESIGN.md §11).

The store also keeps ``unit_timings.json`` — per-unit wall-time
histogram summaries (count/total/min/max/last) that the driver feeds
back into longest-first dispatch via its ``last`` field (replacing the
estimated-cost heuristic; DESIGN.md §8 and §14).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs import spans as obs
from repro.obs.metrics import MetricsRegistry, counter_property

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, or ``.repro-cache`` under the working dir."""
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.getcwd(), ".repro-cache"
    )


class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance.

    Registry-backed (DESIGN.md §14): the counters live in a
    :class:`~repro.obs.metrics.MetricsRegistry`, so a run's telemetry
    sidecar and the serve ``metrics`` verb read the same storage the
    ``[cache:]`` CLI line renders.  The int-compatible properties keep
    every legacy mutation site (``stats.hits += 1``) and comparison
    unchanged.

    ``corrupt`` counts present-but-unreadable objects that were moved
    to quarantine (each such get also counts as a miss — the unit
    reran).  ``pruned`` counts quarantined evidence files deleted to
    keep the quarantine directory bounded
    (:attr:`ResultCache.quarantine_keep`).
    """

    FIELDS = ("hits", "misses", "stores", "corrupt", "pruned")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )

    hits = counter_property("cache.hits")
    misses = counter_property("cache.misses")
    stores = counter_property("cache.stores")
    corrupt = counter_property("cache.corrupt")
    pruned = counter_property("cache.pruned")

    def snapshot(self) -> Dict[str, int]:
        """Wire-serializable counter values (one consistent read)."""
        counters = self.registry.snapshot().get("counters", {})
        return {
            name: int(counters.get(f"cache.{name}", 0))
            for name in self.FIELDS
        }

    def render(self) -> str:
        line = f"hits={self.hits} misses={self.misses} stores={self.stores}"
        if self.corrupt:
            line += f" corrupt={self.corrupt}"
        if self.pruned:
            line += f" pruned={self.pruned}"
        return line


@dataclass
class ResultCache:
    """Content-addressed pickle store rooted at ``directory``.

    ``quarantine_keep`` bounds the quarantine directory: each
    quarantining keeps only the newest ``quarantine_keep`` evidence
    pickles and deletes older ones (counted in
    :attr:`CacheStats.pruned`), so a long-lived cache under recurring
    corruption cannot grow ``<cache>/quarantine/`` forever.
    """

    directory: str = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)
    quarantine_keep: int = 64

    def _object_path(self, key: str) -> str:
        return os.path.join(self.directory, "objects", key[:2], f"{key}.pkl")

    @property
    def quarantine_dir(self) -> str:
        """Where corrupt objects (and the poison-unit log) are kept."""
        return os.path.join(self.directory, "quarantine")

    def get(self, key: str, default: Any = None) -> Any:
        """The payload stored under ``key``, or ``default`` (a miss).

        A key with no object is a plain miss.  A key whose object
        exists but cannot be unpickled is *corrupt*: the file is moved
        to ``<cache>/quarantine/`` as evidence, the corruption is
        counted, and the get degrades to a miss — the unit reruns and
        stores a fresh object.  Garbage is never returned.
        """
        path = self._object_path(key)
        with obs.span("cache.get", cat="cache", key=key[:16]) as sp:
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                self.stats.misses += 1
                if sp is not None:
                    sp.args["outcome"] = "miss"
                return default
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError, ValueError):
                # Truncated, garbled, or stale-beyond-unpickling:
                # quarantine the evidence, then degrade to a miss.
                self._quarantine_object(key, path)
                self.stats.misses += 1
                self.stats.corrupt += 1
                if sp is not None:
                    sp.args["outcome"] = "corrupt"
                return default
            self.stats.hits += 1
            if sp is not None:
                sp.args["outcome"] = "hit"
            return payload

    def _quarantine_object(self, key: str, path: str) -> None:
        """Move a corrupt object into quarantine (best-effort)."""
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            os.replace(
                path, os.path.join(self.quarantine_dir, f"{key}.pkl")
            )
        except OSError:  # pragma: no cover — unreadable *and* unmovable
            return
        self._prune_quarantine()

    def _prune_quarantine(self) -> None:
        """Keep only the newest ``quarantine_keep`` evidence pickles.

        Only ``*.pkl`` evidence files are eligible — the poison-unit
        quarantine log (``units.json`` and its lock) shares this
        directory and must never be collected.  Oldest-first by
        ``(mtime, name)``: deterministic even when a burst of
        corruption lands within one timestamp granule.
        """
        if self.quarantine_keep < 0:
            return  # unbounded by explicit request
        try:
            names = os.listdir(self.quarantine_dir)
        except OSError:
            return
        entries = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.quarantine_dir, name)
            try:
                entries.append((os.stat(path).st_mtime_ns, name, path))
            except OSError:
                continue  # raced a concurrent prune
        entries.sort()
        excess = len(entries) - self.quarantine_keep
        for _mtime, _name, path in entries[:max(excess, 0)]:
            try:
                os.unlink(path)
            except OSError:
                continue
            self.stats.pruned += 1

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def put(self, key: str, payload: Any) -> None:
        """Atomically store ``payload`` under ``key``."""
        path = self._object_path(key)
        with obs.span("cache.put", cat="cache", key=key[:16]):
            self._atomic_write(
                path,
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
            )
            self.stats.stores += 1

    # -- recorded unit timings ----------------------------------------------

    #: Histogram summary fields persisted per unit key.
    TIMING_FIELDS = ("count", "total", "min", "max", "last")

    @property
    def _timings_path(self) -> str:
        return os.path.join(self.directory, "unit_timings.json")

    def load_unit_timings(self) -> Dict[str, Dict[str, float]]:
        """Persisted per-unit wall histograms (empty when none)."""
        try:
            with open(self._timings_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict):
            return {}
        out: Dict[str, Dict[str, float]] = {}
        for key, summary in data.items():
            if not isinstance(summary, dict):
                continue
            if not isinstance(summary.get("last"), (int, float)):
                continue
            out[str(key)] = {
                name: summary[name]
                for name in self.TIMING_FIELDS
                if isinstance(summary.get(name), (int, float))
            }
        return out

    def save_unit_timings(
        self, timings: Dict[str, Dict[str, Any]]
    ) -> None:
        """Merge histogram summaries into the persisted set.

        Counts and totals accumulate across runs, min/max widen, and
        ``last`` — the value longest-first dispatch reads — takes the
        incoming (fresher) observation.  Atomic rewrite, same contract
        as object stores.
        """
        merged = self.load_unit_timings()
        for key, incoming in timings.items():
            if not isinstance(incoming, dict):
                continue
            if not isinstance(incoming.get("last"), (int, float)):
                continue
            prior = merged.get(key)
            if prior is None:
                prior = {
                    "count": 0, "total": 0.0,
                    "min": None, "max": None, "last": None,
                }
            count = int(incoming.get("count", 0) or 0)
            summary = {
                "count": int(prior.get("count", 0) or 0) + count,
                "total": round(
                    float(prior.get("total", 0.0) or 0.0)
                    + float(incoming.get("total", 0.0) or 0.0),
                    6,
                ),
                "last": round(float(incoming["last"]), 6),
            }
            for name, pick in (("min", min), ("max", max)):
                candidates = [
                    float(value)
                    for value in (prior.get(name), incoming.get(name))
                    if isinstance(value, (int, float))
                ]
                summary[name] = (
                    round(pick(candidates), 6) if candidates else None
                )
            merged[key] = summary
        self._atomic_write(
            self._timings_path,
            json.dumps(merged, indent=0, sort_keys=True).encode("utf-8"),
        )

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
