"""Incremental reproduction: the content-addressed result cache.

``reproduce-all`` decomposes every paper artifact into ``(artifact,
series)`` work units that are pure functions of their arguments
(DESIGN.md §7).  That purity is what makes this cache sound: a unit's
payload is fully determined by *what* is being run (artifact + series
key), *how* (the resolved experiment kwargs, scale, seed), and *which
code* runs it (a salt hashed over the package sources).  The store maps
a digest of those inputs to the pickled payload, so a warm re-run
assembles every figure from cached rows without executing a single
simulation — and, because assembly is deterministic, emits bit-identical
digests (DESIGN.md §8).

Public surface::

    from repro.cache import ResultCache, default_cache_dir, unit_key

``ResultCache`` is the on-disk store (hits/misses/stores counted on the
instance); ``unit_key`` derives the content address; the cache
directory defaults to ``.repro-cache`` and is overridden with the
``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``.
"""

from repro.cache.keys import code_salt, sweep_unit_key, unit_key
from repro.cache.store import CacheStats, ResultCache, default_cache_dir

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_salt",
    "default_cache_dir",
    "sweep_unit_key",
    "unit_key",
]
