"""Deterministic discrete-event simulation substrate.

Public surface::

    from repro.sim import Kernel, Event, Process, SimQueue, QUEUE_TIMEOUT
    from repro.sim import RngStreams
    from repro.sim.units import US, MS, SEC, MINUTE
"""

from repro.sim.errors import (
    KernelStopped,
    ProcessKilled,
    SchedulingError,
    SimulationError,
)
from repro.sim.kernel import Event, Kernel, Process
from repro.sim.queue import QUEUE_TIMEOUT, SimQueue
from repro.sim.rng import RngStreams, stable_hash
from repro.sim.units import HOUR, MINUTE, MS, SEC, US, format_duration

__all__ = [
    "Event",
    "HOUR",
    "Kernel",
    "KernelStopped",
    "MINUTE",
    "MS",
    "Process",
    "ProcessKilled",
    "QUEUE_TIMEOUT",
    "RngStreams",
    "SEC",
    "SchedulingError",
    "SimQueue",
    "SimulationError",
    "US",
    "format_duration",
    "stable_hash",
]
