"""Named, reproducible random-number streams.

Every stochastic component in the reproduction (workload arrivals, agent
exploration, fault injection, memory traces) draws from its own named
stream derived from a single experiment seed.  Two properties matter:

* **Reproducibility** — the same (seed, name) pair always yields the same
  stream, so experiments are bit-for-bit repeatable.
* **Isolation** — adding draws to one component never perturbs another,
  because streams are independent ``numpy`` Generators.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "stable_hash"]


def stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (Python's ``hash`` is not)."""
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """Factory of independent named ``numpy.random.Generator`` streams.

    Example::

        streams = RngStreams(seed=42)
        arrivals = streams.get("objectstore.arrivals")
        explore = streams.get("overclock.exploration")
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``.

        Repeated calls with the same name return the *same* generator
        object, so draws continue rather than restart.
        """
        if name not in self._streams:
            sequence = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(stable_hash(name),)
            )
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are all namespaced by ``name``.

        Useful when running several copies of the same component (e.g. one
        Thompson-sampling model per memory region).
        """
        return _PrefixedStreams(self, prefix=name)


class _PrefixedStreams(RngStreams):
    """An :class:`RngStreams` view that prefixes every stream name."""

    def __init__(self, parent: RngStreams, prefix: str) -> None:
        self.seed = parent.seed
        self._parent = parent
        self._prefix = prefix
        self._streams = parent._streams  # share the cache

    def get(self, name: str) -> np.random.Generator:
        return self._parent.get(f"{self._prefix}.{name}")

    def fork(self, name: str) -> "RngStreams":
        return _PrefixedStreams(self._parent, prefix=f"{self._prefix}.{name}")
