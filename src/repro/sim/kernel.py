"""Deterministic discrete-event simulation kernel.

This module is the substrate on which everything else in the reproduction
runs: the SOL runtime's Model and Actuator loops, the simulated hypervisor,
the workloads, and the fault injectors are all *processes* driven by a
single :class:`Kernel`.

Why a simulator instead of OS threads
-------------------------------------
The paper's safety arguments are about the *ordering and staleness* of
events — data collection, model updates, prediction expiry, actuation
deadlines, scheduling delays.  A discrete-event kernel reproduces exactly
those semantics while staying deterministic (same seed → same run), which
real threads cannot offer.  ``DESIGN.md`` §2 documents this substitution.

Process model
-------------
A process is a Python generator.  It interacts with the kernel by yielding:

* an ``int`` — sleep for that many microseconds;
* an :class:`Event` — suspend until the event succeeds; the ``yield``
  expression evaluates to the event's value;
* a :class:`Process` — join: suspend until that process terminates.

Example::

    def blinker(kernel, light):
        while True:
            light.toggle()
            yield 500 * MS

    kernel = Kernel()
    kernel.spawn(blinker(kernel, light), name="blinker")
    kernel.run(until=10 * SEC)

Hot-path design (DESIGN.md §6)
------------------------------
The kernel executes one heap entry per simulated occurrence, so per-entry
constant factors dominate every experiment's wall-clock.  Three choices
keep that constant small:

* heap entries are plain tuples ``(time_us, seq, target, payload)`` —
  resuming a process pushes ``(t, seq, process, send_value)`` directly,
  with no closure allocation;
* :meth:`Kernel.run` drives process generators inline: the common case
  (a process yielding an ``int`` sleep) is a ``gen.send`` plus one
  ``heappush``, with no intermediate method calls;
* timers are first-class :class:`Timer` handles with *lazy deletion*: a
  cancelled timer stays in the heap but is skipped for free when popped,
  so cancellation is O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs import spans as _obs
from repro.sim.errors import (
    KernelStopped,
    ProcessKilled,
    SchedulingError,
    SimulationError,
)

__all__ = ["Event", "Process", "Timer", "Kernel"]

#: Heap-entry payload marking the target as a :class:`Timer` rather than a
#: process resume.  Module-private: never a legitimate Event value.
_TIMER = object()

#: Upper bound on pooled Event objects (see :meth:`Kernel._release_event`).
_EVENT_FREELIST_MAX = 256

#: A simulation time later than any reachable one (run-loop sentinel).
_NEVER = 1 << 200


class Timer:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Kernel.call_at` / :meth:`Kernel.call_later`.
    :meth:`cancel` is amortized O(1): the heap entry is left in place and
    skipped when its timestamp is reached (lazy deletion), and the kernel
    compacts the heap when cancelled entries outnumber live ones.
    Cancelling a timer that already fired — or cancelling twice — is a
    no-op, so callers never need to track firing state themselves.
    """

    __slots__ = ("kernel", "_action", "_value", "_fired")

    def __init__(self, kernel: "Kernel", action: Callable[[], None]) -> None:
        self.kernel = kernel
        # _action is either a plain callable, or an Event to succeed with
        # _value (the allocation-free form used by SimQueue timeouts).
        self._action: Any = action
        self._value: Any = None
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""
        return self._action is None and not self._fired

    @property
    def fired(self) -> bool:
        """Whether the callback has run."""
        return self._fired

    def cancel(self) -> None:
        """Prevent the callback from running (no-op once fired)."""
        if not self._fired and self._action is not None:
            self._action = None
            self.kernel._note_cancelled_timer()

    def _run(self) -> None:
        action = self._action
        if action is not None:
            self._fired = True
            self._action = None
            if action.__class__ is Event:
                action.succeed(self._value)
            else:
                action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "fired" if self._fired
            else "cancelled" if self._action is None
            else "pending"
        )
        return f"<Timer {state}>"


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` transitions it to
    *succeeded* and resumes every waiting process.  Further ``succeed``
    calls are ignored (first writer wins), which makes events safe to use
    for get-with-timeout races in :class:`~repro.sim.queue.SimQueue`.
    """

    __slots__ = (
        "kernel", "name", "_value", "_succeeded", "_waiters", "_callbacks"
    )

    def __init__(self, kernel: "Kernel", name: str = "event") -> None:
        self.kernel = kernel
        self.name = name
        self._value: Any = None
        self._succeeded = False
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def succeeded(self) -> bool:
        """Whether the event has fired."""
        return self._succeeded

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` while pending)."""
        return self._value

    def succeed(self, value: Any = None) -> bool:
        """Fire the event, waking all waiters at the current sim time.

        Returns:
            ``True`` if this call fired the event, ``False`` if the event
            had already fired (the call is then a no-op).
        """
        if self._succeeded:
            return False
        self._succeeded = True
        self._value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            kernel = self.kernel
            if not kernel._stopped:
                now = kernel._now
                heap = kernel._heap
                sequence = kernel._sequence
                for process in waiters:
                    heapq.heappush(
                        heap, (now, next(sequence), process, value)
                    )
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(value)
        return True

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the event fires.

        Runs synchronously inside :meth:`succeed` (same simulated instant).
        If the event has already fired, the callback runs immediately.
        """
        if self._succeeded:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def _add_waiter(self, process: "Process") -> None:
        if self._succeeded:
            self.kernel._schedule_resume(process, self._value)
        else:
            process._waiter_pos = len(self._waiters)
            self._waiters.append(process)

    def _discard_waiter(self, process: "Process") -> None:
        # O(1) swap-remove in any kill order: each process tracks its slot
        # in the waiter list (it can wait on at most one event at a time).
        # The seed's list.remove() made kill cost depend on registration
        # order — O(waiters) per kill for anything but FIFO teardown.
        # Swap-remove is safe because waiter wake order is a kernel
        # implementation detail (resume ties are broken by schedule
        # sequence, not list position).
        waiters = self._waiters
        index = process._waiter_pos
        count = len(waiters)
        if index < count and waiters[index] is process:
            last = waiters.pop()
            if index < count - 1:
                waiters[index] = last
                last._waiter_pos = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "succeeded" if self._succeeded else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A generator-based simulated process.

    Created via :meth:`Kernel.spawn`.  A process terminates when its
    generator returns, raises, or is :meth:`kill`-ed.  Its
    :attr:`completion` event fires with the generator's return value,
    letting other processes ``yield process`` to join it.
    """

    __slots__ = (
        "kernel",
        "name",
        "generator",
        "completion",
        "_alive",
        "_waiting_on",
        "_waiter_pos",
        "_error",
    )

    def __init__(
        self,
        kernel: "Kernel",
        generator: Generator[Any, Any, Any],
        name: str,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.generator = generator
        self.completion = Event(kernel, name=f"{name}.completion")
        self._alive = True
        self._waiting_on: Optional[Event] = None
        self._waiter_pos = 0
        self._error: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        """Whether the process is still running (or waiting)."""
        return self._alive

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that terminated the process, if any."""
        return self._error

    def kill(self) -> None:
        """Forcibly terminate the process.

        :class:`ProcessKilled` is thrown into the generator so ``finally``
        blocks run.  Killing a dead process is a no-op.  This is the
        primitive under the SOL SRE *CleanUp* path.
        """
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        try:
            self.generator.throw(ProcessKilled(f"process {self.name!r} killed"))
        except (ProcessKilled, StopIteration):
            pass
        finally:
            self._finish(value=None)

    # -- kernel-internal ---------------------------------------------------

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one yield, interpreting its request."""
        if not self._alive:
            return
        self._waiting_on = None
        try:
            request = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessKilled:
            self._finish(value=None)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, int):
            if request < 0:
                self._crash(SchedulingError(f"negative sleep: {request}"))
                return
            self.kernel._schedule_resume(self, None, delay=request)
        elif isinstance(request, Event):
            self._waiting_on = request
            request._add_waiter(self)
        elif isinstance(request, Process):
            self._waiting_on = request.completion
            request.completion._add_waiter(self)
        else:
            self._crash(
                SimulationError(
                    f"process {self.name!r} yielded unsupported value "
                    f"{request!r}; expected int, Event, or Process"
                )
            )

    def _crash(self, error: BaseException) -> None:
        try:
            self.generator.throw(error)
        except BaseException as exc:  # noqa: BLE001 - report any failure
            self._error = exc
            self._finish(value=None)
            if not isinstance(exc, (ProcessKilled, StopIteration)):
                raise

    def _finish(self, value: Any) -> None:
        if not self._alive:
            return
        self._alive = False
        self.generator.close()
        self.completion.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Kernel:
    """Event loop: a priority queue of ``(time, seq, target, payload)``.

    Ties at the same timestamp are broken by insertion order, so the
    simulation is fully deterministic.  ``target`` is either a
    :class:`Process` (``payload`` is the value to send into its
    generator) or a :class:`Timer` (``payload`` is the module-private
    ``_TIMER`` sentinel).
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[Tuple[int, int, Any, Any]] = []
        self._sequence = itertools.count()
        self._stopped = False
        self._processes: List[Process] = []
        self._event_freelist: List[Event] = []
        self._cancelled_timers = 0

    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    # -- public API --------------------------------------------------------

    def event(self, name: str = "event") -> Event:
        """A fresh pending :class:`Event` bound to this kernel.

        Events are pooled: hot paths that burn through one event per
        operation (``SimQueue.get``) hand them back via
        :meth:`_release_event`, and this method reuses them instead of
        allocating.
        """
        freelist = self._event_freelist
        if freelist:
            event = freelist.pop()
            event.name = name
            return event
        return Event(self, name=name)

    def spawn(
        self, generator: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Register a generator as a process; it starts at the current time."""
        self._check_running()
        process = Process(self, generator, name)
        self._processes.append(process)
        self._schedule_resume(process, None)
        return process

    def call_at(self, time_us: int, action: Callable[[], None]) -> Timer:
        """Schedule a callback at an absolute simulation time.

        Returns:
            A :class:`Timer` handle; :meth:`Timer.cancel` prevents the
            callback from running.
        """
        self._check_running()
        if time_us < self._now:
            raise SchedulingError(
                f"cannot schedule at {time_us} (now is {self._now})"
            )
        timer = Timer(self, action)
        heapq.heappush(
            self._heap, (time_us, next(self._sequence), timer, _TIMER)
        )
        return timer

    def call_later(self, delay_us: int, action: Callable[[], None]) -> Timer:
        """Schedule a callback ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise SchedulingError(f"negative delay: {delay_us}")
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
        timer = Timer(self, action)
        heapq.heappush(
            self._heap,
            (self._now + delay_us, next(self._sequence), timer, _TIMER),
        )
        return timer

    def succeed_later(self, delay_us: int, event: Event, value: Any) -> Timer:
        """Schedule ``event.succeed(value)`` without a closure allocation.

        Semantically identical to
        ``call_later(delay_us, lambda: event.succeed(value))`` but the
        timer stores the event and value directly — the form the
        ``SimQueue`` timeout hot path uses once per bounded ``get``.
        """
        if delay_us < 0:
            raise SchedulingError(f"negative delay: {delay_us}")
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
        timer = Timer(self, event)
        timer._value = value
        heapq.heappush(
            self._heap,
            (self._now + delay_us, next(self._sequence), timer, _TIMER),
        )
        return timer

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the heap drains or time would pass ``until``.

        Args:
            until: absolute stop time in microseconds.  When provided, the
                clock is advanced to exactly ``until`` on return even if
                the last event fired earlier, so back-to-back ``run`` calls
                compose predictably.

        Returns:
            The simulation time at return.
        """
        # One enabled-check per run() call (not per event): with tracing
        # active the whole drain is wrapped in a ``kernel.run`` span; the
        # event loop itself is never instrumented (DESIGN.md §14).
        if _obs.enabled():
            with _obs.span("kernel.run", cat="sim") as sim_span:
                before_us = self._now
                now_us = self._run_loop(until)
                if sim_span is not None:
                    sim_span.args["advanced_us"] = now_us - before_us
                return now_us
        return self._run_loop(until)

    def _run_loop(self, until: Optional[int] = None) -> int:
        self._check_running()
        # The innermost loop of the whole reproduction: one iteration per
        # simulated occurrence.  The process-resume path is inlined (no
        # _step/_handle_request calls) and the int-sleep continuation is a
        # single heappush of a tuple.  ``step()`` keeps the readable
        # non-inlined equivalent; behavior must match it exactly.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        sequence = self._sequence
        # int-int comparisons in the loop; effectively "never" when no
        # until bound was given.
        until_t = _NEVER if until is None else until
        while heap:
            entry = heappop(heap)
            time_us = entry[0]
            if time_us > until_t:
                heappush(heap, entry)
                break
            self._now = time_us
            target = entry[2]
            if entry[3] is _TIMER:
                action = target._action
                if action is not None:
                    target._fired = True
                    target._action = None
                    if action.__class__ is Event:
                        action.succeed(target._value)
                    else:
                        action()
                else:
                    # Lazily-deleted (cancelled) entry: skipping it here is
                    # the entire cost of cancellation.
                    self._cancelled_timers -= 1
                continue
            # -- inline Process resume ---------------------------------
            if not target._alive:
                continue
            target._waiting_on = None
            try:
                request = target.generator.send(entry[3])
            except StopIteration as stop:
                target._finish(value=stop.value)
                continue
            except ProcessKilled:
                target._finish(value=None)
                continue
            request_type = type(request)
            if request_type is int and request >= 0:
                if not self._stopped:
                    heappush(
                        heap,
                        (time_us + request, next(sequence), target, None),
                    )
            elif request_type is Event:
                if request._succeeded:
                    if not self._stopped:
                        heappush(
                            heap,
                            (
                                time_us,
                                next(sequence),
                                target,
                                request._value,
                            ),
                        )
                else:
                    target._waiting_on = request
                    target._waiter_pos = len(request._waiters)
                    request._waiters.append(target)
            else:
                target._handle_request(request)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns ``False`` if none are pending."""
        self._check_running()
        if not self._heap:
            return False
        time_us, _seq, target, payload = heapq.heappop(self._heap)
        self._now = time_us
        if payload is _TIMER:
            if target._action is None:
                self._cancelled_timers -= 1
            else:
                target._run()
        else:
            target._step(payload)
        return True

    def stop(self) -> None:
        """Halt the kernel: kill all live processes and drop queued events."""
        if self._stopped:
            return
        self._stopped = True
        for process in self._processes:
            if process.alive:
                process.kill()
        self._heap.clear()
        self._cancelled_timers = 0

    @property
    def pending_events(self) -> int:
        """Number of live heap entries (cancelled timers excluded)."""
        return sum(
            1
            for entry in self._heap
            if not (entry[3] is _TIMER and entry[2]._action is None)
        )

    def live_processes(self) -> Iterable[Process]:
        """Yield the processes that are still alive."""
        return (p for p in self._processes if p.alive)

    # -- internals -----------------------------------------------------------

    def _schedule_resume(
        self, process: Process, value: Any, delay: int = 0
    ) -> None:
        if self._stopped:
            return
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._sequence), process, value),
        )

    def _note_cancelled_timer(self) -> None:
        """Bookkeeping for lazy deletion; compacts when dead entries win.

        Compaction rebuilds the heap without cancelled entries once they
        outnumber live ones (amortized O(1) per cancel), so a workload
        that cancels almost every timer — e.g. an Actuator whose
        predictions always beat its queue timeout — keeps the heap at the
        size of its *live* event set.
        """
        self._cancelled_timers += 1
        heap = self._heap
        if (
            self._cancelled_timers > 16
            and self._cancelled_timers * 2 > len(heap)
        ):
            heap[:] = [
                entry
                for entry in heap
                if entry[3] is not _TIMER or entry[2]._action is not None
            ]
            heapq.heapify(heap)
            self._cancelled_timers = 0

    def _release_event(self, event: Event) -> None:
        """Return an event to the pool for reuse by :meth:`event`.

        Caller contract: nothing else holds a reference that will be used
        again — no registered waiters or callbacks may remain reachable.
        ``SimQueue.get`` is the intended caller (its waiter events are
        strictly single-use).
        """
        freelist = self._event_freelist
        if len(freelist) < _EVENT_FREELIST_MAX:
            event._value = None
            event._succeeded = False
            if event._waiters:
                event._waiters.clear()
            if event._callbacks:
                event._callbacks.clear()
            freelist.append(event)

    def _check_running(self) -> None:
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
