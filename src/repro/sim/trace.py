"""Checkpointable event-trace sinks for conformance checking.

The conformance subsystem (DESIGN.md §10) observes a run as an ordered
stream of canonically-encoded event payloads (``bytes``; see
:func:`repro.core.events.encode_event`).  A *sink* is anything with an
``on_event(time_us, payload)`` method; :class:`~repro.core.events.EventLog`
forwards every recorded runtime event to an attached sink, and the
scripted conformance scenarios feed sinks directly.

Two sinks cover both halves of the check-then-debug workflow:

* :class:`CheckpointDigester` — a rolling sha256 over the stream with a
  digest *checkpoint* emitted every ``cadence`` events.  Recording a
  known-answer vector and checking one both use it; comparing two runs'
  checkpoint lists localizes a divergence to one ``cadence``-sized
  window without retaining any event payloads.
* :class:`WindowRecorder` — retains the raw payloads of one index
  window so the bisector can pinpoint the exact first diverging event
  inside a window the digests flagged.

Payloads are length-prefixed before hashing so the digest is injective
over event *boundaries* (``b"ab" + b"c"`` and ``b"a" + b"bc"`` hash
differently).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["Checkpoint", "CheckpointDigester", "WindowRecorder"]


@dataclass(frozen=True)
class Checkpoint:
    """The trace digest after ``index`` events (the last at ``time_us``)."""

    index: int
    time_us: int
    digest: str

    def as_list(self) -> List:
        """JSON-friendly ``[index, time_us, digest]`` form (KAV files)."""
        return [self.index, self.time_us, self.digest]


def _fold(hasher, payload: bytes) -> None:
    hasher.update(len(payload).to_bytes(4, "big"))
    hasher.update(payload)


class CheckpointDigester:
    """Rolling trace digest with a checkpoint every ``cadence`` events.

    Checkpoint ``k`` covers events ``[0, (k + 1) * cadence)`` — each
    digest is cumulative from the start of the run, so two runs whose
    checkpoint ``k`` digests agree are bit-identical through that point.
    """

    def __init__(self, cadence: int = 1000) -> None:
        if cadence < 1:
            raise ValueError(f"cadence must be >= 1, got {cadence}")
        self.cadence = cadence
        self.n_events = 0
        self.checkpoints: List[Checkpoint] = []
        self._hash = hashlib.sha256()
        self._last_time_us = 0

    def on_event(self, time_us: int, payload: bytes) -> None:
        _fold(self._hash, payload)
        self.n_events += 1
        self._last_time_us = time_us
        if self.n_events % self.cadence == 0:
            self.checkpoints.append(
                Checkpoint(self.n_events, time_us, self._hash.hexdigest())
            )

    def terminal(self) -> Checkpoint:
        """The digest over the whole stream (whatever its length)."""
        return Checkpoint(
            self.n_events, self._last_time_us, self._hash.hexdigest()
        )


class WindowRecorder:
    """Retain raw payloads for event indices in ``[start, stop)``.

    ``stop=None`` records to the end of the run.  Events outside the
    window cost one integer compare each — re-running a scenario with a
    narrow window is how the differential runner captures just the
    divergent stretch the checkpoints identified.
    """

    def __init__(self, start: int = 0, stop: Optional[int] = None) -> None:
        if start < 0 or (stop is not None and stop < start):
            raise ValueError(f"bad window [{start}, {stop})")
        self.start = start
        self.stop = stop
        self.n_events = 0
        #: ``(global_index, time_us, payload)`` per in-window event.
        self.events: List[Tuple[int, int, bytes]] = []

    def on_event(self, time_us: int, payload: bytes) -> None:
        index = self.n_events
        self.n_events += 1
        if index >= self.start and (self.stop is None or index < self.stop):
            self.events.append((index, time_us, payload))

    def payloads(self) -> List[bytes]:
        """Just the in-window payloads, in stream order."""
        return [payload for _index, _time, payload in self.events]
