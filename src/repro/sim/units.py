"""Time units for the discrete-event simulator.

The entire simulator uses **integer microseconds** as its time base.  Using
integers keeps event ordering exact and experiments bit-for-bit
reproducible; floating-point seconds only appear at reporting boundaries.

The constants below let call sites write intent-revealing durations::

    from repro.sim.units import MS, SEC

    schedule = Schedule(data_collect_interval=100 * MS, max_epoch_time=1 * SEC)
"""

from __future__ import annotations

#: One microsecond (the base unit).
US: int = 1

#: One millisecond in microseconds.
MS: int = 1_000

#: One second in microseconds.
SEC: int = 1_000_000

#: One minute in microseconds.
MINUTE: int = 60 * SEC

#: One hour in microseconds.
HOUR: int = 60 * MINUTE


def to_seconds(t_us: int) -> float:
    """Convert an integer-microsecond timestamp/duration to float seconds."""
    return t_us / SEC


def from_seconds(t_s: float) -> int:
    """Convert float seconds to integer microseconds (rounded to nearest).

    Raises:
        ValueError: if ``t_s`` is negative.
    """
    if t_s < 0:
        raise ValueError(f"duration must be non-negative, got {t_s}")
    return int(round(t_s * SEC))


def format_duration(t_us: int) -> str:
    """Render a duration human-readably, e.g. ``'2.500s'`` or ``'350ms'``.

    Used by the experiment reporters and the runtime event log.
    """
    if t_us >= SEC:
        return f"{t_us / SEC:.3f}s"
    if t_us >= MS:
        return f"{t_us / MS:.3f}ms"
    return f"{t_us}us"
