"""Bounded message queue with timeout support for simulated processes.

This is the channel between the SOL Model loop (producer of predictions)
and the Actuator loop (consumer).  Its ``get``-with-timeout is what lets
the Actuator remain *non-blocking*: the paper's runtime "waits on the
prediction message queue for up to a maximum wait time" and takes a safe
action on timeout (§4.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.kernel import Event, Kernel

__all__ = ["QUEUE_TIMEOUT", "SimQueue"]


class _Timeout:
    """Sentinel returned by :meth:`SimQueue.get` when the wait expires."""

    def __repr__(self) -> str:
        return "QUEUE_TIMEOUT"


#: Singleton sentinel distinguishing "timed out" from a ``None`` message.
QUEUE_TIMEOUT = _Timeout()


class SimQueue:
    """FIFO queue for inter-process messaging inside the simulator.

    Unlike a real queue there is no locking — the kernel is single
    threaded — but the *temporal* semantics match: a consumer blocked in
    :meth:`get` wakes at the exact simulated instant an item arrives or
    its timeout elapses, whichever is first.

    Args:
        kernel: owning simulation kernel.
        capacity: maximum queued items; ``put`` on a full queue drops the
            *oldest* item.  The SOL prediction queue uses capacity 1 so the
            Actuator always sees the freshest prediction (stale ones are
            superseded, mirroring the paper's freshness-first design).
    """

    def __init__(self, kernel: Kernel, capacity: Optional[int] = None,
                 name: str = "queue") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._dropped = 0
        self._waiter_name = f"{name}.get"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Number of items displaced by capacity overflow (superseded)."""
        return self._dropped

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting consumer if any."""
        while self._getters:
            waiter = self._getters.popleft()
            if waiter.succeed(item):
                return
        self._items.append(item)
        if self.capacity is not None and len(self._items) > self.capacity:
            self._items.popleft()
            self._dropped += 1

    def try_get(self) -> Any:
        """Non-blocking get: the head item, or ``QUEUE_TIMEOUT`` if empty."""
        if self._items:
            return self._items.popleft()
        return QUEUE_TIMEOUT

    def get(self, timeout_us: Optional[int] = None
            ) -> Generator[Any, Any, Any]:
        """Process-side blocking get.

        Usage inside a process generator::

            item = yield from queue.get(timeout_us=5 * SEC)
            if item is QUEUE_TIMEOUT:
                ...take the safe default action...

        Args:
            timeout_us: maximum simulated wait; ``None`` waits forever.

        Returns:
            The dequeued item, or :data:`QUEUE_TIMEOUT` on expiry.
        """
        if self._items:
            return self._items.popleft()
        kernel = self.kernel
        freelist = kernel._event_freelist
        if freelist:  # inlined kernel.event(): one bounded get per wait
            waiter = freelist.pop()
            waiter.name = self._waiter_name
        else:
            waiter = Event(kernel, self._waiter_name)
        self._getters.append(waiter)
        timer = None
        if timeout_us is not None:
            timer = kernel.succeed_later(timeout_us, waiter, QUEUE_TIMEOUT)
        try:
            value = yield waiter
        except BaseException:
            # Killed (crash-restart fault, SRE terminate) mid-wait: the
            # kernel already discarded this process from the waiter
            # event, but the event itself is still registered here — a
            # later put() would pop it, succeed() it, and silently
            # swallow the item a *live* consumer should have received.
            # Deregister and cancel the timeout; the event is NOT
            # returned to the freelist (the timer may still hold it).
            try:
                self._getters.remove(waiter)
            except ValueError:
                pass
            if timer is not None and timer._action is not None:
                timer._action = None
                kernel._note_cancelled_timer()
            raise
        if timer is not None and timer._action is not None:
            # An item won the race: cancel the timeout so it doesn't sit
            # in the kernel heap as a dead entry (the seed kernel leaked
            # one such timer per successful bounded get).  Inlined
            # Timer.cancel(): _action is None exactly when the timer
            # already fired (then cancelling is a no-op anyway).
            timer._action = None
            kernel._note_cancelled_timer()
        if value is QUEUE_TIMEOUT:
            # The timeout won: the waiter is still registered; drop it so
            # a later put() wakes a live consumer instead of a dead event.
            try:
                self._getters.remove(waiter)
            except ValueError:
                pass
        # The waiter is single-use and nothing else can reach it now.
        kernel._release_event(waiter)
        return value

    def clear(self) -> int:
        """Drop all queued items; returns how many were dropped."""
        count = len(self._items)
        self._items.clear()
        return count
