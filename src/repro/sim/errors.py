"""Exception hierarchy for the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or with a bad delay."""


class ProcessKilled(SimulationError):
    """Injected into a process generator when it is forcibly terminated.

    The SOL runtime uses this to implement the SRE *CleanUp* path: killing a
    misbehaving agent raises :class:`ProcessKilled` inside its loops so that
    ``finally`` blocks still run, mirroring best-effort cleanup of a
    crashed/hung agent process in production.
    """


class KernelStopped(SimulationError):
    """Raised when interacting with a kernel after :meth:`Kernel.stop`."""
