"""``python -m repro`` — the reproduction's command-line entry point."""

import sys

from repro.cli import main

sys.exit(main())
