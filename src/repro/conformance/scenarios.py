"""Conformance scenarios and the built-in reference implementations.

A :class:`ScenarioSpec` names one deterministic, observable run.  Two
shapes exist:

* ``family="agent"`` — the production stack end to end: one
  :class:`~repro.fleet.node.FleetNode` (agent × workload × seed) run for
  ``duration_s`` simulated seconds with a trace sink attached to the
  runtime event log.  The production ``SimQueue``/``Event`` machinery is
  welded to the current kernel's internals, so agent scenarios run only
  on ``agent:*`` impls (today: ``agent:current``); their ground truth is
  the committed known-answer vectors, not a second live implementation.
* scripted families (``"kernel"``, ``"ml"``, ``"workloads"``) — a
  deterministic script driving an implementation *namespace* through the
  shared API surface the microbench suites already pin, emitting
  canonical events at every observable result.  These run on both the
  live and the frozen seed namespaces (via :mod:`repro.perf.golden`), so
  the differential runner can replay current-vs-seed and bisect any
  divergence to the first event.

The scripts draw every random decision from seeded generators created
*before* any implementation object exists, so a script run is a pure
function of ``(spec, impl)`` — the property differential replay needs.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.events import encode_event
from repro.fleet.config import FaultPlan, FleetConfig, NodeSpec
from repro.fleet.node import FleetNode
from repro.ml.costsensitive import asymmetric_core_costs
from repro.node.memory import Tier
from repro.perf.golden import KERNEL_IMPLS, ML_IMPLS, WORKLOADS_IMPLS
from repro.platform.taxonomy import NODE_SKUS
from repro.conformance.registry import ReferenceImpl, register

__all__ = [
    "FAMILIES",
    "GOLDEN_FLEET_CONFIGS",
    "SCENARIOS",
    "ScenarioSpec",
    "default_scenarios",
    "get_scenario",
    "make_scripted_impl",
    "run_agent_node",
]

#: Scenario families, in the order the CLI lists them.
FAMILIES: Tuple[str, ...] = ("agent", "kernel", "ml", "workloads")

_SKUS_BY_NAME = {sku.name: sku for sku in NODE_SKUS}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named deterministic conformance run.

    ``duration_s`` applies to agent scenarios (simulated seconds);
    ``steps`` to scripted scenarios (script iterations).  ``cadence`` is
    the checkpoint interval recorded into this scenario's vectors.
    """

    name: str
    family: str
    seed: int = 0
    agent: str = ""
    workload: str = ""
    duration_s: int = 0
    steps: int = 0
    sku: str = "gen5-general"
    cadence: int = 1000

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"family must be one of {FAMILIES}, got {self.family!r}"
            )
        if self.cadence < 1:
            raise ValueError(f"cadence must be >= 1, got {self.cadence}")
        if self.family == "agent":
            if not self.agent or not self.workload or self.duration_s <= 0:
                raise ValueError(
                    "agent scenarios need agent, workload, duration_s"
                )
            if self.sku not in _SKUS_BY_NAME:
                raise ValueError(
                    f"unknown sku {self.sku!r}; have "
                    f"{sorted(_SKUS_BY_NAME)}"
                )
        elif self.steps <= 0:
            raise ValueError("scripted scenarios need steps > 0")

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        return cls(**data)


class _Emit:
    """Feed canonical event payloads to a sink (or nowhere)."""

    def __init__(self, sink: Optional[Any], source: str) -> None:
        self.sink = sink
        self.source = source

    def __call__(self, time_us: int, kind: str, **details: Any) -> None:
        if self.sink is not None:
            self.sink.on_event(
                time_us, encode_event(time_us, kind, self.source, details)
            )


# -- family "agent": the production stack on one fleet node -----------------

def run_agent_node(
    spec: ScenarioSpec,
    sink: Optional[Any],
    prepare: Optional[Callable[[FleetNode], None]] = None,
) -> Dict[str, Any]:
    """Run one production fleet node, tracing its runtime event log.

    ``prepare`` runs after construction, before the simulation — the
    test suite's perturbed agent impl uses it to burn an RNG draw.
    """
    node_spec = NodeSpec(
        node_id=0,
        rack=0,
        sku=_SKUS_BY_NAME[spec.sku],
        agent=spec.agent,
        workload=spec.workload,
        seed=spec.seed,
    )
    node = FleetNode(node_spec, duration_s=spec.duration_s)
    if prepare is not None:
        prepare(node)
    if sink is not None:
        node.agent.runtime.log.attach_tracer(sink)
    result = node.run()
    return {
        "perf_metric": result.perf_metric,
        "perf_value": result.perf_value,
        "slo_windows": result.slo_windows,
        "slo_violations": result.slo_violations,
        "safeguard_trips": dict(result.safeguard_trips),
        "action_histogram": dict(result.action_histogram),
        "stats": dict(result.stats),
    }


# -- family "kernel": scripted producer/consumer/timeout/kill churn ---------

def _run_kernel_script(
    impl: Any, spec: ScenarioSpec, sink: Optional[Any]
) -> Dict[str, Any]:
    """SOL-shaped queue traffic on any kernel namespace.

    Producer/consumer pairs with bounded gets (some won by the item,
    some by the timeout), a ticker process, and a mid-run strided kill
    of parked waiters — the exact machinery the agent runtime leans on,
    script-observable on both the current and the frozen seed kernel.
    """
    emit = _Emit(sink, "kernel-script")
    iters = spec.steps
    rng = random.Random(spec.seed)
    n_pairs = 3
    n_waiters = 16
    # Every random decision is drawn up front: the script is identical
    # for both sides of a differential run by construction.
    put_intervals = [
        [rng.choice((500, 1_000, 2_000, 40_000)) for _ in range(iters)]
        for _ in range(n_pairs)
    ]
    get_timeouts = [
        [rng.choice((800, 5_000, 30_000)) for _ in range(64)]
        for _ in range(n_pairs)
    ]
    tick_delays = [rng.choice((700, 1_300, 2_900)) for _ in range(iters)]
    kill_order = list(range(n_waiters))
    rng.shuffle(kill_order)

    kernel = impl.Kernel()
    timeout_sentinel = impl.QUEUE_TIMEOUT
    counters = {"puts": 0, "gets": 0, "timeouts": 0, "ticks": 0, "kills": 0}

    def producer(queue, pid):
        for i in range(iters):
            queue.put((pid, i))
            counters["puts"] += 1
            emit(kernel.now, "queue.put", pair=pid, i=i)
            yield put_intervals[pid][i]

    def consumer(queue, pid):
        got = 0
        attempts = 0
        while got < iters:
            timeout_us = get_timeouts[pid][attempts % 64]
            attempts += 1
            item = yield from queue.get(timeout_us=timeout_us)
            if item is timeout_sentinel:
                counters["timeouts"] += 1
                emit(kernel.now, "queue.timeout", pair=pid)
            else:
                got += 1
                counters["gets"] += 1
                emit(kernel.now, "queue.got", pair=pid, item=list(item))

    def waiter(event):
        yield event

    def ticker(event, waiters):
        for i in range(iters):
            yield tick_delays[i]
            counters["ticks"] += 1
            emit(kernel.now, "tick", i=i)
            if i == iters // 2:
                # SRE CleanUp: tear down every parked waiter, in a
                # shuffled order (the path that was O(waiters) per kill
                # on the seed kernel).
                for index in kill_order:
                    waiters[index].kill()
                    counters["kills"] += 1
                emit(kernel.now, "killed", count=len(waiters))

    for pid in range(n_pairs):
        queue = impl.SimQueue(kernel, name=f"pair{pid}")
        kernel.spawn(producer(queue, pid), name=f"prod{pid}")
        kernel.spawn(consumer(queue, pid), name=f"cons{pid}")
    shared = kernel.event("conformance.shared")
    waiters = [
        kernel.spawn(waiter(shared), name=f"w{i}") for i in range(n_waiters)
    ]
    kernel.spawn(ticker(shared, waiters), name="ticker")
    kernel.run()
    counters["final_time_us"] = kernel.now
    return counters


# -- family "ml": scripted learning epochs --------------------------------

class _ClockOnly:
    """A ``.now``-only kernel stand-in (the telemetry path needs no more)."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0


def _run_ml_script(
    impl: Any, spec: ScenarioSpec, sink: Optional[Any]
) -> Dict[str, Any]:
    """SmartHarvest-shaped learning epochs on any ML namespace.

    Per epoch: demand change points, feature extraction over a 500-
    sample window, predict + predicted-costs readout, a cost-sensitive
    update, and the telemetry reconstruction — every float the paths
    produce is emitted, so any vectorized-vs-per-class drift shows in
    the first epoch it happens.
    """
    emit = _Emit(sink, "ml-script")
    n_classes, n_features = 9, 9
    rng = np.random.default_rng(spec.seed)
    kernel = _ClockOnly()
    classifier = impl.CostSensitiveClassifier(
        n_classes=n_classes, n_features=n_features
    )
    hypervisor = impl.Hypervisor(
        kernel, n_cores=8, history_horizon_us=1_000_000
    )
    predictions = []
    for epoch in range(spec.steps):
        for _change in range(5):
            kernel.now += 5_000
            hypervisor.set_demand(float(rng.uniform(0.0, 8.0)))
        window = rng.uniform(0.0, 8.0, size=500)
        features = impl.distributional_features(window)
        prediction = int(classifier.predict(features))
        predictions.append(prediction)
        costs = classifier.predicted_costs(features)
        label = int(rng.integers(0, n_classes))
        classifier.update(features, asymmetric_core_costs(label, n_classes))
        usage = hypervisor.sample_usage(
            25_000, 50,
            rng=np.random.default_rng(spec.seed * 7919 + epoch),
            noise_cores=0.05,
        )
        emit(
            kernel.now, "ml.epoch",
            epoch=epoch,
            prediction=prediction,
            label=label,
            features=[float(f) for f in features],
            predicted_costs=[float(c) for c in costs],
            usage_sum=float(np.sum(usage)),
            demand_max=float(hypervisor.max_demand_over(25_000)),
        )
    return {
        "epochs": spec.steps,
        "predictions": predictions,
        "final_time_us": kernel.now,
    }


# -- family "workloads": scripted substrate + workload loops ---------------

def _run_workloads_script(
    impl: Any, spec: ScenarioSpec, sink: Optional[Any]
) -> Dict[str, Any]:
    """Substrate churn under an ObjectStore loop on any workloads namespace.

    The workload ``_run`` generator is stepped directly with the kernel
    clock advanced by each yielded delay (the lockstep bit-identity
    idiom), while the script interleaves agent-style frequency actions,
    memory scans/migrations, and periodic counter readouts.
    """
    from repro.sim import Kernel

    emit = _Emit(sink, "workloads-script")
    n_regions = 64
    drive = np.random.default_rng(spec.seed)
    kernel = Kernel()
    cpu = impl.CpuModel(kernel)
    store = impl.ObjectStoreWorkload(
        kernel, cpu, np.random.default_rng(spec.seed + 1)
    )
    memory = impl.TieredMemory(
        kernel,
        n_regions=n_regions,
        pages_per_region=512,
        rng=np.random.default_rng(spec.seed + 2),
    )
    memory.set_scan_fault_probability(0.05)
    memory.set_rates(drive.uniform(0.0, 5000.0, n_regions))
    generator = store._run()
    delay = next(generator)
    for step in range(spec.steps):
        kernel._now += delay
        roll = drive.random()
        if roll < 0.25:
            freq = float(drive.uniform(1.5, 2.3))
            emit(
                kernel.now, "wl.freq",
                step=step, applied=cpu.set_frequency(freq),
            )
        elif roll < 0.55:
            region = int(drive.integers(0, n_regions))
            scan = memory.scan(region)
            emit(
                kernel.now, "wl.scan",
                step=step, region=region, set_bits=scan.set_bits,
                saturated=scan.saturated, error=scan.error,
            )
        elif roll < 0.65:
            region = int(drive.integers(0, n_regions))
            tier = Tier.REMOTE if drive.random() < 0.5 else Tier.LOCAL
            emit(
                kernel.now, "wl.migrate",
                step=step, region=region,
                moved=memory.migrate(region, tier),
            )
        if step % 10 == 0:
            emit(
                kernel.now, "wl.sample",
                step=step,
                ips=cpu.ips_rate(),
                watts=cpu.instantaneous_watts(),
                n_local=memory.n_local,
                requests=len(store.latency_samples_ms),
            )
        delay = generator.send(None)
    performance = store.performance()
    return {
        "steps": spec.steps,
        "perf_metric": performance.metric,
        "perf_value": float(performance.value),
        "requests": len(store.latency_samples_ms),
        "n_local": int(memory.n_local),
        "final_time_us": kernel.now,
    }


_SCRIPTS: Dict[str, Callable[[Any, ScenarioSpec, Optional[Any]],
                             Dict[str, Any]]] = {
    "kernel": _run_kernel_script,
    "ml": _run_ml_script,
    "workloads": _run_workloads_script,
}


def make_scripted_impl(
    name: str, family: str, namespace: Any, description: str
) -> ReferenceImpl:
    """A :class:`ReferenceImpl` driving ``namespace`` with the family script.

    ``namespace`` may be the namespace itself or a zero-arg factory
    (called per run) — the tests use factories for perturbed variants
    that carry per-run state like an event-countdown trigger.
    """
    script = _SCRIPTS[family]

    def run(spec: ScenarioSpec, sink: Optional[Any]) -> Dict[str, Any]:
        resolved = namespace() if callable(namespace) else namespace
        return script(resolved, spec, sink)

    return ReferenceImpl(
        name=name, family=family, description=description, run=run
    )


def _register_builtins() -> None:
    register(ReferenceImpl(
        name="agent:current",
        family="agent",
        description="production agent stack on the live kernel",
        run=run_agent_node,
    ))
    described = {
        "current": "live optimized implementation",
        "seed": "frozen pre-optimization seed copy",
    }
    for family, impls in (
        ("kernel", KERNEL_IMPLS),
        ("ml", ML_IMPLS),
        ("workloads", WORKLOADS_IMPLS),
    ):
        for variant, namespace in impls.items():
            register(make_scripted_impl(
                f"{family}:{variant}", family, namespace,
                f"{family} {described.get(variant, variant)}",
            ))


_register_builtins()


# -- the scenario catalog ---------------------------------------------------

def _agent_matrix() -> Dict[str, ScenarioSpec]:
    matrix = {
        "overclock": ("Synthetic", "ObjectStore"),
        "harvest": ("image-dnn", "moses"),
        "memory": ("ObjectStore", "SQL"),
    }
    specs: Dict[str, ScenarioSpec] = {}
    for agent, workloads in matrix.items():
        for workload in workloads:
            for seed in (7, 11):
                name = f"agent-{agent}-{workload.lower()}-s{seed}"
                # ~16 traced events per sim-second, so 60 s gives
                # ~1k events and cadence 200 a handful of windows.
                specs[name] = ScenarioSpec(
                    name=name, family="agent", agent=agent,
                    workload=workload, seed=seed, duration_s=60,
                    cadence=200,
                )
    return specs


#: Every named scenario, keyed by name.  The committed KAV corpus
#: covers all of them (all three agent kinds × two workloads × two
#: seeds, plus the three scripted families × two seeds).
SCENARIOS: Dict[str, ScenarioSpec] = {
    **_agent_matrix(),
    **{
        spec.name: spec
        for spec in (
            ScenarioSpec(name="kernel-churn-s3", family="kernel",
                         seed=3, steps=150, cadence=200),
            ScenarioSpec(name="kernel-churn-s9", family="kernel",
                         seed=9, steps=150, cadence=200),
            ScenarioSpec(name="ml-epochs-s3", family="ml",
                         seed=3, steps=120, cadence=100),
            ScenarioSpec(name="ml-epochs-s9", family="ml",
                         seed=9, steps=120, cadence=100),
            ScenarioSpec(name="workloads-objectstore-s3", family="workloads",
                         seed=3, steps=400, cadence=200),
            ScenarioSpec(name="workloads-objectstore-s9", family="workloads",
                         seed=9, steps=400, cadence=200),
        )
    },
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario, with a helpful error on a miss."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: "
            + ", ".join(sorted(SCENARIOS))
        ) from None


def default_scenarios(family: Optional[str] = None) -> Tuple[str, ...]:
    """Scenario names (optionally one family), in sorted order."""
    return tuple(sorted(
        name for name, spec in SCENARIOS.items()
        if family is None or spec.family == family
    ))


#: The golden fleet configurations whose digests are pinned in the
#: corpus (``golden_digests.json``) and in :mod:`repro.perf.baselines`.
#: Moved here from the golden-digest tests so the conformance CLI can
#: re-record them and the tests can assert against the corpus.
GOLDEN_FLEET_CONFIGS: Dict[str, FleetConfig] = {
    "overclock_8x20_seed7": FleetConfig(
        n_nodes=8, agent="overclock", seed=7, duration_s=20
    ),
    "mixed_6x15_seed3": FleetConfig(
        n_nodes=6, agent="mixed", seed=3, duration_s=15
    ),
    "harvest_4x20_seed5_fault": FleetConfig(
        n_nodes=4, agent="harvest", seed=5, duration_s=20, rack_size=2,
        fault=FaultPlan(racks=(0,), start_s=5, duration_s=10,
                        probability=0.9),
    ),
}
