"""Known-answer vectors: committed digests a run must reproduce exactly.

One vector file (``<scenario>.kav.json``) records, for one scenario on
one implementation:

* the event-trace digest at every checkpointed event index (cadence
  events apart; :class:`~repro.sim.trace.CheckpointDigester`),
* the terminal checkpoint (total event count, final event time, whole-
  trace digest), and
* the canonicalized terminal state (counters, safeguard trips, perf —
  every leaf through :func:`~repro.core.events.canonical_scalar`, the
  same canonicalization the pinned experiment digests use).

``repro conformance record`` writes vectors; ``repro conformance
check`` re-runs the scenario and compares.  A mismatch names the first
disagreeing checkpoint, which bounds the divergence to one cadence
window — the differential runner then bisects inside such a window when
two live implementations are available.

The corpus directory also holds ``golden_digests.json``: the pinned
fleet-aggregate and experiment digests (the same values as
:mod:`repro.perf.baselines`, which the golden tests cross-check).

Schema changes bump :data:`SCHEMA_VERSION`; loading a vector written by
any other schema fails with :class:`VectorSchemaError` telling the user
to re-record, never with a silent pass or an opaque ``KeyError``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.conformance import registry
from repro.conformance.scenarios import ScenarioSpec, get_scenario
from repro.core.events import canonical_scalar
from repro.sim.trace import CheckpointDigester

__all__ = [
    "SCHEMA_VERSION",
    "KnownAnswerVector",
    "VectorSchemaError",
    "canonical_state",
    "check_vector",
    "load_vector",
    "record_vector",
    "save_vector",
    "vector_filename",
]

SCHEMA_VERSION = 1

_REQUIRED_KEYS = (
    "schema", "name", "impl", "cadence", "scenario", "checkpoints",
    "terminal", "state",
)


class VectorSchemaError(ValueError):
    """A vector file this build cannot (or must not) interpret."""


def canonical_state(value: Any) -> Any:
    """Canonicalize a terminal-state tree: every leaf via
    :func:`~repro.core.events.canonical_scalar`, containers preserved.

    Leaves become canonical strings, so two states compare equal iff
    they are bit-identical under the repo's one canonicalization — and
    the result is JSON-serializable regardless of NaN/numpy leaves.
    """
    if isinstance(value, dict):
        return {str(k): canonical_state(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_state(v) for v in value]
    return canonical_scalar(value)


@dataclass
class KnownAnswerVector:
    """One scenario's recorded answer on one implementation."""

    name: str
    impl: str
    cadence: int
    scenario: Dict[str, Any]
    checkpoints: List[List]          # [index, time_us, digest] rows
    terminal: List                   # [index, time_us, digest]
    state: Dict[str, Any]
    schema: int = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "name": self.name,
            "impl": self.impl,
            "cadence": self.cadence,
            "scenario": self.scenario,
            "checkpoints": self.checkpoints,
            "terminal": self.terminal,
            "state": self.state,
        }


def vector_filename(scenario_name: str) -> str:
    return f"{scenario_name}.kav.json"


def record_vector(
    scenario_name: str, impl_name: Optional[str] = None
) -> KnownAnswerVector:
    """Run one scenario and capture its known answer.

    ``impl_name`` defaults to the scenario family's ``:current`` impl.
    """
    spec = get_scenario(scenario_name)
    impl_name = impl_name or f"{spec.family}:current"
    impl = registry.get(impl_name)
    if impl.family != spec.family:
        raise ValueError(
            f"impl {impl_name!r} (family {impl.family!r}) cannot run "
            f"scenario {scenario_name!r} (family {spec.family!r})"
        )
    digester = CheckpointDigester(spec.cadence)
    state = impl.run(spec, digester)
    return KnownAnswerVector(
        name=spec.name,
        impl=impl_name,
        cadence=spec.cadence,
        scenario=spec.as_dict(),
        checkpoints=[c.as_list() for c in digester.checkpoints],
        terminal=digester.terminal().as_list(),
        state=canonical_state(state),
    )


def check_vector(vector: KnownAnswerVector) -> List[str]:
    """Re-run a vector's scenario and compare; [] means conformant.

    Each problem string names the first thing that disagreed — a
    checkpoint (index + both digests, bounding the divergence to one
    cadence window), the terminal digest/event-count, or a terminal-
    state key.
    """
    spec = ScenarioSpec.from_dict(vector.scenario)
    impl = registry.get(vector.impl)
    digester = CheckpointDigester(vector.cadence)
    state = impl.run(spec, digester)
    problems: List[str] = []

    got_checkpoints = [c.as_list() for c in digester.checkpoints]
    for i, want in enumerate(vector.checkpoints):
        if i >= len(got_checkpoints):
            problems.append(
                f"{vector.name}: trace ended early — checkpoint "
                f"{want[0]} missing (run produced "
                f"{digester.n_events} events)"
            )
            break
        got = got_checkpoints[i]
        if got != want:
            problems.append(
                f"{vector.name}: first divergence at checkpoint "
                f"index {want[0]} (events "
                f"[{want[0] - vector.cadence}, {want[0]})): recorded "
                f"digest {want[2][:16]}… @t={want[1]}us, got "
                f"{got[2][:16]}… @t={got[1]}us"
            )
            break
    else:
        if len(got_checkpoints) > len(vector.checkpoints):
            extra = got_checkpoints[len(vector.checkpoints)]
            problems.append(
                f"{vector.name}: trace grew — unexpected checkpoint "
                f"at index {extra[0]}"
            )

    got_terminal = digester.terminal().as_list()
    if not problems and got_terminal != vector.terminal:
        problems.append(
            f"{vector.name}: terminal trace mismatch: recorded "
            f"{vector.terminal[0]} events digest "
            f"{vector.terminal[2][:16]}…, got {got_terminal[0]} events "
            f"digest {got_terminal[2][:16]}…"
        )

    got_state = canonical_state(state)
    if got_state != vector.state:
        for key in sorted(set(vector.state) | set(got_state)):
            want_value = vector.state.get(key, "<missing>")
            got_value = got_state.get(key, "<missing>")
            if want_value != got_value:
                problems.append(
                    f"{vector.name}: terminal state {key!r}: recorded "
                    f"{want_value!r}, got {got_value!r}"
                )
    return problems


def save_vector(vector: KnownAnswerVector, directory: str) -> str:
    """Write one vector file (stable formatting); returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, vector_filename(vector.name))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(vector.as_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_vector(path: str) -> KnownAnswerVector:
    """Load and schema-check one vector file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise VectorSchemaError(
            f"{path} is not a valid known-answer vector: {error}"
        ) from None
    if not isinstance(data, dict):
        raise VectorSchemaError(
            f"{path} is not a valid known-answer vector (expected a "
            "JSON object)"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise VectorSchemaError(
            f"{path} is missing required vector keys {missing}; "
            "re-record it with 'repro conformance record'"
        )
    if data["schema"] != SCHEMA_VERSION:
        raise VectorSchemaError(
            f"{path} has vector schema {data['schema']!r} but this "
            f"build reads schema {SCHEMA_VERSION}; re-record it with "
            "'repro conformance record'"
        )
    return KnownAnswerVector(
        name=data["name"],
        impl=data["impl"],
        cadence=data["cadence"],
        scenario=data["scenario"],
        checkpoints=data["checkpoints"],
        terminal=data["terminal"],
        state=data["state"],
        schema=data["schema"],
    )
