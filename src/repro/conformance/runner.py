"""Differential replay: two implementations, one seed, first divergence.

:func:`run_differential` runs the same scenario on two registered
implementations and compares their event traces:

1. Both sides run under a :class:`~repro.sim.trace.CheckpointDigester`.
   Checkpoint digests are cumulative, so the first disagreeing
   checkpoint bounds the divergence to one cadence-sized window (and
   agreeing checkpoints prove bit-identity up to that point).
2. Both sides re-run under a :class:`~repro.sim.trace.WindowRecorder`
   over just that window (runs are pure functions of ``(spec, impl)``,
   so the replay is exact), and the bisector binary-searches the
   captured payloads to the first diverging event index.
3. The report decodes both sides' payloads at that index — event kind,
   sim-time, responsible agent/source, full details — which is the
   debugging payoff: "backend B first differs from backend A at event
   41 273, t=3 071 000 µs, agent node0.overclock, PREDICTION_SENT
   {...} vs {...}".

Traces can also agree completely while terminal states differ (an
untraced counter); the report carries the terminal-state diff for that
case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.conformance import registry
from repro.conformance.bisector import first_divergence
from repro.conformance.scenarios import ScenarioSpec, get_scenario
from repro.conformance.vectors import canonical_state
from repro.core.events import decode_event
from repro.sim.trace import CheckpointDigester, WindowRecorder

__all__ = ["DivergenceReport", "run_differential"]


@dataclass
class DivergenceReport:
    """Outcome of one differential replay."""

    scenario: str
    impl_a: str
    impl_b: str
    equivalent: bool
    n_events: Dict[str, int]
    #: Global index of the first diverging event; ``None`` when the
    #: traces are identical (terminal state may still differ).
    first_diverging_index: Optional[int] = None
    #: Decoded payloads at that index (``None`` on the side whose trace
    #: ended before it).
    event_a: Optional[Dict[str, Any]] = None
    event_b: Optional[Dict[str, Any]] = None
    terminal_equal: bool = True
    terminal_diff: Dict[str, List[Any]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"== conformance diff: {self.scenario} — "
            f"{self.impl_a} vs {self.impl_b} =="
        ]
        if self.equivalent:
            lines.append(
                f"  equivalent: {self.n_events[self.impl_a]} events, "
                "identical trace and terminal state"
            )
            return "\n".join(lines)
        if self.first_diverging_index is not None:
            lines.append(
                f"  first diverging event: index "
                f"{self.first_diverging_index} "
                f"({self.impl_a}: {self.n_events[self.impl_a]} events, "
                f"{self.impl_b}: {self.n_events[self.impl_b]} events)"
            )
            for name, event in (
                (self.impl_a, self.event_a), (self.impl_b, self.event_b),
            ):
                if event is None:
                    lines.append(f"    {name}: <trace ended>")
                else:
                    lines.append(
                        f"    {name}: t={event['time_us']}us "
                        f"{event['agent']} {event['kind']} "
                        f"{event['details']}"
                    )
        if not self.terminal_equal:
            lines.append("  terminal state differences:")
            for key, (value_a, value_b) in sorted(
                self.terminal_diff.items()
            ):
                lines.append(
                    f"    {key}: {self.impl_a}={value_a!r} "
                    f"{self.impl_b}={value_b!r}"
                )
        return "\n".join(lines)


def _diff_states(
    state_a: Dict[str, Any], state_b: Dict[str, Any]
) -> Dict[str, List[Any]]:
    diff: Dict[str, List[Any]] = {}
    for key in sorted(set(state_a) | set(state_b)):
        value_a = state_a.get(key, "<missing>")
        value_b = state_b.get(key, "<missing>")
        if value_a != value_b:
            diff[key] = [value_a, value_b]
    return diff


def run_differential(
    impl_a_name: str,
    impl_b_name: str,
    scenario_name: str,
    cadence: Optional[int] = None,
) -> DivergenceReport:
    """Replay one scenario on two impls and localize any divergence."""
    spec = get_scenario(scenario_name)
    impl_a = registry.get(impl_a_name)
    impl_b = registry.get(impl_b_name)
    for impl in (impl_a, impl_b):
        if impl.family != spec.family:
            raise ValueError(
                f"impl {impl.name!r} (family {impl.family!r}) cannot "
                f"run scenario {scenario_name!r} "
                f"(family {spec.family!r})"
            )
    cadence = cadence or spec.cadence

    digester_a = CheckpointDigester(cadence)
    digester_b = CheckpointDigester(cadence)
    state_a = canonical_state(impl_a.run(spec, digester_a))
    state_b = canonical_state(impl_b.run(spec, digester_b))
    n_events = {
        impl_a_name: digester_a.n_events,
        impl_b_name: digester_b.n_events,
    }
    terminal_diff = _diff_states(state_a, state_b)

    # First disagreeing checkpoint bounds the divergent window.
    window: Optional[tuple] = None
    pairs = zip(digester_a.checkpoints, digester_b.checkpoints)
    for checkpoint_a, checkpoint_b in pairs:
        if checkpoint_a != checkpoint_b:
            window = (checkpoint_a.index - cadence, checkpoint_a.index)
            break
    if window is None:
        terminal_a = digester_a.terminal()
        terminal_b = digester_b.terminal()
        if (terminal_a.index, terminal_a.digest) != (
            terminal_b.index, terminal_b.digest
        ):
            # Tail window past the last agreeing checkpoint (covers
            # unequal lengths and sub-cadence tails).
            agreed = min(
                len(digester_a.checkpoints), len(digester_b.checkpoints)
            ) * cadence
            window = (agreed, max(terminal_a.index, terminal_b.index))

    if window is None:
        equivalent = not terminal_diff
        return DivergenceReport(
            scenario=scenario_name,
            impl_a=impl_a_name,
            impl_b=impl_b_name,
            equivalent=equivalent,
            n_events=n_events,
            terminal_equal=not terminal_diff,
            terminal_diff=terminal_diff,
        )

    # Re-run both sides capturing only the flagged window, then bisect.
    recorder_a = WindowRecorder(window[0], window[1])
    recorder_b = WindowRecorder(window[0], window[1])
    impl_a.run(spec, recorder_a)
    impl_b.run(spec, recorder_b)
    payloads_a = recorder_a.payloads()
    payloads_b = recorder_b.payloads()
    offset = first_divergence(payloads_a, payloads_b)
    if offset is None:
        # The digests flagged this window, so a replay that no longer
        # diverges means the impl is not deterministic — say so rather
        # than reporting a bogus index.
        raise RuntimeError(
            f"scenario {scenario_name!r} diverged at checkpoint level "
            f"but replayed identically in window {window}: "
            f"implementation {impl_a_name!r} or {impl_b_name!r} is "
            "non-deterministic"
        )
    index = window[0] + offset
    event_a = (
        decode_event(payloads_a[offset]) if offset < len(payloads_a) else None
    )
    event_b = (
        decode_event(payloads_b[offset]) if offset < len(payloads_b) else None
    )
    return DivergenceReport(
        scenario=scenario_name,
        impl_a=impl_a_name,
        impl_b=impl_b_name,
        equivalent=False,
        n_events=n_events,
        first_diverging_index=index,
        event_a=event_a,
        event_b=event_b,
        terminal_equal=not terminal_diff,
        terminal_diff=terminal_diff,
    )
