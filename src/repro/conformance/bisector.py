"""Bisect two event streams to the first diverging event.

Given the raw payload lists of one divergent window (captured by
:class:`~repro.sim.trace.WindowRecorder` on both sides), find the first
index at which the streams disagree.  Prefix-equality is monotone —
once two streams diverge they never re-agree *as prefixes* — so the
search is a textbook binary search over "are the first ``m`` events
identical?", answered in O(1) per probe from precomputed cumulative
prefix digests (the same length-prefixed sha256 the checkpoints use).

For a cadence-1000 window that is ~10 digest comparisons instead of a
linear payload scan; more importantly it is the same machinery that
will let a future implementation bisect by *re-execution* (halve the
window, re-run, compare checkpoints) when capturing a window is too
expensive to hold in memory.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

__all__ = ["first_divergence", "prefix_digests"]


def prefix_digests(payloads: Sequence[bytes]) -> List[str]:
    """``out[m]`` = digest of the first ``m`` payloads (``out[0]`` empty)."""
    hasher = hashlib.sha256()
    out = [hasher.hexdigest()]
    for payload in payloads:
        hasher.update(len(payload).to_bytes(4, "big"))
        hasher.update(payload)
        out.append(hasher.hexdigest())
    return out


def first_divergence(
    a: Sequence[bytes], b: Sequence[bytes]
) -> Optional[int]:
    """Index of the first event at which streams ``a`` and ``b`` differ.

    Returns ``None`` iff the streams are identical (same length, same
    payloads).  If one stream is a strict prefix of the other, the
    divergence index is the shorter length (the first event only one
    side produced).
    """
    n = min(len(a), len(b))
    digests_a = prefix_digests(a[:n])
    digests_b = prefix_digests(b[:n])
    if digests_a[n] == digests_b[n]:
        return None if len(a) == len(b) else n
    # Invariant: prefixes of length `lo` agree, prefixes of length `hi`
    # differ.  The first diverging event index is the final `lo`.
    lo, hi = 0, n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if digests_a[mid] == digests_b[mid]:
            lo = mid
        else:
            hi = mid
    return lo
