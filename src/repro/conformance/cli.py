"""``repro conformance``: record, check, diff, list.

Wired into the main CLI by :mod:`repro.cli`::

    repro conformance list
    repro conformance record [--dir DIR] [--scenario NAME ...]
                             [--skip-golden]
    repro conformance check  [--dir DIR] [--scenario NAME ...]
                             [--skip-golden]
    repro conformance diff IMPL_A IMPL_B [--scenario NAME ...]
                           [--cadence N]

``record``/``check`` default to the committed corpus directory;
``check`` exits non-zero on the first conformance problem, ``diff``
exits non-zero when any scenario diverges (after printing the bisected
first-divergence report).
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.conformance import registry
from repro.conformance.corpus import check_corpus, record_corpus
from repro.conformance.runner import run_differential
from repro.conformance.scenarios import (
    SCENARIOS,
    default_scenarios,
    get_scenario,
)

__all__ = ["add_conformance_parser", "cmd_conformance"]

#: Where the committed known-answer corpus lives, relative to the repo
#: root (CI and the Makefile-style workflows run from there).
DEFAULT_CORPUS_DIR = "tests/conformance/vectors"


def add_conformance_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``conformance`` subcommand tree to the main parser."""
    conf = sub.add_parser(
        "conformance",
        help="known-answer vectors + differential replay with "
             "bisect-to-first-divergence",
    )
    conf_sub = conf.add_subparsers(dest="conformance_command", required=True)

    conf_sub.add_parser(
        "list", help="known scenarios and registered reference impls"
    )

    record = conf_sub.add_parser(
        "record", help="(re)record known-answer vectors"
    )
    check = conf_sub.add_parser(
        "check", help="verify the current build against committed vectors"
    )
    for parser in (record, check):
        parser.add_argument(
            "--dir", default=DEFAULT_CORPUS_DIR, metavar="DIR",
            help="corpus directory (default: %(default)s)",
        )
        parser.add_argument(
            "--scenario", nargs="+", default=None, metavar="NAME",
            help="restrict to these scenarios (default: all)",
        )
        parser.add_argument(
            "--skip-golden", action="store_true",
            help="skip the pinned fleet/experiment golden-digest table",
        )

    diff = conf_sub.add_parser(
        "diff",
        help="differential replay of two impls; on divergence, bisect "
             "to the first diverging event",
    )
    diff.add_argument("impl_a", metavar="IMPL_A")
    diff.add_argument("impl_b", metavar="IMPL_B")
    diff.add_argument(
        "--scenario", nargs="+", default=None, metavar="NAME",
        help="scenarios to replay (default: every scenario of the "
             "impls' family)",
    )
    diff.add_argument(
        "--cadence", type=int, default=None,
        help="checkpoint cadence override (events)",
    )


def _cmd_list() -> int:
    print("scenarios:")
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        extent = (
            f"{spec.duration_s}s" if spec.family == "agent"
            else f"{spec.steps} steps"
        )
        print(f"  {name} [{spec.family}] seed={spec.seed} {extent} "
              f"cadence={spec.cadence}")
    print("reference impls:")
    for name in registry.available():
        print(f"  {name}: {registry.get(name).description}")
    return 0


def _validated_scenarios(names: Optional[List[str]]) -> Optional[List[str]]:
    if names is not None:
        for name in names:
            get_scenario(name)  # raises with the known-name list
    return names


def _cmd_record(args: argparse.Namespace) -> int:
    for path in record_corpus(
        args.dir,
        scenarios=_validated_scenarios(args.scenario),
        golden=not args.skip_golden,
    ):
        print(f"recorded {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    problems = check_corpus(
        args.dir,
        scenarios=_validated_scenarios(args.scenario),
        golden=not args.skip_golden,
    )
    if problems:
        for problem in problems:
            print(f"NONCONFORMANT: {problem}")
        return 1
    scenarios = args.scenario or list(default_scenarios())
    golden = "" if args.skip_golden else " + golden digests"
    print(f"[conformance: {len(scenarios)} vectors OK{golden}]")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    impl_a = registry.get(args.impl_a)
    impl_b = registry.get(args.impl_b)
    if impl_a.family != impl_b.family:
        raise SystemExit(
            f"repro: error: cannot diff across families "
            f"({impl_a.name}: {impl_a.family}, "
            f"{impl_b.name}: {impl_b.family})"
        )
    scenarios = _validated_scenarios(args.scenario) or list(
        default_scenarios(impl_a.family)
    )
    diverged = 0
    for name in scenarios:
        report = run_differential(
            args.impl_a, args.impl_b, name, cadence=args.cadence
        )
        print(report.render())
        if not report.equivalent:
            diverged += 1
    if diverged:
        print(f"[conformance diff: {diverged}/{len(scenarios)} "
              "scenarios DIVERGED]")
        return 1
    print(f"[conformance diff: {len(scenarios)} scenarios equivalent]")
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    """Dispatch one parsed ``repro conformance ...`` invocation."""
    try:
        if args.conformance_command == "list":
            return _cmd_list()
        if args.conformance_command == "record":
            return _cmd_record(args)
        if args.conformance_command == "check":
            return _cmd_check(args)
        if args.conformance_command == "diff":
            return _cmd_diff(args)
    except KeyError as error:
        # Unknown scenario/impl names carry their own "known: ..." list.
        raise SystemExit(f"repro: error: {error.args[0]}")
    raise AssertionError(
        f"unhandled conformance command {args.conformance_command!r}"
    )
