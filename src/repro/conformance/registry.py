"""The :class:`ReferenceImpl` registry: named, runnable implementations.

A reference implementation is anything the conformance harness can run
against a :class:`~repro.conformance.scenarios.ScenarioSpec` while
feeding a trace sink: the production agent stack, an implementation
namespace (live or frozen) driven by a scripted scenario, or — in the
tests — a deliberately perturbed variant the bisector must catch.

Names are ``family:variant`` (``"kernel:current"``, ``"ml:seed"``,
``"agent:current"``).  Two impls are differentially comparable iff they
share a *family* — they then accept the same scenarios and emit the
same event vocabulary.  The built-ins register on import of
:mod:`repro.conformance.scenarios` from the shared
:mod:`repro.perf.golden` namespaces, so the bench harness and the
conformance harness can never disagree about what "the frozen seed
implementation" is.  A future SoA backend registers here as
``kernel:soa`` (plus ``agent:soa`` once the agent stack runs on it) and
is immediately checkable against every committed vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ReferenceImpl", "register", "get", "available", "unregister"]

#: ``run(spec, sink) -> terminal state dict``.  ``sink`` is a trace sink
#: (``on_event(time_us, payload)``) or ``None`` for an unobserved run.
Runner = Callable[[Any, Optional[Any]], Dict[str, Any]]


@dataclass(frozen=True)
class ReferenceImpl:
    """One registered implementation the harness can run and compare."""

    name: str
    family: str
    description: str
    run: Runner = field(repr=False)

    def __post_init__(self) -> None:
        if ":" not in self.name:
            raise ValueError(
                f"impl name must be 'family:variant', got {self.name!r}"
            )
        if self.name.split(":", 1)[0] != self.family:
            raise ValueError(
                f"impl name {self.name!r} does not match family "
                f"{self.family!r}"
            )


_REGISTRY: Dict[str, ReferenceImpl] = {}


def register(impl: ReferenceImpl) -> ReferenceImpl:
    """Add ``impl`` to the registry; re-registering a name is an error."""
    if impl.name in _REGISTRY:
        raise ValueError(f"reference impl {impl.name!r} already registered")
    _REGISTRY[impl.name] = impl
    return impl


def unregister(name: str) -> None:
    """Remove one impl (tests register throwaway perturbed variants)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> ReferenceImpl:
    """Look up one impl by name, with a helpful error on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown reference impl {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def available(family: Optional[str] = None) -> List[str]:
    """Registered impl names, optionally filtered to one family."""
    return sorted(
        name
        for name, impl in _REGISTRY.items()
        if family is None or impl.family == family
    )
