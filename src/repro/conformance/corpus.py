"""The committed corpus: vector files plus the golden-digest table.

A corpus directory (``tests/conformance/vectors/`` in this repo) holds
one ``<scenario>.kav.json`` per scenario and one ``golden_digests.json``
pinning the fleet-aggregate and experiment digests.  The golden-digest
tests load their expected values from here (single committed artifact),
and a consistency test asserts the table equals the constants in
:mod:`repro.perf.baselines` that the bench harness embeds — a
legitimate physics change updates both in one PR or fails loudly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.conformance.vectors import (
    SCHEMA_VERSION,
    VectorSchemaError,
    check_vector,
    load_vector,
    record_vector,
    save_vector,
    vector_filename,
)

__all__ = [
    "GOLDEN_FILENAME",
    "check_corpus",
    "check_golden_digests",
    "load_golden_digests",
    "record_corpus",
    "record_golden_digests",
    "save_golden_digests",
]

GOLDEN_FILENAME = "golden_digests.json"


def record_golden_digests() -> Dict[str, Any]:
    """Re-measure the pinned fleet and experiment digests, live."""
    from repro.conformance.scenarios import GOLDEN_FLEET_CONFIGS
    from repro.experiments.common import experiment_digest
    from repro.experiments.driver import FleetDriver, reproduce_all
    from repro.perf.baselines import (
        GOLDEN_EXPERIMENT_DIGESTS,
        GOLDEN_EXPERIMENT_SCALE,
    )

    fleets = {
        name: FleetDriver(config, workers=1).run().digest()
        for name, config in GOLDEN_FLEET_CONFIGS.items()
    }
    runs = reproduce_all(
        only=list(GOLDEN_EXPERIMENT_DIGESTS), scale=GOLDEN_EXPERIMENT_SCALE
    )
    experiments = {
        run.name: experiment_digest(run.result) for run in runs
    }
    return {
        "schema": SCHEMA_VERSION,
        "experiment_scale": GOLDEN_EXPERIMENT_SCALE,
        "fleet": fleets,
        "experiments": experiments,
    }


def save_golden_digests(data: Dict[str, Any], directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, GOLDEN_FILENAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_golden_digests(directory: str) -> Dict[str, Any]:
    """Load and schema-check the golden-digest table of a corpus dir."""
    path = os.path.join(directory, GOLDEN_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise VectorSchemaError(
            f"{path} is not a valid golden-digest table: {error}"
        ) from None
    for key in ("schema", "experiment_scale", "fleet", "experiments"):
        if key not in data:
            raise VectorSchemaError(
                f"{path} is missing required key {key!r}; re-record it "
                "with 'repro conformance record'"
            )
    if data["schema"] != SCHEMA_VERSION:
        raise VectorSchemaError(
            f"{path} has schema {data['schema']!r} but this build reads "
            f"schema {SCHEMA_VERSION}; re-record it with "
            "'repro conformance record'"
        )
    return data


def check_golden_digests(directory: str) -> List[str]:
    """Re-measure and compare against the committed table; [] = ok."""
    want = load_golden_digests(directory)
    got = record_golden_digests()
    problems: List[str] = []
    for section in ("fleet", "experiments"):
        for name in sorted(set(want[section]) | set(got[section])):
            want_digest = want[section].get(name, "<missing>")
            got_digest = got[section].get(name, "<missing>")
            if want_digest != got_digest:
                problems.append(
                    f"golden {section} digest {name!r}: recorded "
                    f"{want_digest[:16]}…, got {got_digest[:16]}…"
                )
    return problems


def record_corpus(
    directory: str,
    scenarios: Optional[List[str]] = None,
    golden: bool = True,
) -> List[str]:
    """(Re)record vectors (and optionally the golden table); paths out."""
    from repro.conformance.scenarios import default_scenarios

    paths = []
    for name in scenarios or default_scenarios():
        paths.append(save_vector(record_vector(name), directory))
    if golden:
        paths.append(save_golden_digests(record_golden_digests(), directory))
    return paths


def check_corpus(
    directory: str,
    scenarios: Optional[List[str]] = None,
    golden: bool = True,
) -> List[str]:
    """Check committed vectors (and the golden table); [] = conformant."""
    from repro.conformance.scenarios import default_scenarios

    problems: List[str] = []
    for name in scenarios or default_scenarios():
        path = os.path.join(directory, vector_filename(name))
        if not os.path.exists(path):
            problems.append(
                f"{name}: no committed vector at {path} "
                "(run 'repro conformance record')"
            )
            continue
        problems.extend(check_vector(load_vector(path)))
    if golden:
        problems.extend(check_golden_digests(directory))
    return problems
