"""Golden-model conformance: known-answer vectors + differential replay.

The subsystem that makes "bit-identical results" a checkable, debuggable
property instead of a scattered end-state assertion (DESIGN.md §10):

* :mod:`~repro.conformance.registry` — named reference implementations
  behind one :class:`~repro.conformance.registry.ReferenceImpl` protocol
  (the frozen ``perf/legacy*`` copies are registered golden models).
* :mod:`~repro.conformance.scenarios` — deterministic runs: production
  agent nodes with traced event logs, and scripted scenarios that drive
  any implementation namespace through the shared API surface.
* :mod:`~repro.conformance.vectors` — the committed known-answer vector
  format (checkpointed trace digests + terminal state).
* :mod:`~repro.conformance.runner` / :mod:`~repro.conformance.bisector`
  — differential replay that localizes any divergence to the exact
  first diverging event.
* :mod:`~repro.conformance.cli` — ``repro conformance
  record|check|diff|list``.

Importing this package registers the built-in implementations.
"""

from repro.conformance import scenarios as _scenarios  # registers built-ins
from repro.conformance.bisector import first_divergence
from repro.conformance.registry import (
    ReferenceImpl,
    available,
    get,
    register,
    unregister,
)
from repro.conformance.runner import DivergenceReport, run_differential
from repro.conformance.scenarios import (
    GOLDEN_FLEET_CONFIGS,
    SCENARIOS,
    ScenarioSpec,
    default_scenarios,
    get_scenario,
    make_scripted_impl,
)
from repro.conformance.vectors import (
    SCHEMA_VERSION,
    KnownAnswerVector,
    VectorSchemaError,
    check_vector,
    load_vector,
    record_vector,
    save_vector,
)

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "GOLDEN_FLEET_CONFIGS",
    "DivergenceReport",
    "KnownAnswerVector",
    "ReferenceImpl",
    "ScenarioSpec",
    "VectorSchemaError",
    "available",
    "check_vector",
    "default_scenarios",
    "first_divergence",
    "get",
    "get_scenario",
    "load_vector",
    "make_scripted_impl",
    "record_vector",
    "register",
    "run_differential",
    "save_vector",
    "unregister",
]
