"""Parallel experiment driver: shard fleets and reproductions over a pool.

Two fan-outs live here (DESIGN.md §5):

* :class:`FleetDriver` shards the nodes of a
  :class:`~repro.fleet.config.FleetConfig` across a ``multiprocessing``
  pool.  Because each node's spec and seed derive only from
  ``(fleet seed, node_id)``, shard shape and completion order cannot
  affect results; aggregates from ``workers=1`` and ``workers=N`` are
  bit-identical (the tests pin this via
  :meth:`~repro.fleet.aggregate.FleetAggregate.digest`).

* :func:`reproduce_all` runs every paper table/figure — serially, or
  sharded below artifact granularity: every decomposed figure
  (see :data:`SERIES_SPECS`) contributes one work unit per independent
  ``(artifact, series)`` scenario, so the full pass scales past the
  twelve artifacts and fig7's nine 1500-sim-second scenarios spread
  across the pool instead of wall-clocking the tail.  Every unit is
  deterministic given its arguments alone, so the parallel pass
  reproduces the serial rows exactly; only wall-clock changes.

Incremental reproduction (DESIGN.md §8) builds on the same unit
purity: with a :class:`~repro.cache.ResultCache`, every unit is looked
up by content address before being executed, executed payloads are
stored as they stream back, and figures assemble from cached rows —
a warm re-run executes zero units and emits bit-identical digests.
Executed unit walls are recorded (and persisted with the cache) and
fed back into longest-first dispatch, replacing the simulated-seconds
estimate for every unit that has been measured before.

Workers are plain processes; each imports :mod:`repro` afresh, so the
pool works both with an installed package and with the ``src/``-path
bootstrap (the worker bootstrap replays this process's ``sys.path``).
The pool itself is *warm*: one process-wide pool is created on first
use and reused by every fleet run, ``reproduce_all`` pass,
``repro bench`` invocation, and robustness-campaign sweep
(:class:`repro.sweep.SweepRunner`) in the process, so repeated runs
stop paying pool spawn + re-import per call (:func:`shared_pool`).

Since DESIGN.md §11 the warm pool is a
:class:`~repro.resilience.pool.SupervisedPool` and every parallel path
dispatches through :func:`~repro.resilience.supervisor.supervised_map`:
units get heartbeat-checked deadlines, failed/timed-out units retry
with deterministic backoff, repeat offenders are quarantined, and the
run degrades to an explicit partial result instead of dying.
"""

from __future__ import annotations

import atexit
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache import ResultCache, unit_key
from repro.experiments.common import ExperimentResult, experiment_digest
from repro.obs import spans as obs
from repro.obs.metrics import HistogramFamily
from repro.fleet.aggregate import FleetAggregate, FleetAggregateBuilder
from repro.fleet.config import FleetConfig
from repro.fleet.node import NodeResult
from repro.fleet.scenario import FleetScenario
from repro.journal.run import RunJournal
from repro.resilience.chaos import ChaosPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.pool import PoolCounters, SupervisedPool
from repro.resilience.quarantine import QuarantineLog
from repro.resilience.supervisor import supervised_map

__all__ = [
    "ARTIFACTS",
    "SERIES_SPECS",
    "ArtifactRun",
    "FleetDriver",
    "artifact_units",
    "reproduce_all",
    "runs_digest",
    "shared_pool",
    "shared_pool_counters",
    "shutdown_shared_pool",
]


# -- warm worker pool --------------------------------------------------------

_shared_pool: Optional[SupervisedPool] = None
_shared_pool_size = 0


def shared_pool(workers: int) -> SupervisedPool:
    """The process-wide warm worker pool, sized for ``workers``.

    Created on first use and reused by every subsequent fleet run,
    ``reproduce_all`` pass, sweep, and bench invocation in this process
    — the spawn + re-import cost is paid once, not per call.  A request
    for more workers than the current pool holds replaces it with a
    larger one; a request for fewer reuses the existing pool (idle
    workers are near-free, and shard/unit results never depend on pool
    size — DESIGN.md §5/§7 — so only wall-clock could differ).

    The pool is a :class:`~repro.resilience.pool.SupervisedPool`
    (DESIGN.md §11): per-worker queues, observable liveness, targeted
    kill + respawn — the substrate :func:`supervised_map` needs to
    retry and quarantine instead of hanging on a dead worker.
    """
    global _shared_pool, _shared_pool_size
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if _shared_pool is not None and _shared_pool_size < workers:
        shutdown_shared_pool()
    if _shared_pool is None:
        _shared_pool = SupervisedPool(
            processes=workers, path=list(sys.path)
        )
        _shared_pool_size = workers
    return _shared_pool


def shared_pool_counters() -> Dict[str, int]:
    """Observability snapshot of the warm pool (all zeros when cold).

    ``size`` is the live pool's worker count (0 with no pool); the rest
    are the pool's cumulative :class:`~repro.resilience.pool.
    PoolCounters`.  Counters reset with the pool — a grow-replacement
    or shutdown starts them over, which is the honest reading (they
    describe *this* pool's lifetime).
    """
    if _shared_pool is None:
        return {"size": 0, **PoolCounters().snapshot()}
    return {"size": _shared_pool.size, **_shared_pool.counters.snapshot()}


def shutdown_shared_pool() -> None:
    """Terminate the warm pool (no-op when none exists)."""
    global _shared_pool, _shared_pool_size
    if _shared_pool is not None:
        _shared_pool.terminate()
        _shared_pool = None
        _shared_pool_size = 0


atexit.register(shutdown_shared_pool)


def _run_shard(
    payload: Tuple[FleetConfig, Tuple[int, ...]]
) -> List[NodeResult]:
    config, node_ids = payload
    return FleetScenario(config).run(node_ids)


class FleetDriver:
    """Run a fleet across worker processes and aggregate the results.

    Args:
        config: the fleet to simulate.
        workers: worker processes; ``1`` (or a one-node fleet) runs
            in-process with no pool at all.
        resilience: retry/backoff/deadline policy for pooled dispatch
            (default :class:`~repro.resilience.policy.RetryPolicy`()).
        quarantine: where poisoned chunks are persisted (optional).
        chaos: fault-injection plan override (tests/harness only; the
            ``REPRO_CHAOS_PLAN`` environment variable otherwise).
        journal: crash-consistent run ledger (DESIGN.md §12).  A
            journaled run is always chunk-granular (even ``workers=1``)
            and uses the *manifest's* frozen chunk plan, replays
            journaled chunks instead of re-simulating them, records
            every dispatch/completion durably, and seals with the
            aggregate digest.
    """

    def __init__(
        self,
        config: FleetConfig,
        workers: int = 1,
        resilience: Optional[RetryPolicy] = None,
        quarantine: Optional[QuarantineLog] = None,
        chaos: Optional[ChaosPlan] = None,
        journal: Optional[RunJournal] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        self.workers = min(workers, config.n_nodes)
        self.resilience = resilience
        self.quarantine = quarantine
        self.chaos = chaos
        self.journal = journal

    def shards(self) -> List[Tuple[int, ...]]:
        """Round-robin node-id shards, one per worker.

        Round-robin (not contiguous chunks) spreads the heterogeneous
        SKU/agent mix evenly, so no worker gets all the expensive
        nodes.  Kept as the coarse partition; :meth:`chunks` subdivides
        it for work-stealing-style dispatch.
        """
        return [
            tuple(range(w, self.config.n_nodes, self.workers))
            for w in range(self.workers)
        ]

    def chunks(self) -> List[Tuple[int, ...]]:
        """Node-id chunks sized for ``imap_unordered`` dispatch.

        Several small chunks per worker (rather than one shard each)
        keep the pool busy when node costs are skewed — a straggler
        holds back only its own chunk, and idle workers pull the
        remaining chunks instead of waiting.  Chunks subdivide the
        round-robin shards, preserving the even SKU/agent spread.
        """
        per_shard = max(1, min(4, self.config.n_nodes // self.workers))
        chunks: List[Tuple[int, ...]] = []
        for shard in self.shards():
            step = max(1, -(-len(shard) // per_shard))
            chunks.extend(
                shard[i:i + step] for i in range(0, len(shard), step)
            )
        return chunks

    def run(self) -> FleetAggregate:
        """Simulate the whole fleet and return the aggregate.

        The parallel path streams each finished chunk into a
        :class:`FleetAggregateBuilder` as it lands (completion order is
        irrelevant — the reduction is order-independent and the builder
        canonicalizes node order), so no per-shard result lists are
        materialized and aggregation overlaps the remaining simulation.
        A single-chunk work list runs inline: a pool cannot overlap
        anything when there is only one unit of work to hand out.
        Multi-chunk runs dispatch through :func:`supervised_map` onto
        the process-wide warm pool (:func:`shared_pool`): chunks whose
        workers die or stall are retried under the driver's
        :class:`RetryPolicy`, and chunks that keep failing are
        quarantined — the aggregate then reports their node ids as
        explicit ``holes`` instead of the run dying.
        """
        with obs.span(
            "pipeline", cat="fleet",
            nodes=self.config.n_nodes, workers=self.workers,
        ):
            return self._run()

    def _run(self) -> FleetAggregate:
        if self.journal is not None:
            return self._run_journaled()
        if self.workers == 1:
            return FleetScenario(self.config).run_fleet()
        chunks = self.chunks()
        builder = FleetAggregateBuilder()
        if len(chunks) <= 1:
            for chunk in chunks:
                builder.add_many(_run_shard((self.config, chunk)))
            return builder.build()
        units: List[Tuple[str, Any]] = []
        nodes_by_unit: Dict[str, Tuple[int, ...]] = {}
        for index, chunk in enumerate(chunks):
            unit_id = f"chunk{index:03d}(n{chunk[0]}+{len(chunk)})"
            units.append((unit_id, (self.config, chunk)))
            nodes_by_unit[unit_id] = chunk
        outcome = supervised_map(
            _run_shard,
            units,
            workers=self.workers,
            pool_factory=shared_pool,
            pool_shutdown=shutdown_shared_pool,
            policy=self.resilience,
            quarantine=self.quarantine,
            chaos=self.chaos,
            on_result=lambda _unit_id, results: builder.add_many(results),
            context="fleet",
        )
        holes = tuple(
            sorted(
                node_id
                for unit_id in outcome.holes
                for node_id in nodes_by_unit[unit_id]
            )
        )
        return builder.build(holes=holes)

    def _run_journaled(self) -> FleetAggregate:
        """Journaled fleet run: replay durable chunks, execute the rest.

        The chunk plan comes from the journal's manifest (frozen at the
        run's first invocation), never re-derived — so a resume under a
        different ``--workers`` executes exactly the un-journaled chunks
        of the original plan.  The run seals with the aggregate digest;
        chunk shape cannot move a node's simulation (DESIGN.md §5), so
        the resumed digest is bit-identical to an uninterrupted run.
        """
        journal = self.journal
        assert journal is not None
        plan = journal.manifest["plan"]["chunks"]
        builder = FleetAggregateBuilder()
        hole_nodes: List[int] = []
        pending: List[Tuple[str, Any]] = []
        nodes_by_unit: Dict[str, Tuple[int, ...]] = {}
        for unit_id in journal.units:
            chunk = tuple(int(n) for n in plan[unit_id])
            nodes_by_unit[unit_id] = chunk
            if journal.is_done(unit_id):
                builder.add_many(journal.replayed[unit_id])
            elif unit_id in journal.replayed_quarantined:
                hole_nodes.extend(chunk)
            else:
                pending.append((unit_id, (self.config, chunk)))

        def handle_result(unit_id: str, results: List[NodeResult]) -> None:
            journal.record_done(unit_id, results, 0.0)
            builder.add_many(results)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                for unit_id, payload in pending:
                    journal.record_dispatched(unit_id, 0)
                    started = time.perf_counter()
                    with obs.span(unit_id, cat="unit", context="fleet"):
                        results = _run_shard(payload)
                    journal.record_done(
                        unit_id, results, time.perf_counter() - started
                    )
                    builder.add_many(results)
            else:
                outcome = supervised_map(
                    _run_shard,
                    pending,
                    workers=self.workers,
                    pool_factory=shared_pool,
                    pool_shutdown=shutdown_shared_pool,
                    policy=self.resilience,
                    quarantine=self.quarantine,
                    chaos=self.chaos,
                    on_dispatch=journal.record_dispatched,
                    on_result=handle_result,
                    on_quarantine=lambda record: journal.record_quarantined(
                        record.unit_id, record.kind
                    ),
                    context="fleet",
                )
                hole_nodes.extend(
                    node_id
                    for unit_id in outcome.holes
                    for node_id in nodes_by_unit[unit_id]
                )
        aggregate = builder.build(holes=tuple(sorted(hole_nodes)))
        journal.seal(aggregate.digest())
        return aggregate


# -- reproduce-all ----------------------------------------------------------

#: Artifact registry: name -> (callable, kwargs builder).  The kwargs
#: builder takes the duration scale (1.0 full, ~0.33 for --quick) and
#: returns the experiment's arguments — the same values
#: ``examples/reproduce_paper.py`` has always used.
ARTIFACT_SPECS: Dict[str, Tuple[str, Callable[[float], Dict[str, Any]]]] = {
    "table1": ("tables.table1_taxonomy", lambda s: {}),
    "table2": ("tables.table2_learning_agents", lambda s: {}),
    "fig1": ("overclock.fig1_overclock_vs_static",
             lambda s: {"seconds": int(900 * s)}),
    "fig2": ("overclock.fig2_invalid_data",
             lambda s: {"seconds": int(600 * s)}),
    "fig3": ("overclock.fig3_broken_model",
             lambda s: {"seconds": int(600 * s)}),
    "fig4": ("overclock.fig4_delayed_predictions",
             lambda s: {"seconds": int(300 * s) + 200}),
    "fig5": ("overclock.fig5_actuator_safeguard",
             lambda s: {"seconds": int(900 * s)}),
    "fig6-left": ("harvest.fig6_invalid_data",
                  lambda s: {"seconds": int(240 * s)}),
    "fig6-middle": ("harvest.fig6_broken_model",
                    lambda s: {"seconds": int(240 * s)}),
    "fig6-right": ("harvest.fig6_delayed_predictions",
                   lambda s: {"seconds": int(240 * s)}),
    "fig7": ("memory.fig7_smartmemory_vs_static",
             lambda s: {"seconds": int(1500 * s)}),
    "fig8": ("memory.fig8_memory_safeguards",
             lambda s: {"seconds": int(920 * s)}),
}

#: Canonical artifact order (paper order).
ARTIFACTS: Tuple[str, ...] = tuple(ARTIFACT_SPECS)

#: Sub-artifact series registry (DESIGN.md §7): artifact -> the dotted
#: paths of its ``series``/``unit``/``assemble`` triple.  Artifacts not
#: listed here (tables, the fig5 time series) are single-kernel and run
#: whole.  Each triple obeys the work-unit contract: ``series(**kwargs)``
#: lists canonical unit keys without simulating anything, ``unit(key,
#: **kwargs)`` runs one key to a small picklable payload seeded only by
#: its arguments, and ``assemble(units, **kwargs)`` derives the rows —
#: so shard shape and completion order cannot affect a single row bit.
SERIES_SPECS: Dict[str, Tuple[str, str, str]] = {
    "fig1": ("overclock.fig1_series", "overclock.fig1_unit",
             "overclock.fig1_assemble"),
    "fig2": ("overclock.fig2_series", "overclock.fig2_unit",
             "overclock.fig2_assemble"),
    "fig3": ("overclock.fig3_series", "overclock.fig3_unit",
             "overclock.fig3_assemble"),
    "fig4": ("overclock.fig4_series", "overclock.fig4_unit",
             "overclock.fig4_assemble"),
    "fig6-left": ("harvest.fig6_invalid_data_series",
                  "harvest.fig6_invalid_data_unit",
                  "harvest.fig6_invalid_data_assemble"),
    "fig6-middle": ("harvest.fig6_broken_model_series",
                    "harvest.fig6_broken_model_unit",
                    "harvest.fig6_broken_model_assemble"),
    "fig6-right": ("harvest.fig6_delayed_predictions_series",
                   "harvest.fig6_delayed_predictions_unit",
                   "harvest.fig6_delayed_predictions_assemble"),
    "fig7": ("memory.fig7_series", "memory.fig7_unit",
             "memory.fig7_assemble"),
    "fig8": ("memory.fig8_series", "memory.fig8_unit",
             "memory.fig8_assemble"),
}


def _resolve(path: str) -> Callable[..., Any]:
    module_name, func_name = path.rsplit(".", 1)
    module = __import__(
        f"repro.experiments.{module_name}", fromlist=[func_name]
    )
    return getattr(module, func_name)


@dataclass
class ArtifactRun:
    """One reproduced artifact plus its wall time.

    ``holes`` lists the quarantined unit ids of a *partial* artifact —
    one whose work units kept failing under supervision and were
    poisoned (DESIGN.md §11).  Empty on every complete run, so the
    field is invisible to the overwhelmingly common case.
    """

    name: str
    result: ExperimentResult
    wall_seconds: float
    holes: Tuple[str, ...] = ()

    @property
    def partial(self) -> bool:
        return bool(self.holes)


def _hole_run(
    name: str, holes: Sequence[str], wall_seconds: float
) -> ArtifactRun:
    """Placeholder run for an artifact with quarantined units.

    The artifact cannot be assembled (its ``assemble`` step needs every
    series payload), so the run degrades to an explicit partial: the
    result names each quarantined unit instead of fabricating rows.
    """
    ordered = sorted(holes)
    result = ExperimentResult(
        name=name,
        title=f"PARTIAL — {len(ordered)} unit(s) quarantined",
        columns=["unit", "status"],
        rows=[{"unit": unit, "status": "quarantined"} for unit in ordered],
        notes=[
            "units exhausted their retry budget and were quarantined; "
            "see the quarantine log for failure records",
        ],
    )
    return ArtifactRun(name, result, wall_seconds, holes=tuple(ordered))


def _run_artifact(payload: Tuple[str, float]) -> ArtifactRun:
    name, scale = payload
    path, kwargs_builder = ARTIFACT_SPECS[name]
    started = time.perf_counter()
    result = _resolve(path)(**kwargs_builder(scale))
    return ArtifactRun(name, result, time.perf_counter() - started)


def _run_series_unit(
    payload: Tuple[str, Optional[str], float]
) -> Tuple[str, Optional[str], Any, float]:
    """Worker entry: one ``(artifact, series)`` unit (or whole artifact)."""
    name, series, scale = payload
    started = time.perf_counter()
    if series is None:
        run = _run_artifact((name, scale))
        return name, None, run.result, run.wall_seconds
    _series_path, unit_path, _assemble_path = SERIES_SPECS[name]
    _path, kwargs_builder = ARTIFACT_SPECS[name]
    result = _resolve(unit_path)(series, **kwargs_builder(scale))
    return name, series, result, time.perf_counter() - started


def artifact_units(name: str, scale: float) -> List[Tuple[str, Optional[str]]]:
    """The ``(artifact, series)`` work units of one artifact.

    Single-kernel artifacts yield one ``(name, None)`` unit; decomposed
    artifacts yield one unit per series key, in canonical key order.
    """
    spec = SERIES_SPECS.get(name)
    if spec is None:
        return [(name, None)]
    series_path, _unit_path, _assemble_path = spec
    _path, kwargs_builder = ARTIFACT_SPECS[name]
    keys = _resolve(series_path)(**kwargs_builder(scale))
    return [(name, key) for key in keys]


def _estimated_unit_cost(name: str, n_units: int, scale: float) -> float:
    """Rough per-unit cost for longest-first dispatch (simulated seconds
    split across the artifact's units; tables get a nominal epsilon).
    Fallback only: measured walls take priority (:func:`_dispatch_costs`)."""
    _path, kwargs_builder = ARTIFACT_SPECS[name]
    seconds = kwargs_builder(scale).get("seconds", 0)
    return max(float(seconds), 1.0) / max(n_units, 1)


# -- incremental reproduction (DESIGN.md §8) ---------------------------------

_CACHE_MISS = object()

#: Measured wall-time histograms per work unit, keyed by
#: ``"artifact/series@scale"`` (DESIGN.md §14).  Session-wide; merged
#: with (and persisted to) the cache's recorded summaries when a cache
#: is in play.  Longest-first dispatch reads each key's ``last``
#: observation — exactly the value the old flat ``unit_walls.json``
#: table held — while count/total/min/max accumulate for ``repro runs
#: show --timing`` and the telemetry sidecar.
_unit_timings = HistogramFamily()


def _wall_key(name: str, series: Optional[str], scale: float) -> str:
    return f"{name}/{series or ''}@{scale!r}"


def _cache_key(name: str, series: Optional[str], scale: float) -> str:
    _path, kwargs_builder = ARTIFACT_SPECS[name]
    return unit_key(name, series, scale, kwargs_builder(scale))


def _record_wall(
    name: str,
    series: Optional[str],
    scale: float,
    wall: float,
    executed: Optional[Dict[str, float]] = None,
) -> None:
    """Record one executed unit's measured wall (the single site both
    the cached-serial and the series-granular paths call)."""
    key = _wall_key(name, series, scale)
    _unit_timings.observe(key, wall)
    if executed is not None:
        executed[key] = wall


def _dispatch_costs(
    payloads: Sequence[Tuple[str, Optional[str], float]],
    units_by_artifact: Dict[str, List[Tuple[str, Optional[str]]]],
    scale: float,
) -> Dict[Tuple[str, Optional[str]], float]:
    """Per-unit dispatch cost: measured wall where known, calibrated
    estimate otherwise.

    Measured walls (seconds) and the simulated-seconds heuristic live on
    different scales, so when both appear in one work list the heuristic
    is multiplied by the median measured-to-estimated ratio of the units
    that have both — keeping longest-first meaningful for the not-yet-
    measured remainder.  Purely cosmetic for results (dispatch order
    cannot affect a row bit); it only shapes the makespan.
    """
    measured: Dict[Tuple[str, Optional[str]], float] = {}
    estimated: Dict[Tuple[str, Optional[str]], float] = {}
    ratios: List[float] = []
    for name, series, _scale in payloads:
        estimate = _estimated_unit_cost(
            name, len(units_by_artifact[name]), scale
        )
        estimated[(name, series)] = estimate
        wall = _unit_timings.last(_wall_key(name, series, scale))
        if wall is not None:
            measured[(name, series)] = wall
            ratios.append(wall / estimate)
    if not ratios:
        return estimated
    ratios.sort()
    calibration = ratios[len(ratios) // 2]
    return {
        unit: measured.get(unit, estimate * calibration)
        for unit, estimate in estimated.items()
    }


def _load_recorded_walls(cache: Optional[ResultCache]) -> None:
    if cache is not None:
        # Session-recorded observations win over persisted summaries
        # (the old ``setdefault`` merge): the family keeps its own
        # ``last`` for keys measured this session.
        _unit_timings.absorb(cache.load_unit_timings())


def _persist_recorded_walls(
    cache: Optional[ResultCache], executed: Dict[str, float]
) -> None:
    if cache is not None and executed:
        cache.save_unit_timings(_unit_timings.export(executed))


def _assemble_artifact(
    name: str,
    scale: float,
    units: Dict[Optional[str], Any],
    wall_seconds: float,
) -> ArtifactRun:
    if None in units:  # whole-artifact unit: the result *is* the payload
        return ArtifactRun(name, units[None], wall_seconds)
    _series_path, _unit_path, assemble_path = SERIES_SPECS[name]
    _path, kwargs_builder = ARTIFACT_SPECS[name]
    result = _resolve(assemble_path)(units, **kwargs_builder(scale))
    return ArtifactRun(name, result, wall_seconds)


def runs_digest(runs: Sequence[ArtifactRun]) -> str:
    """One digest over a whole reproduce pass: names, row digests, holes.

    Canonical (sorted by artifact name) and wall-independent, so an
    interrupted-then-resumed pass seals with the same digest as an
    uninterrupted one iff every artifact's rows agree bit-for-bit.
    """
    import hashlib
    import json

    payload = json.dumps(
        [
            {
                "name": run.name,
                "digest": experiment_digest(run.result),
                "holes": list(run.holes),
            }
            for run in sorted(runs, key=lambda r: r.name)
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def reproduce_all(
    parallel: bool = False,
    workers: Optional[int] = None,
    scale: float = 1.0,
    only: Optional[Sequence[str]] = None,
    on_result: Optional[Callable[[ArtifactRun], None]] = None,
    granularity: str = "series",
    cache: Optional[ResultCache] = None,
    resilience: Optional[RetryPolicy] = None,
    quarantine: Optional[QuarantineLog] = None,
    chaos: Optional[ChaosPlan] = None,
    journal: Optional[RunJournal] = None,
) -> List[ArtifactRun]:
    """Regenerate every table and figure, serially or sharded.

    Args:
        parallel: shard the pass across worker processes.
        workers: pool size (default: CPU count, capped at the number of
            work units).
        scale: duration scale; ``~0.33`` is the ``--quick`` pass.
        only: restrict to these artifact names (canonical order kept).
        on_result: called with each run as soon as it is available, in
            canonical order — lets callers stream output during a
            minutes-long full pass instead of printing at the end.
        granularity: ``"series"`` (default) dispatches independent
            ``(artifact, series)`` units so the pass scales past the
            twelve artifacts and fig7's nine scenarios no longer
            serialize the tail; ``"artifact"`` keeps the pre-sharding
            one-artifact-per-unit behavior (the bench baseline).
        cache: consult (and fill) this result cache per work unit —
            unchanged units load instead of executing, so a warm re-run
            assembles every figure without running a single simulation,
            bit-identically (DESIGN.md §8).  ``None`` disables caching.
        resilience: retry/backoff/deadline policy for pooled dispatch
            (default :class:`RetryPolicy`(); DESIGN.md §11).
        quarantine: where poisoned units are persisted (optional).
        chaos: fault-injection plan override (tests/harness only).
        journal: crash-consistent run ledger (DESIGN.md §12).  A
            journaled pass is always series-granular (``granularity``
            must stay ``"series"``): journaled units replay instead of
            executing (or probing the cache), completions are recorded
            durably, and the pass seals with :func:`runs_digest`.

    Returns:
        Runs in canonical (paper) order regardless of completion order.
        In parallel series mode (and any cached pass) each run's
        ``wall_seconds`` is the *sum* of its executed units' walls (its
        CPU cost — near zero on a warm cache), not its elapsed span.
    """
    with obs.span(
        "pipeline", cat="reproduce",
        scale=scale, parallel=parallel, granularity=granularity,
    ):
        return _reproduce_all_impl(
            parallel, workers, scale, only, on_result, granularity,
            cache, resilience, quarantine, chaos, journal,
        )


def _reproduce_all_impl(
    parallel: bool,
    workers: Optional[int],
    scale: float,
    only: Optional[Sequence[str]],
    on_result: Optional[Callable[[ArtifactRun], None]],
    granularity: str,
    cache: Optional[ResultCache],
    resilience: Optional[RetryPolicy],
    quarantine: Optional[QuarantineLog],
    chaos: Optional[ChaosPlan],
    journal: Optional[RunJournal],
) -> List[ArtifactRun]:
    if granularity not in ("series", "artifact"):
        raise ValueError(f"unknown granularity {granularity!r}")
    if journal is not None and granularity != "series":
        raise ValueError(
            "journaled reproduce passes are series-granular; "
            "use granularity='series' or journal=None"
        )
    names = [n for n in ARTIFACTS if only is None or n in only]
    unknown = set(only or ()) - set(ARTIFACTS)
    if unknown:
        raise ValueError(f"unknown artifacts: {sorted(unknown)}")
    _load_recorded_walls(cache)
    if journal is not None:
        # Journaled passes always go through the series-granular path —
        # the journal's unit list *is* the series expansion, and the
        # inline mode keeps serial passes pool-free.
        return _reproduce_series_granular(
            names, workers, scale, on_result, cache,
            resilience, quarantine, chaos,
            journal=journal, inline=not parallel,
        )
    # Series granularity can shard a *single* artifact (fig7 alone is
    # nine units), so the serial fallback keys on the work-unit count,
    # not the artifact count.
    shardable = len(names) > 1 or (
        granularity == "series"
        and len(names) == 1
        and len(artifact_units(names[0], scale)) > 1
    )
    runs: List[ArtifactRun] = []
    if not parallel or not shardable:
        executed: Dict[str, float] = {}
        for name in names:
            if cache is None:
                runs.append(_run_artifact((name, scale)))
            else:
                runs.append(
                    _run_artifact_cached(name, scale, cache, executed)
                )
            if on_result is not None:
                on_result(runs[-1])
        _persist_recorded_walls(cache, executed)
        return runs
    if granularity == "artifact":
        return _reproduce_artifact_granular(
            names, workers, scale, on_result, cache,
            resilience, quarantine, chaos,
        )
    return _reproduce_series_granular(
        names, workers, scale, on_result, cache,
        resilience, quarantine, chaos,
    )


def _run_artifact_cached(
    name: str,
    scale: float,
    cache: ResultCache,
    executed: Dict[str, float],
) -> ArtifactRun:
    """One artifact through the cache: load hit units, run+store misses."""
    collected: Dict[Optional[str], Any] = {}
    wall = 0.0
    for _name, series in artifact_units(name, scale):
        key = _cache_key(name, series, scale)
        payload = cache.get(key, _CACHE_MISS)
        if payload is _CACHE_MISS:
            with obs.span(
                _wall_key(name, series, scale), cat="unit",
                context="reproduce",
            ):
                _n, _s, payload, unit_wall = _run_series_unit(
                    (name, series, scale)
                )
            cache.put(key, payload)
            wall += unit_wall
            _record_wall(name, series, scale, unit_wall, executed)
        collected[series] = payload
    return _assemble_artifact(name, scale, collected, wall)


#: Key namespace marker for whole-artifact payloads cached by the
#: artifact-granular path (distinct from the series-unit key space).
_WHOLE_ARTIFACT = "::artifact::"


def _reproduce_artifact_granular(
    names: List[str],
    workers: Optional[int],
    scale: float,
    on_result: Optional[Callable[[ArtifactRun], None]],
    cache: Optional[ResultCache] = None,
    resilience: Optional[RetryPolicy] = None,
    quarantine: Optional[QuarantineLog] = None,
    chaos: Optional[ChaosPlan] = None,
) -> List[ArtifactRun]:
    """One artifact per work unit (the pre-sharding parallel path)."""
    pending: List[Tuple[str, float]] = []
    completed: Dict[str, ArtifactRun] = {}
    for name in names:
        if cache is not None:
            payload = cache.get(
                _cache_key(name, _WHOLE_ARTIFACT, scale), _CACHE_MISS
            )
            if payload is not _CACHE_MISS:
                completed[name] = ArtifactRun(name, payload, 0.0)
                continue
        pending.append((name, scale))
    runs: List[ArtifactRun] = []
    emit_index = 0

    def emit_ready() -> None:
        nonlocal emit_index
        while emit_index < len(names) and names[emit_index] in completed:
            ready = completed.pop(names[emit_index])
            emit_index += 1
            runs.append(ready)
            if on_result is not None:
                on_result(ready)

    def handle_result(_unit_id: str, run: ArtifactRun) -> None:
        if cache is not None:
            cache.put(
                _cache_key(run.name, _WHOLE_ARTIFACT, scale), run.result
            )
        completed[run.name] = run
        emit_ready()

    def handle_quarantine(record) -> None:
        name = record.unit_id.split(":", 1)[1]
        completed[name] = _hole_run(name, [record.unit_id], 0.0)
        emit_ready()

    emit_ready()
    if pending:
        # Supervised, unordered dispatch so a straggler (fig7 dominates
        # the full pass) never idles the pool behind canonical order;
        # completed runs are buffered and re-emitted in canonical order
        # as their turn comes, keeping the on_result streaming contract.
        supervised_map(
            _run_artifact,
            [(f"artifact:{name}", (name, scale)) for name, _ in pending],
            workers=min(workers or os.cpu_count() or 1, len(pending)),
            pool_factory=shared_pool,
            pool_shutdown=shutdown_shared_pool,
            policy=resilience,
            quarantine=quarantine,
            chaos=chaos,
            on_result=handle_result,
            on_quarantine=handle_quarantine,
            context="reproduce",
        )
    return runs


def _reproduce_series_granular(
    names: List[str],
    workers: Optional[int],
    scale: float,
    on_result: Optional[Callable[[ArtifactRun], None]],
    cache: Optional[ResultCache] = None,
    resilience: Optional[RetryPolicy] = None,
    quarantine: Optional[QuarantineLog] = None,
    chaos: Optional[ChaosPlan] = None,
    journal: Optional[RunJournal] = None,
    inline: bool = False,
) -> List[ArtifactRun]:
    """Sub-artifact sharding: one (artifact, series) scenario per unit.

    With a ``journal``, replayed units join their artifact before the
    cache is even probed, every completion (cache hits included) is
    recorded durably, and ``inline=True`` executes the remaining units
    serially in-process — the journaled serial mode, pool-free.
    """
    units_by_artifact = {name: artifact_units(name, scale) for name in names}
    collected: Dict[str, Dict[Optional[str], Any]] = {n: {} for n in names}
    walls: Dict[str, float] = {n: 0.0 for n in names}
    remaining: Dict[str, int] = {
        n: len(units_by_artifact[n]) for n in names
    }
    holes_by_artifact: Dict[str, List[str]] = {n: [] for n in names}
    executed_walls: Dict[str, float] = {}
    # Journal replay first, then the cache probe: hit units join their
    # artifact immediately; only the misses are dispatched.  A fully-
    # warm (or fully-journaled) pass therefore never touches the pool.
    payloads: List[Tuple[str, Optional[str], float]] = []
    for name in names:
        for _name, series in units_by_artifact[name]:
            unit_id = _wall_key(name, series, scale)
            if journal is not None and journal.is_done(unit_id):
                collected[name][series] = journal.replayed[unit_id]
                remaining[name] -= 1
                continue
            if (
                journal is not None
                and unit_id in journal.replayed_quarantined
            ):
                holes_by_artifact[name].append(unit_id)
                remaining[name] -= 1
                continue
            payload = (
                _CACHE_MISS if cache is None
                else cache.get(_cache_key(name, series, scale), _CACHE_MISS)
            )
            if payload is _CACHE_MISS:
                payloads.append((name, series, scale))
            else:
                collected[name][series] = payload
                remaining[name] -= 1
                if journal is not None:
                    journal.record_done(
                        unit_id, payload, 0.0, executed=False
                    )
    # Longest-first dispatch keeps the 1500-sim-second fig7 scenarios
    # from landing last and re-creating the straggler tail the
    # decomposition exists to remove.  Costs are measured unit walls
    # where available (recorded this session or persisted with the
    # cache), the calibrated simulated-seconds estimate otherwise.  The
    # sort is deterministic (cost, then canonical order) and cannot
    # affect results, only wall time.
    costs = _dispatch_costs(payloads, units_by_artifact, scale)
    order = {name: i for i, name in enumerate(names)}
    payloads.sort(
        key=lambda p: (-costs[(p[0], p[1])], order[p[0]])
    )
    assembled: Dict[str, ArtifactRun] = {}
    runs: List[ArtifactRun] = []
    emit_index = 0

    def finish_artifact(name: str) -> None:
        holes = holes_by_artifact[name]
        if holes:
            # At least one unit was poisoned: the artifact cannot be
            # assembled.  Degrade to an explicit partial instead of
            # dying (DESIGN.md §11).
            collected.pop(name, None)
            assembled[name] = _hole_run(name, holes, walls[name])
        else:
            assembled[name] = _assemble_artifact(
                name, scale, collected.pop(name), walls[name]
            )

    def emit_ready() -> None:
        nonlocal emit_index
        while emit_index < len(names) and names[emit_index] in assembled:
            ready = assembled.pop(names[emit_index])
            emit_index += 1
            runs.append(ready)
            if on_result is not None:
                on_result(ready)

    for name in names:  # artifacts fully served from cache
        if remaining[name] == 0:
            finish_artifact(name)
    emit_ready()
    if payloads:

        def handle_result(
            unit_id: str,
            unit_result: Tuple[str, Optional[str], Any, float],
        ) -> None:
            name, series, payload, wall = unit_result
            if cache is not None:
                cache.put(_cache_key(name, series, scale), payload)
            if journal is not None:
                # After the cache write: a kill between the two leaves
                # a cached-but-unjournaled unit, which a resume simply
                # re-loads from the cache (never re-executes twice).
                journal.record_done(unit_id, payload, wall)
            _record_wall(name, series, scale, wall, executed_walls)
            collected[name][series] = payload
            walls[name] += wall
            remaining[name] -= 1
            if remaining[name] == 0:
                finish_artifact(name)
            emit_ready()

        unit_coords = {
            _wall_key(name, series, scale): name
            for name, series, _scale in payloads
        }

        def handle_quarantine(record) -> None:
            if journal is not None:
                journal.record_quarantined(record.unit_id, record.kind)
            name = unit_coords[record.unit_id]
            holes_by_artifact[name].append(record.unit_id)
            remaining[name] -= 1
            if remaining[name] == 0:
                finish_artifact(name)
            emit_ready()

        try:
            if inline:
                for name, series, _scale in payloads:
                    unit_id = _wall_key(name, series, scale)
                    if journal is not None:
                        journal.record_dispatched(unit_id, 0)
                    with obs.span(
                        unit_id, cat="unit", context="reproduce"
                    ):
                        unit_result = _run_series_unit(
                            (name, series, scale)
                        )
                    handle_result(unit_id, unit_result)
            else:
                supervised_map(
                    _run_series_unit,
                    [
                        (
                            _wall_key(name, series, scale),
                            (name, series, scale),
                        )
                        for name, series, _scale in payloads
                    ],
                    workers=min(
                        workers or os.cpu_count() or 1, len(payloads)
                    ),
                    pool_factory=shared_pool,
                    pool_shutdown=shutdown_shared_pool,
                    policy=resilience,
                    quarantine=quarantine,
                    chaos=chaos,
                    on_dispatch=(
                        journal.record_dispatched
                        if journal is not None else None
                    ),
                    on_result=handle_result,
                    on_quarantine=handle_quarantine,
                    context="reproduce",
                )
        except BaseException:
            # Completed units are already cached; keep their walls too
            # (supervised_map has already reset the shared pool).
            _persist_recorded_walls(cache, executed_walls)
            raise
    _persist_recorded_walls(cache, executed_walls)
    if journal is not None:
        journal.seal(runs_digest(runs))
    return runs
