"""Tables 1 and 2 reproductions (characterization data)."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.platform.taxonomy import (
    TABLE1_TAXONOMY,
    TABLE2_LEARNING_AGENTS,
    learning_beneficiary_fraction,
)

__all__ = ["table1_taxonomy", "table2_learning_agents"]


def table1_taxonomy() -> ExperimentResult:
    """Table 1: taxonomy of production node agents."""
    result = ExperimentResult(
        name="table1",
        title="Taxonomy of production agents",
        columns=["class", "count", "description", "examples", "benefit"],
    )
    for cls in TABLE1_TAXONOMY:
        result.add_row(
            **{
                "class": cls.name,
                "count": cls.count,
                "description": cls.description,
                "examples": cls.examples,
                "benefit": "Yes" if cls.benefits_from_learning else "No",
            }
        )
    result.notes.append(
        f"agents that could benefit from learning: "
        f"{learning_beneficiary_fraction():.0%} (paper: 35%)"
    )
    return result


def table2_learning_agents() -> ExperimentResult:
    """Table 2: examples of on-node learning resource control agents."""
    result = ExperimentResult(
        name="table2",
        title="On-node learning resource control agents",
        columns=["agent", "goal", "action", "frequency", "inputs", "model"],
    )
    for agent in TABLE2_LEARNING_AGENTS:
        result.add_row(
            agent=agent.name,
            goal=agent.goal,
            action=agent.action,
            frequency=agent.frequency,
            inputs=agent.inputs,
            model=agent.model,
        )
    return result
