"""SmartHarvest experiments: the three panels of Figure 6.

Each panel is decomposed into independent series units (DESIGN.md §7):
per workload, a no-agent baseline run plus one run per safeguard
variant.  ``*_series``/``*_unit``/``*_assemble`` implement the
sub-artifact sharding contract; the serial entry points run the same
units in order, so parallel passes are row-identical by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, HarvestScenario
from repro.node.faults import DelayInjector, ModelBreaker, stuck_usage_injector
from repro.sim.units import SEC
from repro.workloads.tailbench import IMAGE_DNN, MOSES, TailBenchWorkload

__all__ = [
    "TAILBENCH_WORKLOADS",
    "fig6_invalid_data",
    "fig6_broken_model",
    "fig6_delayed_predictions",
]


def _workload_factory(profile):
    def factory(kernel, hypervisor, streams):
        return TailBenchWorkload(
            kernel, hypervisor, streams.get("workload"), profile
        )

    return factory


#: The §6.3 primary-VM workloads, by paper name.
TAILBENCH_WORKLOADS: Dict[str, Callable] = {
    "image-dnn": _workload_factory(IMAGE_DNN),
    "moses": _workload_factory(MOSES),
}


def _baseline_p99(name: str, seconds: int, seed: int) -> float:
    scenario = HarvestScenario.build(
        TAILBENCH_WORKLOADS[name], seed=seed, agent=False
    ).run(seconds)
    return scenario.workload.performance().value


def _series(variants) -> List[str]:
    return [
        f"{workload}/{variant}"
        for workload in TAILBENCH_WORKLOADS
        for variant in ("baseline",) + tuple(variants)
    ]


# -- Figure 6 (left) ---------------------------------------------------------


def fig6_invalid_data_series(**_kwargs: Any) -> List[str]:
    return _series(("on", "off"))


def fig6_invalid_data_unit(
    series: str, seconds: int = 240, seed: int = 0, corruption: float = 0.9
) -> Dict[str, Any]:
    """One run: no-agent baseline, or corrupted-telemetry agent run."""
    workload_name, variant = series.split("/")
    if variant == "baseline":
        return {"p99": _baseline_p99(workload_name, seconds, seed)}
    policy = (
        SafeguardPolicy.all_enabled()
        if variant == "on"
        else SafeguardPolicy.none_enabled()
    )
    scenario = HarvestScenario.build(
        TAILBENCH_WORKLOADS[workload_name], seed=seed, policy=policy
    )
    scenario.agent.model.injectors.append(
        stuck_usage_injector(scenario.streams.get("fault"), corruption)
    )
    scenario.run(seconds)
    return {
        "p99": scenario.workload.performance().value,
        "harvested_core_s": scenario.harvested_core_seconds(),
    }


def fig6_invalid_data_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 240,
    seed: int = 0,
    corruption: float = 0.9,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6-left",
        title=f"Bad usage telemetry ({corruption:.0%} corrupt reads): "
              "P99 increase vs no harvesting",
        columns=["workload", "safeguards", "p99_increase_pct",
                 "harvested_core_s"],
    )
    for workload_name in TAILBENCH_WORKLOADS:
        baseline = units[f"{workload_name}/baseline"]["p99"]
        for variant in ("on", "off"):
            cell = units[f"{workload_name}/{variant}"]
            result.add_row(
                workload=workload_name,
                safeguards=variant,
                p99_increase_pct=100.0 * (cell["p99"] / baseline - 1.0),
                harvested_core_s=cell["harvested_core_s"],
            )
    return result


def fig6_invalid_data(
    seconds: int = 240, seed: int = 0, corruption: float = 0.9
) -> ExperimentResult:
    """Figure 6 (left): bad usage telemetry vs the validation safeguard.

    A misconfigured hypervisor counter returns its error sentinel for
    ``corruption`` of reads.  P99 increase is relative to a no-agent
    run.  (Substitution note: the paper's natural full-utilization
    censoring self-corrects under our actuator's slow-borrow/fast-return
    design, so the bad data is injected at the counter boundary instead;
    the same ``ValidateData`` safeguard is exercised.)
    """
    units = {
        key: fig6_invalid_data_unit(
            key, seconds=seconds, seed=seed, corruption=corruption
        )
        for key in fig6_invalid_data_series()
    }
    return fig6_invalid_data_assemble(
        units, seconds=seconds, seed=seed, corruption=corruption
    )


# -- Figure 6 (middle) -------------------------------------------------------


def fig6_broken_model_series(**_kwargs: Any) -> List[str]:
    return _series(("on", "off"))


def fig6_broken_model_unit(
    series: str, seconds: int = 240, seed: int = 0, break_at: int = 60
) -> Dict[str, Any]:
    workload_name, variant = series.split("/")
    if variant == "baseline":
        return {"p99": _baseline_p99(workload_name, seconds, seed)}
    policy = (
        SafeguardPolicy.all_enabled()
        if variant == "on"
        else SafeguardPolicy.none_enabled()
    )
    breaker = ModelBreaker(broken_value=0)
    scenario = HarvestScenario.build(
        TAILBENCH_WORKLOADS[workload_name], seed=seed, policy=policy,
        breaker=breaker,
    )
    scenario.kernel.call_later(break_at * SEC, breaker.arm)
    scenario.run(seconds)
    return {"p99": scenario.workload.performance().value}


def fig6_broken_model_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 240,
    seed: int = 0,
    break_at: int = 60,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6-middle",
        title="Broken model (predicts 0 cores needed): P99 increase",
        columns=["workload", "safeguards", "p99_increase_pct"],
    )
    for workload_name in TAILBENCH_WORKLOADS:
        baseline = units[f"{workload_name}/baseline"]["p99"]
        for variant in ("on", "off"):
            cell = units[f"{workload_name}/{variant}"]
            result.add_row(
                workload=workload_name,
                safeguards=variant,
                p99_increase_pct=100.0 * (cell["p99"] / baseline - 1.0),
            )
    return result


def fig6_broken_model(
    seconds: int = 240, seed: int = 0, break_at: int = 60
) -> ExperimentResult:
    """Figure 6 (middle): a broken model that predicts zero core need."""
    units = {
        key: fig6_broken_model_unit(
            key, seconds=seconds, seed=seed, break_at=break_at
        )
        for key in fig6_broken_model_series()
    }
    return fig6_broken_model_assemble(
        units, seconds=seconds, seed=seed, break_at=break_at
    )


# -- Figure 6 (right) --------------------------------------------------------


def fig6_delayed_predictions_series(**_kwargs: Any) -> List[str]:
    return _series(("non-blocking", "blocking"))


def fig6_delayed_predictions_unit(
    series: str,
    seconds: int = 240,
    seed: int = 0,
    delay_seconds: float = 1.0,
    ramp_cores: float = 1.5,
    cooldown_seconds: float = 4.0,
) -> Dict[str, Any]:
    workload_name, variant = series.split("/")
    if variant == "baseline":
        return {"p99": _baseline_p99(workload_name, seconds, seed)}
    blocking = variant == "blocking"
    policy = SafeguardPolicy(non_blocking_actuator=not blocking)
    delays = DelayInjector()
    scenario = HarvestScenario.build(
        TAILBENCH_WORKLOADS[workload_name], seed=seed, policy=policy,
        model_delays=delays,
    )

    def ramp_watcher(scenario=scenario, delays=delays):
        hypervisor = scenario.hypervisor
        previous = hypervisor.demand
        last_injection = -1e18
        while True:
            yield 25_000  # one demand step
            current = hypervisor.demand
            now = scenario.kernel.now
            if (
                current - previous >= ramp_cores
                and now - last_injection >= cooldown_seconds * SEC
            ):
                delays.trigger_now(int(delay_seconds * SEC))
                last_injection = now
            previous = current

    scenario.kernel.spawn(ramp_watcher(), name="ramp-watch")
    scenario.run(seconds)
    return {
        "p99": scenario.workload.performance().value,
        "timeout_actions": scenario.agent.runtime.stats()[
            "actuation_timeouts"
        ],
        "delays_injected": len(delays.triggered),
    }


def fig6_delayed_predictions_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 240,
    seed: int = 0,
    delay_seconds: float = 1.0,
    ramp_cores: float = 1.5,
    cooldown_seconds: float = 4.0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig6-right",
        title=f"{delay_seconds:.0f}s model delays on demand ramps: "
              "blocking vs non-blocking",
        columns=["workload", "actuator", "p99_increase_pct",
                 "timeout_actions", "delays_injected"],
    )
    for workload_name in TAILBENCH_WORKLOADS:
        baseline = units[f"{workload_name}/baseline"]["p99"]
        for variant in ("non-blocking", "blocking"):
            cell = units[f"{workload_name}/{variant}"]
            result.add_row(
                workload=workload_name,
                actuator=variant,
                p99_increase_pct=100.0 * (cell["p99"] / baseline - 1.0),
                timeout_actions=cell["timeout_actions"],
                delays_injected=cell["delays_injected"],
            )
    return result


def fig6_delayed_predictions(
    seconds: int = 240,
    seed: int = 0,
    delay_seconds: float = 1.0,
    ramp_cores: float = 1.5,
    cooldown_seconds: float = 4.0,
) -> ExperimentResult:
    """Figure 6 (right): 1 s scheduling delays, blocking vs non-blocking.

    Matching the paper's worst case, delays are injected "during periods
    when the primary VM increases CPU utilization": a watcher arms a 1 s
    Model-loop stall whenever demand jumps by ``ramp_cores`` within one
    step, so the agent goes blind exactly when cores must come back.
    """
    units = {
        key: fig6_delayed_predictions_unit(
            key, seconds=seconds, seed=seed, delay_seconds=delay_seconds,
            ramp_cores=ramp_cores, cooldown_seconds=cooldown_seconds,
        )
        for key in fig6_delayed_predictions_series()
    }
    return fig6_delayed_predictions_assemble(
        units, seconds=seconds, seed=seed, delay_seconds=delay_seconds,
        ramp_cores=ramp_cores, cooldown_seconds=cooldown_seconds,
    )
