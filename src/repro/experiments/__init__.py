"""Experiment harness: one function per paper table/figure.

The mapping from paper artifact to function (see also DESIGN.md §4):

========  =====================================================
Artifact  Function
========  =====================================================
Table 1   :func:`repro.experiments.tables.table1_taxonomy`
Table 2   :func:`repro.experiments.tables.table2_learning_agents`
Fig. 1    :func:`repro.experiments.overclock.fig1_overclock_vs_static`
Fig. 2    :func:`repro.experiments.overclock.fig2_invalid_data`
Fig. 3    :func:`repro.experiments.overclock.fig3_broken_model`
Fig. 4    :func:`repro.experiments.overclock.fig4_delayed_predictions`
Fig. 5    :func:`repro.experiments.overclock.fig5_actuator_safeguard`
Fig. 6    :func:`repro.experiments.harvest.fig6_invalid_data` /
          :func:`repro.experiments.harvest.fig6_broken_model` /
          :func:`repro.experiments.harvest.fig6_delayed_predictions`
Fig. 7    :func:`repro.experiments.memory.fig7_smartmemory_vs_static`
Fig. 8    :func:`repro.experiments.memory.fig8_memory_safeguards`
========  =====================================================

:mod:`repro.experiments.driver` adds the parallel paths on top: a
:class:`~repro.experiments.driver.FleetDriver` that shards multi-node
fleets (:mod:`repro.fleet`) across worker processes, and
:func:`~repro.experiments.driver.reproduce_all`, which regenerates the
whole table above — one artifact per worker with ``parallel=True``.
Both are exposed by the ``python -m repro`` command line.
"""

from repro.experiments.common import (
    ExperimentResult,
    HarvestScenario,
    MemoryScenario,
    OverclockScenario,
    SloWatcher,
)
from repro.experiments.driver import (
    ARTIFACTS,
    ArtifactRun,
    FleetDriver,
    reproduce_all,
)
from repro.experiments.harvest import (
    fig6_broken_model,
    fig6_delayed_predictions,
    fig6_invalid_data,
)
from repro.experiments.memory import (
    fig7_smartmemory_vs_static,
    fig8_memory_safeguards,
)
from repro.experiments.overclock import (
    fig1_overclock_vs_static,
    fig2_invalid_data,
    fig3_broken_model,
    fig4_delayed_predictions,
    fig5_actuator_safeguard,
)
from repro.experiments.tables import table1_taxonomy, table2_learning_agents

__all__ = [
    "ARTIFACTS",
    "ArtifactRun",
    "ExperimentResult",
    "FleetDriver",
    "reproduce_all",
    "HarvestScenario",
    "MemoryScenario",
    "OverclockScenario",
    "SloWatcher",
    "fig1_overclock_vs_static",
    "fig2_invalid_data",
    "fig3_broken_model",
    "fig4_delayed_predictions",
    "fig5_actuator_safeguard",
    "fig6_broken_model",
    "fig6_delayed_predictions",
    "fig6_invalid_data",
    "fig7_smartmemory_vs_static",
    "fig8_memory_safeguards",
    "table1_taxonomy",
    "table2_learning_agents",
]
