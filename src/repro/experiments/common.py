"""Shared experiment infrastructure: scenario builders and result types.

Every figure/table reproduction builds on three scenario builders — one
per agent — plus a windowed SLO watcher and a plain-text table renderer.
Experiments are deterministic given a seed; EXPERIMENTS.md records the
measured outputs against the paper's.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.agents.harvest import SmartHarvestAgent
from repro.agents.memory import SmartMemoryAgent
from repro.agents.overclock import SmartOverclockAgent
from repro.core.events import canonical_scalar
from repro.core.safeguards import SafeguardPolicy
from repro.node.cpu import CpuModel
from repro.node.hypervisor import Hypervisor
from repro.node.memory import TieredMemory
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC

__all__ = [
    "ExperimentResult",
    "OverclockScenario",
    "HarvestScenario",
    "MemoryScenario",
    "SloWatcher",
    "build_cpu_node",
    "experiment_digest",
]


@dataclass
class ExperimentResult:
    """Rows of one table/figure reproduction plus rendering.

    Attributes:
        name: experiment identifier ("fig1", "table2", ...).
        title: what the paper's artifact shows.
        columns: ordered column names.
        rows: list of dicts keyed by column name.
        notes: reproduction caveats worth printing with the data.
    """

    name: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def render(self) -> str:
        """Plain-text rendering in the paper's row/series layout."""
        widths = {
            col: max(
                len(col),
                *(len(self.format_cell(row.get(col))) for row in self.rows),
            )
            if self.rows
            else len(col)
            for col in self.columns
        }
        lines = [f"== {self.name}: {self.title} =="]
        lines.append(
            "  ".join(col.ljust(widths[col]) for col in self.columns)
        )
        lines.append(
            "  ".join("-" * widths[col] for col in self.columns)
        )
        for row in self.rows:
            lines.append(
                "  ".join(
                    self.format_cell(row.get(col)).ljust(widths[col])
                    for col in self.columns
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    @staticmethod
    def format_cell(value: Any) -> str:
        """Render one cell the way :meth:`render` does (public for
        alternative renderers, e.g. the CLI's markdown emitter)."""
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)


# One canonicalization for every content digest in the repo: the
# conformance known-answer vectors reuse it for terminal-state
# snapshots, so the shared definition lives with the event encoding.
_canonical_cell = canonical_scalar


def experiment_digest(result: "ExperimentResult") -> str:
    """Float-exact, type-canonical digest of an :class:`ExperimentResult`.

    The same canonicalization the golden-digest tests pin (they keep an
    independent copy on purpose); the bench harness uses this one to
    record that an optimized pass still reproduces every row bit.
    """
    payload = json.dumps(
        {
            "name": result.name,
            "columns": [str(column) for column in result.columns],
            "rows": [
                {str(k): _canonical_cell(v) for k, v in row.items()}
                for row in result.rows
            ],
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SloWatcher:
    """Windowed local-access-fraction tracking for memory experiments.

    Samples the remote/local access split every ``window_us`` and records
    whether each window met the paper's 80%-local SLO.
    """

    def __init__(
        self,
        kernel: Kernel,
        memory: TieredMemory,
        window_us: int = 5 * SEC,
        warmup_us: int = 0,
    ) -> None:
        self.kernel = kernel
        self.memory = memory
        self.window_us = window_us
        self.warmup_us = warmup_us
        self.local_fractions: List[float] = []
        self.n_local_series: List[int] = []
        self.resets_at_warmup: Optional[int] = None
        kernel.spawn(self._run(), name="slo-watcher")

    def _run(self):
        previous = self.memory.snapshot()
        while True:
            yield self.window_us
            current = self.memory.snapshot()
            if (
                self.resets_at_warmup is None
                and self.kernel.now >= self.warmup_us
            ):
                self.resets_at_warmup = current.bit_resets
            local = current.local_accesses - previous.local_accesses
            total = current.total_accesses - previous.total_accesses
            previous = current
            if self.kernel.now <= self.warmup_us:
                continue
            if total > 0:
                self.local_fractions.append(local / total)
            self.n_local_series.append(self.memory.n_local)

    def slo_attainment(self, target: float = 0.8) -> float:
        """Fraction of measured windows meeting the local-access target."""
        if not self.local_fractions:
            return float("nan")
        return float(
            np.mean([f >= target for f in self.local_fractions])
        )

    def mean_local_regions(self) -> float:
        """Average number of first-tier regions over the measured run."""
        if not self.n_local_series:
            return float(self.memory.n_local)
        return float(np.mean(self.n_local_series))

    def steady_state_resets(self) -> int:
        """Access-bit resets after the warmup cut."""
        total = self.memory.snapshot().bit_resets
        return total - (self.resets_at_warmup or 0)


def build_cpu_node(kernel: Kernel, n_cores: int = 8) -> CpuModel:
    """The experiment CPU: 1.5 GHz nominal, overclockable to 2.3 GHz."""
    return CpuModel(
        kernel,
        n_cores=n_cores,
        nominal_freq_ghz=1.5,
        min_freq_ghz=1.5,
        max_freq_ghz=2.3,
        max_ipc=4.0,
    )


@dataclass
class OverclockScenario:
    """One SmartOverclock run: node + workload + optional agent."""

    kernel: Kernel
    streams: RngStreams
    cpu: CpuModel
    workload: Any
    agent: Optional[SmartOverclockAgent]

    @classmethod
    def build(
        cls,
        workload_factory: Callable[[Kernel, CpuModel, RngStreams], Any],
        seed: int = 0,
        agent: bool = True,
        static_freq_ghz: Optional[float] = None,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        **agent_kwargs: Any,
    ) -> "OverclockScenario":
        kernel = Kernel()
        streams = RngStreams(seed)
        cpu = build_cpu_node(kernel)
        workload = workload_factory(kernel, cpu, streams)
        workload.start()
        agent_obj = None
        if agent:
            agent_obj = SmartOverclockAgent(
                kernel, cpu, streams.get("agent"), policy=policy,
                **agent_kwargs,
            ).start()
        elif static_freq_ghz is not None:
            cpu.set_frequency(static_freq_ghz)
        return cls(kernel, streams, cpu, workload, agent_obj)

    def run(self, seconds: int) -> "OverclockScenario":
        self.kernel.run(until=seconds * SEC)
        return self

    def mean_watts(self) -> float:
        snap = self.cpu.snapshot()
        return snap.energy_joules / (self.kernel.now / SEC)


@dataclass
class HarvestScenario:
    """One SmartHarvest run: hypervisor + primary workload + agent."""

    kernel: Kernel
    streams: RngStreams
    hypervisor: Hypervisor
    workload: Any
    agent: Optional[SmartHarvestAgent]

    @classmethod
    def build(
        cls,
        workload_factory: Callable[[Kernel, Hypervisor, RngStreams], Any],
        seed: int = 0,
        agent: bool = True,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        **agent_kwargs: Any,
    ) -> "HarvestScenario":
        kernel = Kernel()
        streams = RngStreams(seed)
        hypervisor = Hypervisor(
            kernel, n_cores=8, history_horizon_us=1 * SEC
        )
        workload = workload_factory(kernel, hypervisor, streams)
        workload.start()
        agent_obj = None
        if agent:
            agent_obj = SmartHarvestAgent(
                kernel, hypervisor, streams.get("agent"), policy=policy,
                **agent_kwargs,
            )
            agent_obj.start()
        return cls(kernel, streams, hypervisor, workload, agent_obj)

    def run(self, seconds: int) -> "HarvestScenario":
        self.kernel.run(until=seconds * SEC)
        return self

    def harvested_core_seconds(self) -> float:
        return self.hypervisor.snapshot().elastic_cus / SEC


@dataclass
class MemoryScenario:
    """One SmartMemory (or static baseline) run over a memory trace."""

    kernel: Kernel
    streams: RngStreams
    memory: TieredMemory
    trace: Any
    agent: Optional[SmartMemoryAgent]
    watcher: SloWatcher

    @classmethod
    def build(
        cls,
        trace_factory: Callable[[Kernel, TieredMemory, RngStreams], Any],
        seed: int = 0,
        n_regions: int = 256,
        warmup_seconds: int = 0,
        controller_factory: Optional[
            Callable[[Kernel, TieredMemory], Any]
        ] = None,
        agent: bool = True,
        policy: SafeguardPolicy = SafeguardPolicy.all_enabled(),
        **agent_kwargs: Any,
    ) -> "MemoryScenario":
        kernel = Kernel()
        streams = RngStreams(seed)
        memory = TieredMemory(
            kernel,
            n_regions=n_regions,
            pages_per_region=512,
            rng=streams.get("memory"),
        )
        trace = trace_factory(kernel, memory, streams)
        trace.start()
        agent_obj = None
        if controller_factory is not None:
            controller_factory(kernel, memory).start()
        elif agent:
            agent_obj = SmartMemoryAgent(
                kernel, memory, streams.get("agent"), policy=policy,
                **agent_kwargs,
            ).start()
        watcher = SloWatcher(
            kernel, memory, warmup_us=warmup_seconds * SEC
        )
        return cls(kernel, streams, memory, trace, agent_obj, watcher)

    def run(self, seconds: int) -> "MemoryScenario":
        self.kernel.run(until=seconds * SEC)
        return self
