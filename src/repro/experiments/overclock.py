"""SmartOverclock experiments: Figures 1-5 of the paper.

Each function regenerates one figure's data as an
:class:`~repro.experiments.common.ExperimentResult`.  Durations default
to values that reach learned steady state; benchmarks may scale them.

Figures 1-4 are decomposed into independent *series units* — one
scenario (or tightly-coupled scenario pair) per ``workload × policy``
cell — following the sub-artifact sharding contract in DESIGN.md §7:
``<fig>_series`` lists the canonical unit keys, ``<fig>_unit`` runs one
key to a picklable payload of raw measurements, and ``<fig>_assemble``
derives the figure's rows from the payload map.  The serial entry
points run exactly those units in order, so the parallel driver's
sharded pass is row-identical to a serial pass by construction (each
scenario seeds its own kernel and RNG streams from the unit arguments
alone).  Figure 5 is a single time-series kernel and stays whole.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, OverclockScenario
from repro.node.faults import DelayInjector, ModelBreaker, bad_ips_injector
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.synthetic import SyntheticBatchWorkload

__all__ = [
    "CPU_WORKLOADS",
    "fig1_overclock_vs_static",
    "fig2_invalid_data",
    "fig3_broken_model",
    "fig4_delayed_predictions",
    "fig5_actuator_safeguard",
]


def _synthetic(kernel, cpu, streams):
    return SyntheticBatchWorkload(kernel, cpu, period_us=100 * SEC)


def _objectstore(kernel, cpu, streams):
    return ObjectStoreWorkload(kernel, cpu, streams.get("workload"))


def _diskspeed(kernel, cpu, streams):
    return DiskSpeedWorkload(kernel, cpu, streams.get("workload"))


#: The three §6.2 workloads, by paper name.
CPU_WORKLOADS: Dict[str, Callable] = {
    "Synthetic": _synthetic,
    "ObjectStore": _objectstore,
    "DiskSpeed": _diskspeed,
}

# -- Figure 1 ----------------------------------------------------------------

_FIG1_STATIC_FREQS = (1.5, 1.9, 2.3)
_FIG1_POLICIES = tuple(
    [f"static-{freq}GHz" for freq in _FIG1_STATIC_FREQS] + ["SmartOverclock"]
)


def fig1_series(**_kwargs: Any) -> List[str]:
    """Canonical unit keys: one scenario per workload × policy."""
    return [
        f"{workload}/{policy}"
        for workload in CPU_WORKLOADS
        for policy in _FIG1_POLICIES
    ]


def fig1_unit(series: str, seconds: int = 900, seed: int = 0) -> Dict[str, Any]:
    """Run one workload × policy scenario; raw perf/power payload."""
    workload_name, policy = series.split("/")
    factory = CPU_WORKLOADS[workload_name]
    if policy == "SmartOverclock":
        scenario = OverclockScenario.build(factory, seed=seed).run(seconds)
    else:
        freq = float(policy[len("static-"):-len("GHz")])
        scenario = OverclockScenario.build(
            factory, seed=seed, agent=False, static_freq_ghz=freq
        ).run(seconds)
    return {
        "perf": scenario.workload.performance(),
        "watts": scenario.mean_watts(),
    }


def fig1_assemble(
    units: Mapping[str, Dict[str, Any]], seconds: int = 900, seed: int = 0
) -> ExperimentResult:
    """Normalize every cell against its workload's static-1.5 GHz run."""
    result = ExperimentResult(
        name="fig1",
        title="SmartOverclock vs static frequency (normalized to 1.5GHz)",
        columns=["workload", "policy", "norm_perf", "norm_power"],
    )
    for workload_name in CPU_WORKLOADS:
        base = units[f"{workload_name}/static-1.5GHz"]
        for policy in _FIG1_POLICIES:
            cell = units[f"{workload_name}/{policy}"]
            result.add_row(
                workload=workload_name,
                policy=policy,
                norm_perf=cell["perf"].normalized_against(base["perf"]),
                norm_power=cell["watts"] / base["watts"],
            )
    return result


def fig1_overclock_vs_static(
    seconds: int = 900, seed: int = 0
) -> ExperimentResult:
    """Figure 1: SmartOverclock vs static frequencies, perf and power.

    Normalized performance and power relative to static 1.5 GHz, for
    each workload × {1.5, 1.9, 2.3 GHz, SmartOverclock}.
    """
    units = {
        key: fig1_unit(key, seconds=seconds, seed=seed)
        for key in fig1_series()
    }
    return fig1_assemble(units, seconds=seconds, seed=seed)


# -- Figure 2 ----------------------------------------------------------------


def fig2_series(
    bad_fractions=(0.0, 0.05, 0.10, 0.20), **_kwargs: Any
) -> List[str]:
    """Unit keys in the serial sweep order (fraction-major, 'on' first)."""
    return [
        f"{fraction}/{'on' if validation else 'off'}"
        for fraction in bad_fractions
        for validation in (True, False)
    ]


def fig2_unit(
    series: str,
    seconds: int = 600,
    seed: int = 0,
    bad_fractions=(0.0, 0.05, 0.10, 0.20),
) -> Dict[str, Any]:
    """One Synthetic run at a (bad-data fraction, validation) cell."""
    fraction_text, validation_text = series.rsplit("/", 1)
    fraction = float(fraction_text)
    policy = SafeguardPolicy(validate_data=validation_text == "on")
    scenario = OverclockScenario.build(_synthetic, seed=seed, policy=policy)
    if fraction > 0:
        scenario.agent.reader.add_injector(
            bad_ips_injector(scenario.streams.get("fault"), fraction)
        )
    scenario.run(seconds)
    return {
        "perf": scenario.workload.performance(),
        "watts": scenario.mean_watts(),
    }


def fig2_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 600,
    seed: int = 0,
    bad_fractions=(0.0, 0.05, 0.10, 0.20),
) -> ExperimentResult:
    """Normalize every cell against the first (clean, guarded) run."""
    result = ExperimentResult(
        name="fig2",
        title="Invalid IPS readings vs data-validation safeguard"
              " (Synthetic; normalized to 0% bad data)",
        columns=["bad_fraction", "validation", "norm_perf", "norm_power"],
    )
    reference = units[f"{bad_fractions[0]}/on"]
    for fraction in bad_fractions:
        for validation in (True, False):
            cell = units[f"{fraction}/{'on' if validation else 'off'}"]
            result.add_row(
                bad_fraction=fraction,
                validation="on" if validation else "off",
                norm_perf=cell["perf"].normalized_against(reference["perf"]),
                norm_power=cell["watts"] / reference["watts"],
            )
    return result


def fig2_invalid_data(
    seconds: int = 600,
    seed: int = 0,
    bad_fractions=(0.0, 0.05, 0.10, 0.20),
) -> ExperimentResult:
    """Figure 2: the data-validation safeguard under invalid IPS readings.

    Synthetic workload; a fraction of IPS counter readings is replaced
    with out-of-range values.  Performance/power normalized to the
    clean (0% bad data) guarded agent.
    """
    units = {
        key: fig2_unit(
            key, seconds=seconds, seed=seed, bad_fractions=bad_fractions
        )
        for key in fig2_series(bad_fractions=bad_fractions)
    }
    return fig2_assemble(
        units, seconds=seconds, seed=seed, bad_fractions=bad_fractions
    )


# -- Figure 3 ----------------------------------------------------------------

_FIG3_VARIANTS = ("healthy", "on", "off")


def fig3_series(**_kwargs: Any) -> List[str]:
    """Per workload: the healthy baseline plus the guarded/unguarded runs."""
    return [
        f"{workload}/{variant}"
        for workload in CPU_WORKLOADS
        for variant in _FIG3_VARIANTS
    ]


def fig3_unit(
    series: str, seconds: int = 600, seed: int = 0, break_at: int = 120
) -> Dict[str, Any]:
    """One scenario: healthy agent, or broken model with safeguard on/off."""
    workload_name, variant = series.split("/")
    factory = CPU_WORKLOADS[workload_name]
    if variant == "healthy":
        scenario = OverclockScenario.build(factory, seed=seed).run(seconds)
        return {"watts": scenario.mean_watts()}
    policy = SafeguardPolicy(assess_model=variant == "on")
    breaker = ModelBreaker(broken_value=2.3)
    scenario = OverclockScenario.build(
        factory, seed=seed, policy=policy, breaker=breaker
    )
    scenario.kernel.call_later(break_at * SEC, breaker.arm)
    scenario.run(seconds)
    return {"watts": scenario.mean_watts()}


def fig3_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 600,
    seed: int = 0,
    break_at: int = 120,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig3",
        title="Broken (always-overclock) model: power increase vs healthy",
        columns=["workload", "model_safeguard", "power_increase_pct"],
    )
    for workload_name in CPU_WORKLOADS:
        healthy_watts = units[f"{workload_name}/healthy"]["watts"]
        for variant in ("on", "off"):
            watts = units[f"{workload_name}/{variant}"]["watts"]
            result.add_row(
                workload=workload_name,
                model_safeguard=variant,
                power_increase_pct=100.0 * (watts / healthy_watts - 1.0),
            )
    return result


def fig3_broken_model(
    seconds: int = 600, seed: int = 0, break_at: int = 120
) -> ExperimentResult:
    """Figure 3: model safeguard vs a broken always-overclock model.

    The model is broken at ``break_at`` seconds to always select the
    highest frequency; power is reported as the increase over each
    workload's healthy-agent run.
    """
    units = {
        key: fig3_unit(key, seconds=seconds, seed=seed, break_at=break_at)
        for key in fig3_series()
    }
    return fig3_assemble(
        units, seconds=seconds, seed=seed, break_at=break_at
    )


# -- Figure 4 ----------------------------------------------------------------

_FIG4_ACTUATORS = ("non-blocking", "blocking")


def fig4_series(**_kwargs: Any) -> List[str]:
    return list(_FIG4_ACTUATORS)


def fig4_unit(
    series: str, seconds: int = 400, seed: int = 0, delay_seconds: int = 30
) -> Dict[str, Any]:
    """One stall-injection run; the row is self-contained per actuator."""
    blocking = series == "blocking"
    policy = SafeguardPolicy(non_blocking_actuator=not blocking)
    delays = DelayInjector()
    scenario = OverclockScenario.build(
        _synthetic, seed=seed, policy=policy, model_delays=delays
    )
    window: dict = {}

    def on_batch_end(index, scenario=scenario, delays=delays, window=window):
        if index != 1:
            return
        delays.trigger_now(delay_seconds * SEC)
        window["start_us"] = scenario.kernel.now
        window["energy_start"] = scenario.cpu.snapshot().energy_joules
        scenario.kernel.call_later(
            delay_seconds * SEC,
            lambda: window.__setitem__(
                "energy_end", scenario.cpu.snapshot().energy_joules
            ),
        )

    scenario.workload.on_batch_end.append(on_batch_end)
    scenario.run(seconds)
    stall_watts = (
        window["energy_end"] - window["energy_start"]
    ) / delay_seconds
    # reference: the same idle window at nominal frequency
    idle_nominal_watts = scenario.cpu.power_model.watts(
        scenario.cpu.n_cores, scenario.cpu.nominal_freq_ghz, 0.0
    )
    return {
        "power_increase_pct": 100.0
        * (stall_watts / idle_nominal_watts - 1.0),
        "timeout_actions": scenario.agent.runtime.stats()[
            "actuation_timeouts"
        ],
    }


def fig4_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 400,
    seed: int = 0,
    delay_seconds: int = 30,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig4",
        title=f"{delay_seconds}s model stall at batch end: "
              "power increase over the stall window",
        columns=["actuator", "power_increase_pct", "timeout_actions"],
    )
    for actuator in _FIG4_ACTUATORS:
        cell = units[actuator]
        result.add_row(
            actuator=actuator,
            power_increase_pct=cell["power_increase_pct"],
            timeout_actions=cell["timeout_actions"],
        )
    return result


def fig4_delayed_predictions(
    seconds: int = 400, seed: int = 0, delay_seconds: int = 30
) -> ExperimentResult:
    """Figure 4: non-blocking vs blocking Actuator under a model stall.

    A ``delay_seconds`` stall is injected into the Model loop exactly
    when the Synthetic workload finishes a batch — the worst case: the
    last prediction said "overclock" and the workload just went idle.
    Power is measured over the stall window and compared to an idle
    node at the nominal frequency, matching the paper's framing ("the
    blocking agent overclocks the workload for 30 seconds into its idle
    phase, increasing power consumption by 36%").
    """
    units = {
        key: fig4_unit(
            key, seconds=seconds, seed=seed, delay_seconds=delay_seconds
        )
        for key in fig4_series()
    }
    return fig4_assemble(
        units, seconds=seconds, seed=seed, delay_seconds=delay_seconds
    )


# -- Figure 5 ----------------------------------------------------------------


def fig5_actuator_safeguard(
    seconds: int = 900, seed: int = 0
) -> ExperimentResult:
    """Figure 5: the α safeguard across a long idle phase (time series).

    A Synthetic workload processes one long batch then idles for
    minutes.  The series shows frequency and safeguard state per 30 s
    window: overclocked while busy, safeguard-disabled during idle,
    re-enabled on the next batch.  (One kernel, one time series — this
    artifact has no independent sub-units to shard.)
    """
    result = ExperimentResult(
        name="fig5",
        title="Actuator (α) safeguard over idle phases: 30s windows",
        columns=["window_start_s", "mean_freq_ghz", "safeguard_active",
                 "mean_watts"],
    )
    kernel = Kernel()
    streams = RngStreams(seed)
    from repro.experiments.common import build_cpu_node

    cpu = build_cpu_node(kernel)
    workload = SyntheticBatchWorkload(
        kernel, cpu, period_us=420 * SEC,
        batch_giga_instructions=48.0 * 120,
    ).start()
    from repro.agents.overclock import SmartOverclockAgent

    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    window = 30
    previous = cpu.snapshot()

    for start in range(0, seconds, window):
        kernel.run(until=(start + window) * SEC)
        snap = cpu.snapshot()
        watts = (snap.energy_joules - previous.energy_joules) / window
        previous = snap
        result.add_row(
            window_start_s=start,
            mean_freq_ghz=cpu.frequency_ghz,
            safeguard_active=agent.runtime.actuator_safeguard.active,
            mean_watts=watts,
        )
    triggers = agent.runtime.stats()["actuator_safeguard_triggers"]
    result.notes.append(f"safeguard triggers: {triggers}")
    return result
