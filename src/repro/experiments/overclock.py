"""SmartOverclock experiments: Figures 1-5 of the paper.

Each function regenerates one figure's data as an
:class:`~repro.experiments.common.ExperimentResult`.  Durations default
to values that reach learned steady state; benchmarks may scale them.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, OverclockScenario
from repro.node.faults import DelayInjector, ModelBreaker, bad_ips_injector
from repro.sim import Kernel, RngStreams
from repro.sim.units import SEC
from repro.workloads.diskspeed import DiskSpeedWorkload
from repro.workloads.objectstore import ObjectStoreWorkload
from repro.workloads.synthetic import SyntheticBatchWorkload

__all__ = [
    "CPU_WORKLOADS",
    "fig1_overclock_vs_static",
    "fig2_invalid_data",
    "fig3_broken_model",
    "fig4_delayed_predictions",
    "fig5_actuator_safeguard",
]


def _synthetic(kernel, cpu, streams):
    return SyntheticBatchWorkload(kernel, cpu, period_us=100 * SEC)


def _objectstore(kernel, cpu, streams):
    return ObjectStoreWorkload(kernel, cpu, streams.get("workload"))


def _diskspeed(kernel, cpu, streams):
    return DiskSpeedWorkload(kernel, cpu, streams.get("workload"))


#: The three §6.2 workloads, by paper name.
CPU_WORKLOADS: Dict[str, Callable] = {
    "Synthetic": _synthetic,
    "ObjectStore": _objectstore,
    "DiskSpeed": _diskspeed,
}


def fig1_overclock_vs_static(
    seconds: int = 900, seed: int = 0
) -> ExperimentResult:
    """Figure 1: SmartOverclock vs static frequencies, perf and power.

    Normalized performance and power relative to static 1.5 GHz, for
    each workload × {1.5, 1.9, 2.3 GHz, SmartOverclock}.
    """
    result = ExperimentResult(
        name="fig1",
        title="SmartOverclock vs static frequency (normalized to 1.5GHz)",
        columns=["workload", "policy", "norm_perf", "norm_power"],
    )
    for workload_name, factory in CPU_WORKLOADS.items():
        baseline = OverclockScenario.build(
            factory, seed=seed, agent=False, static_freq_ghz=1.5
        ).run(seconds)
        base_perf = baseline.workload.performance()
        base_watts = baseline.mean_watts()
        cells = [("static-1.5GHz", baseline)]
        for freq in (1.9, 2.3):
            cells.append(
                (
                    f"static-{freq}GHz",
                    OverclockScenario.build(
                        factory, seed=seed, agent=False,
                        static_freq_ghz=freq,
                    ).run(seconds),
                )
            )
        cells.append(
            (
                "SmartOverclock",
                OverclockScenario.build(factory, seed=seed).run(seconds),
            )
        )
        for policy, scenario in cells:
            perf = scenario.workload.performance()
            result.add_row(
                workload=workload_name,
                policy=policy,
                norm_perf=perf.normalized_against(base_perf),
                norm_power=scenario.mean_watts() / base_watts,
            )
    return result


def fig2_invalid_data(
    seconds: int = 600,
    seed: int = 0,
    bad_fractions=(0.0, 0.05, 0.10, 0.20),
) -> ExperimentResult:
    """Figure 2: the data-validation safeguard under invalid IPS readings.

    Synthetic workload; a fraction of IPS counter readings is replaced
    with out-of-range values.  Performance/power normalized to the
    clean (0% bad data) guarded agent.
    """
    result = ExperimentResult(
        name="fig2",
        title="Invalid IPS readings vs data-validation safeguard"
              " (Synthetic; normalized to 0% bad data)",
        columns=["bad_fraction", "validation", "norm_perf", "norm_power"],
    )
    reference = None
    for fraction in bad_fractions:
        for validation in (True, False):
            policy = SafeguardPolicy(validate_data=validation)
            scenario = OverclockScenario.build(
                _synthetic, seed=seed, policy=policy
            )
            if fraction > 0:
                scenario.agent.reader.add_injector(
                    bad_ips_injector(
                        scenario.streams.get("fault"), fraction
                    )
                )
            scenario.run(seconds)
            perf = scenario.workload.performance()
            watts = scenario.mean_watts()
            if reference is None:
                reference = (perf, watts)
            result.add_row(
                bad_fraction=fraction,
                validation="on" if validation else "off",
                norm_perf=perf.normalized_against(reference[0]),
                norm_power=watts / reference[1],
            )
    return result


def fig3_broken_model(
    seconds: int = 600, seed: int = 0, break_at: int = 120
) -> ExperimentResult:
    """Figure 3: model safeguard vs a broken always-overclock model.

    The model is broken at ``break_at`` seconds to always select the
    highest frequency; power is reported as the increase over each
    workload's healthy-agent run.
    """
    result = ExperimentResult(
        name="fig3",
        title="Broken (always-overclock) model: power increase vs healthy",
        columns=["workload", "model_safeguard", "power_increase_pct"],
    )
    for workload_name, factory in CPU_WORKLOADS.items():
        healthy = OverclockScenario.build(factory, seed=seed).run(seconds)
        healthy_watts = healthy.mean_watts()
        for guarded in (True, False):
            policy = SafeguardPolicy(assess_model=guarded)
            breaker = ModelBreaker(broken_value=2.3)
            scenario = OverclockScenario.build(
                factory, seed=seed, policy=policy, breaker=breaker
            )
            scenario.kernel.call_later(break_at * SEC, breaker.arm)
            scenario.run(seconds)
            result.add_row(
                workload=workload_name,
                model_safeguard="on" if guarded else "off",
                power_increase_pct=100.0
                * (scenario.mean_watts() / healthy_watts - 1.0),
            )
    return result


def fig4_delayed_predictions(
    seconds: int = 400, seed: int = 0, delay_seconds: int = 30
) -> ExperimentResult:
    """Figure 4: non-blocking vs blocking Actuator under a model stall.

    A ``delay_seconds`` stall is injected into the Model loop exactly
    when the Synthetic workload finishes a batch — the worst case: the
    last prediction said "overclock" and the workload just went idle.
    Power is measured over the stall window and compared to an idle
    node at the nominal frequency, matching the paper's framing ("the
    blocking agent overclocks the workload for 30 seconds into its idle
    phase, increasing power consumption by 36%").
    """
    result = ExperimentResult(
        name="fig4",
        title=f"{delay_seconds}s model stall at batch end: "
              "power increase over the stall window",
        columns=["actuator", "power_increase_pct", "timeout_actions"],
    )
    for blocking in (False, True):
        policy = SafeguardPolicy(non_blocking_actuator=not blocking)
        delays = DelayInjector()
        scenario = OverclockScenario.build(
            _synthetic, seed=seed, policy=policy, model_delays=delays
        )
        window: dict = {}

        def on_batch_end(index, scenario=scenario, delays=delays,
                         window=window):
            if index != 1:
                return
            delays.trigger_now(delay_seconds * SEC)
            window["start_us"] = scenario.kernel.now
            window["energy_start"] = scenario.cpu.snapshot().energy_joules
            scenario.kernel.call_later(
                delay_seconds * SEC,
                lambda: window.__setitem__(
                    "energy_end", scenario.cpu.snapshot().energy_joules
                ),
            )

        scenario.workload.on_batch_end.append(on_batch_end)
        scenario.run(seconds)
        stall_watts = (
            window["energy_end"] - window["energy_start"]
        ) / delay_seconds
        # reference: the same idle window at nominal frequency
        idle_nominal_watts = scenario.cpu.power_model.watts(
            scenario.cpu.n_cores, scenario.cpu.nominal_freq_ghz, 0.0
        )
        result.add_row(
            actuator="blocking" if blocking else "non-blocking",
            power_increase_pct=100.0
            * (stall_watts / idle_nominal_watts - 1.0),
            timeout_actions=scenario.agent.runtime.stats()[
                "actuation_timeouts"
            ],
        )
    return result


def fig5_actuator_safeguard(
    seconds: int = 900, seed: int = 0
) -> ExperimentResult:
    """Figure 5: the α safeguard across a long idle phase (time series).

    A Synthetic workload processes one long batch then idles for
    minutes.  The series shows frequency and safeguard state per 30 s
    window: overclocked while busy, safeguard-disabled during idle,
    re-enabled on the next batch.
    """
    result = ExperimentResult(
        name="fig5",
        title="Actuator (α) safeguard over idle phases: 30s windows",
        columns=["window_start_s", "mean_freq_ghz", "safeguard_active",
                 "mean_watts"],
    )
    kernel = Kernel()
    streams = RngStreams(seed)
    from repro.experiments.common import build_cpu_node

    cpu = build_cpu_node(kernel)
    workload = SyntheticBatchWorkload(
        kernel, cpu, period_us=420 * SEC,
        batch_giga_instructions=48.0 * 120,
    ).start()
    from repro.agents.overclock import SmartOverclockAgent

    agent = SmartOverclockAgent(kernel, cpu, streams.get("agent")).start()
    window = 30
    previous = cpu.snapshot()
    freq_accum = []

    for start in range(0, seconds, window):
        kernel.run(until=(start + window) * SEC)
        snap = cpu.snapshot()
        watts = (snap.energy_joules - previous.energy_joules) / window
        previous = snap
        result.add_row(
            window_start_s=start,
            mean_freq_ghz=cpu.frequency_ghz,
            safeguard_active=agent.runtime.actuator_safeguard.active,
            mean_watts=watts,
        )
    triggers = agent.runtime.stats()["actuator_safeguard_triggers"]
    result.notes.append(f"safeguard triggers: {triggers}")
    return result
