"""SmartMemory experiments: Figures 7 and 8."""

from __future__ import annotations

from typing import Callable, Dict

from repro.agents.memory import MemoryConfig, StaticScanController
from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, MemoryScenario
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    SQL_MEM,
    OscillatingMemoryTrace,
    ZipfMemoryTrace,
)

__all__ = ["MEMORY_TRACES", "fig7_smartmemory_vs_static",
           "fig8_memory_safeguards"]


def _trace_factory(profile):
    def factory(kernel, memory, streams):
        return ZipfMemoryTrace(kernel, memory, streams.get("trace"), profile)

    return factory


#: The §6.4 memory workloads, by paper name.
MEMORY_TRACES: Dict[str, Callable] = {
    "ObjectStore": _trace_factory(OBJECTSTORE_MEM),
    "SQL": _trace_factory(SQL_MEM),
    "SpecJBB": _trace_factory(SPECJBB_MEM),
}


def fig7_smartmemory_vs_static(
    seconds: int = 1800,
    seed: int = 0,
    n_regions: int = 256,
    warmup_seconds: int = 300,
) -> ExperimentResult:
    """Figure 7: SmartMemory vs static 300 ms / 9.6 s scanning.

    Three stacked metrics per workload × policy:

    * ``reset_reduction_pct`` — access-bit resets saved vs max-frequency
      scanning (paper top plot; up to ~48% for SmartMemory);
    * ``local_reduction_pct`` — first-tier size reduction (middle plot);
    * ``slo_attainment`` — fraction of 5 s windows with ≥80% local
      accesses (bottom plot; min-frequency collapses).
    """
    config = MemoryConfig()
    result = ExperimentResult(
        name="fig7",
        title="SmartMemory vs static access-bit scanning",
        columns=["workload", "policy", "reset_reduction_pct",
                 "local_reduction_pct", "slo_attainment"],
    )

    def max_controller(kernel, memory):
        return StaticScanController(
            kernel, memory, config.scan_periods_us[0], config
        )

    def min_controller(kernel, memory):
        return StaticScanController(
            kernel, memory, config.scan_periods_us[-1], config
        )

    for workload_name, trace_factory in MEMORY_TRACES.items():
        cells = {}
        for policy_name, kwargs in (
            ("static-300ms", dict(controller_factory=max_controller,
                                  agent=False)),
            ("static-9.6s", dict(controller_factory=min_controller,
                                 agent=False)),
            ("SmartMemory", dict()),
        ):
            scenario = MemoryScenario.build(
                trace_factory,
                seed=seed,
                n_regions=n_regions,
                warmup_seconds=warmup_seconds,
                **kwargs,
            ).run(seconds)
            cells[policy_name] = scenario
        max_resets = cells["static-300ms"].watcher.steady_state_resets()
        for policy_name, scenario in cells.items():
            watcher = scenario.watcher
            result.add_row(
                workload=workload_name,
                policy=policy_name,
                reset_reduction_pct=100.0
                * (1.0 - watcher.steady_state_resets() / max_resets),
                local_reduction_pct=100.0
                * (1.0 - watcher.mean_local_regions() / n_regions),
                slo_attainment=watcher.slo_attainment(),
            )
    return result


def fig8_memory_safeguards(
    seconds: int = 920,
    seed: int = 0,
    n_regions: int = 256,
) -> ExperimentResult:
    """Figure 8: Model and Actuator safeguards on the oscillating workload.

    SpecJBB runs 150 s / sleeps 80 s with a popularity reshuffle at each
    wake.  SLO attainment across the safeguard ablation lattice — the
    paper reports 66% with no safeguards and 90% with all.
    """

    def trace_factory(kernel, memory, streams):
        return OscillatingMemoryTrace(
            kernel, memory, streams.get("trace"), SPECJBB_MEM
        )

    result = ExperimentResult(
        name="fig8",
        title="Safeguard ablation on the oscillating SpecJBB workload",
        columns=["safeguards", "slo_attainment", "mitigations",
                 "interceptions"],
    )
    variants = (
        ("none", SafeguardPolicy(assess_model=False, assess_actuator=False)),
        ("actuator-only", SafeguardPolicy(assess_model=False)),
        ("model-only", SafeguardPolicy(assess_actuator=False)),
        ("all", SafeguardPolicy.all_enabled()),
    )
    for name, policy in variants:
        scenario = MemoryScenario.build(
            trace_factory, seed=seed, n_regions=n_regions, policy=policy
        ).run(seconds)
        stats = scenario.agent.runtime.stats()
        result.add_row(
            safeguards=name,
            slo_attainment=scenario.watcher.slo_attainment(),
            mitigations=stats["mitigations"],
            interceptions=stats["interceptions"],
        )
    return result
