"""SmartMemory experiments: Figures 7 and 8.

Both figures are decomposed into independent series units (DESIGN.md
§7): Figure 7 into one ``workload × policy`` scenario per unit (nine
units — this is the ``reproduce-all`` straggler, 1500 simulated seconds
per scenario, so sub-artifact sharding matters most here), Figure 8
into one safeguard variant per unit.  The serial entry points run the
same units in order, so parallel passes are row-identical by
construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from repro.agents.memory import MemoryConfig, StaticScanController
from repro.core.safeguards import SafeguardPolicy
from repro.experiments.common import ExperimentResult, MemoryScenario
from repro.workloads.traces import (
    OBJECTSTORE_MEM,
    SPECJBB_MEM,
    SQL_MEM,
    OscillatingMemoryTrace,
    ZipfMemoryTrace,
)

__all__ = ["MEMORY_TRACES", "fig7_smartmemory_vs_static",
           "fig8_memory_safeguards"]


def _trace_factory(profile):
    def factory(kernel, memory, streams):
        return ZipfMemoryTrace(kernel, memory, streams.get("trace"), profile)

    return factory


#: The §6.4 memory workloads, by paper name.
MEMORY_TRACES: Dict[str, Callable] = {
    "ObjectStore": _trace_factory(OBJECTSTORE_MEM),
    "SQL": _trace_factory(SQL_MEM),
    "SpecJBB": _trace_factory(SPECJBB_MEM),
}

# -- Figure 7 ----------------------------------------------------------------

_FIG7_POLICIES = ("static-300ms", "static-9.6s", "SmartMemory")


def fig7_series(**_kwargs: Any) -> List[str]:
    """One unit per workload × scanning policy."""
    return [
        f"{workload}/{policy}"
        for workload in MEMORY_TRACES
        for policy in _FIG7_POLICIES
    ]


def fig7_unit(
    series: str,
    seconds: int = 1800,
    seed: int = 0,
    n_regions: int = 256,
    warmup_seconds: int = 300,
) -> Dict[str, Any]:
    """One memory scenario; raw watcher statistics as the payload."""
    workload_name, policy_name = series.split("/")
    trace_factory = MEMORY_TRACES[workload_name]
    config = MemoryConfig()

    def max_controller(kernel, memory):
        return StaticScanController(
            kernel, memory, config.scan_periods_us[0], config
        )

    def min_controller(kernel, memory):
        return StaticScanController(
            kernel, memory, config.scan_periods_us[-1], config
        )

    kwargs: Dict[str, Any] = {
        "static-300ms": dict(controller_factory=max_controller, agent=False),
        "static-9.6s": dict(controller_factory=min_controller, agent=False),
        "SmartMemory": dict(),
    }[policy_name]
    scenario = MemoryScenario.build(
        trace_factory,
        seed=seed,
        n_regions=n_regions,
        warmup_seconds=warmup_seconds,
        **kwargs,
    ).run(seconds)
    watcher = scenario.watcher
    return {
        "steady_state_resets": watcher.steady_state_resets(),
        "mean_local_regions": watcher.mean_local_regions(),
        "slo_attainment": watcher.slo_attainment(),
    }


def fig7_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 1800,
    seed: int = 0,
    n_regions: int = 256,
    warmup_seconds: int = 300,
) -> ExperimentResult:
    """Reduce raw watcher stats to the paper's three stacked metrics."""
    result = ExperimentResult(
        name="fig7",
        title="SmartMemory vs static access-bit scanning",
        columns=["workload", "policy", "reset_reduction_pct",
                 "local_reduction_pct", "slo_attainment"],
    )
    for workload_name in MEMORY_TRACES:
        max_resets = units[f"{workload_name}/static-300ms"][
            "steady_state_resets"
        ]
        for policy_name in _FIG7_POLICIES:
            cell = units[f"{workload_name}/{policy_name}"]
            result.add_row(
                workload=workload_name,
                policy=policy_name,
                reset_reduction_pct=100.0
                * (1.0 - cell["steady_state_resets"] / max_resets),
                local_reduction_pct=100.0
                * (1.0 - cell["mean_local_regions"] / n_regions),
                slo_attainment=cell["slo_attainment"],
            )
    return result


def fig7_smartmemory_vs_static(
    seconds: int = 1800,
    seed: int = 0,
    n_regions: int = 256,
    warmup_seconds: int = 300,
) -> ExperimentResult:
    """Figure 7: SmartMemory vs static 300 ms / 9.6 s scanning.

    Three stacked metrics per workload × policy:

    * ``reset_reduction_pct`` — access-bit resets saved vs max-frequency
      scanning (paper top plot; up to ~48% for SmartMemory);
    * ``local_reduction_pct`` — first-tier size reduction (middle plot);
    * ``slo_attainment`` — fraction of 5 s windows with ≥80% local
      accesses (bottom plot; min-frequency collapses).
    """
    units = {
        key: fig7_unit(
            key, seconds=seconds, seed=seed, n_regions=n_regions,
            warmup_seconds=warmup_seconds,
        )
        for key in fig7_series()
    }
    return fig7_assemble(
        units, seconds=seconds, seed=seed, n_regions=n_regions,
        warmup_seconds=warmup_seconds,
    )


# -- Figure 8 ----------------------------------------------------------------

_FIG8_VARIANTS = ("none", "actuator-only", "model-only", "all")


def _fig8_policy(name: str) -> SafeguardPolicy:
    return {
        "none": SafeguardPolicy(assess_model=False, assess_actuator=False),
        "actuator-only": SafeguardPolicy(assess_model=False),
        "model-only": SafeguardPolicy(assess_actuator=False),
        "all": SafeguardPolicy.all_enabled(),
    }[name]


def fig8_series(**_kwargs: Any) -> List[str]:
    return list(_FIG8_VARIANTS)


def fig8_unit(
    series: str, seconds: int = 920, seed: int = 0, n_regions: int = 256
) -> Dict[str, Any]:
    """One oscillating-SpecJBB run under a safeguard-ablation variant."""

    def trace_factory(kernel, memory, streams):
        return OscillatingMemoryTrace(
            kernel, memory, streams.get("trace"), SPECJBB_MEM
        )

    scenario = MemoryScenario.build(
        trace_factory, seed=seed, n_regions=n_regions,
        policy=_fig8_policy(series),
    ).run(seconds)
    stats = scenario.agent.runtime.stats()
    return {
        "slo_attainment": scenario.watcher.slo_attainment(),
        "mitigations": stats["mitigations"],
        "interceptions": stats["interceptions"],
    }


def fig8_assemble(
    units: Mapping[str, Dict[str, Any]],
    seconds: int = 920,
    seed: int = 0,
    n_regions: int = 256,
) -> ExperimentResult:
    result = ExperimentResult(
        name="fig8",
        title="Safeguard ablation on the oscillating SpecJBB workload",
        columns=["safeguards", "slo_attainment", "mitigations",
                 "interceptions"],
    )
    for name in _FIG8_VARIANTS:
        cell = units[name]
        result.add_row(
            safeguards=name,
            slo_attainment=cell["slo_attainment"],
            mitigations=cell["mitigations"],
            interceptions=cell["interceptions"],
        )
    return result


def fig8_memory_safeguards(
    seconds: int = 920,
    seed: int = 0,
    n_regions: int = 256,
) -> ExperimentResult:
    """Figure 8: Model and Actuator safeguards on the oscillating workload.

    SpecJBB runs 150 s / sleeps 80 s with a popularity reshuffle at each
    wake.  SLO attainment across the safeguard ablation lattice — the
    paper reports 66% with no safeguards and 90% with all.
    """
    units = {
        key: fig8_unit(key, seconds=seconds, seed=seed, n_regions=n_regions)
        for key in fig8_series()
    }
    return fig8_assemble(
        units, seconds=seconds, seed=seed, n_regions=n_regions
    )
