"""Reproduction of "SOL: Safe On-Node Learning in Cloud Platforms".

(Wang, Crankshaw, Yadwadkar, Berger, Kozyrakis, Bianchini — ASPLOS 2022,
arXiv:2201.10477.)

Package map:

* :mod:`repro.core` — the SOL framework itself (Model/Actuator API,
  runtime, safeguards).
* :mod:`repro.sim` — the deterministic discrete-event substrate.
* :mod:`repro.node` — the simulated server node (CPU/DVFS, hypervisor,
  two-tier memory, fault injection).
* :mod:`repro.ml` — from-scratch online learners.
* :mod:`repro.agents` — SmartOverclock, SmartHarvest, SmartMemory.
* :mod:`repro.workloads` — the evaluation workloads.
* :mod:`repro.platform` — the paper's agent characterization data plus
  the fleet hardware catalog.
* :mod:`repro.experiments` — regenerates every table and figure; the
  parallel driver (``FleetDriver``, ``reproduce_all``) lives here.
* :mod:`repro.fleet` — multi-node fleets: heterogeneous simulated
  nodes, each with its own kernel, RNG, workload, and agent.
* :mod:`repro.sweep` — declarative robustness campaigns: fault grids
  with a safety scoreboard and per-axis frontier tables.
* :mod:`repro.cli` — the ``python -m repro`` command line.
"""

from repro.core import (
    Actuator,
    Model,
    Prediction,
    SafeguardPolicy,
    Schedule,
    SolRuntime,
    run_agent,
)
from repro.sim import Kernel, RngStreams

__version__ = "0.1.0"

__all__ = [
    "Actuator",
    "Kernel",
    "Model",
    "Prediction",
    "RngStreams",
    "SafeguardPolicy",
    "Schedule",
    "SolRuntime",
    "run_agent",
    "__version__",
]
