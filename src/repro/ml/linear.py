"""Online linear regression — the base learner of the ML substrate.

The paper's SmartHarvest uses VowpalWabbit's cost-sensitive classifier,
which reduces multiclass cost-sensitive learning to one online linear
regressor per class (the ``csoaa`` reduction).  This module provides that
regressor: plain SGD with optional L2 regularization and gradient
clipping, suitable for the low-dimensional distributional features the
agents feed it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["OnlineLinearRegression"]


class OnlineLinearRegression:
    """Least-squares linear model trained one example at a time.

    Args:
        n_features: input dimensionality (a bias term is handled
            internally; do not include one in the features).
        learning_rate: SGD step size.
        l2: L2 regularization strength applied at each step.
        clip_gradient: per-step cap on the error magnitude, which keeps a
            single wild datapoint (exactly the §3.2 bad-data failure) from
            destroying the weights.  ``None`` disables clipping.
    """

    def __init__(
        self,
        n_features: int,
        learning_rate: float = 0.05,
        l2: float = 0.0,
        clip_gradient: Optional[float] = 100.0,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.n_features = n_features
        self.learning_rate = learning_rate
        self.l2 = l2
        self.clip_gradient = clip_gradient
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self.updates = 0
        self._step_buffer = np.empty(n_features)

    def predict(self, features: Sequence[float]) -> float:
        """Model output for one feature vector."""
        x = self._check(features)
        return float(self.weights @ x + self.bias)

    def update(self, features: Sequence[float], target: float) -> float:
        """One SGD step toward ``target``; returns the pre-update error."""
        x = self._check(features)
        # Same arithmetic as predict(x), inlined to skip the second shape
        # check; the scalar clip is min/max because np.clip costs ~7 µs
        # per scalar call and this runs once per datapoint fleet-wide.
        error = float(self.weights @ x + self.bias) - float(target)
        step_error = error
        clip = self.clip_gradient
        if clip is not None:
            step_error = min(max(error, -clip), clip)
        if self.l2:
            self.weights -= self.learning_rate * (
                step_error * x + self.l2 * self.weights
            )
        else:
            # l2 == 0 contributes an exact ±0.0 per element, so dropping
            # the term (and chaining in-place ufuncs into a scratch
            # buffer) is bit-identical while skipping three temporaries.
            step = self._step_buffer
            np.multiply(x, step_error, out=step)
            step *= self.learning_rate
            self.weights -= step
        self.bias -= self.learning_rate * step_error
        self.updates += 1
        return error

    def _check(self, features: Sequence[float]) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        if x.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {x.shape}"
            )
        return x
