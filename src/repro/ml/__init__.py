"""From-scratch online-learning substrate (no external ML dependencies).

Each agent's model maps to one learner here:

* SmartOverclock → :class:`repro.ml.qlearning.QLearner`
* SmartHarvest   → :class:`repro.ml.costsensitive.CostSensitiveClassifier`
* SmartMemory    → :class:`repro.ml.bandits.BetaThompsonSampler`
"""

from repro.ml.bandits import BetaThompsonSampler
from repro.ml.costsensitive import CostSensitiveClassifier, asymmetric_core_costs
from repro.ml.features import (
    FEATURE_NAMES,
    FeatureExtractor,
    distributional_features,
)
from repro.ml.linear import OnlineLinearRegression
from repro.ml.metrics import Ewma, RollingMean, RollingRate, StreamingMeanVar
from repro.ml.qlearning import QLearner

__all__ = [
    "BetaThompsonSampler",
    "CostSensitiveClassifier",
    "Ewma",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "OnlineLinearRegression",
    "QLearner",
    "RollingMean",
    "RollingRate",
    "StreamingMeanVar",
    "asymmetric_core_costs",
    "distributional_features",
]
